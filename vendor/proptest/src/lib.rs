//! Offline mini property-testing harness, API-compatible with the subset of
//! `proptest` this workspace uses: the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, range and tuple
//! strategies, `prop_map`, `proptest::collection::vec`,
//! `proptest::bool::ANY`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Compared to the real proptest there is **no shrinking** and no
//! persistence of failing seeds: a failing case panics with the sampled
//! case index and message. Sampling is deterministic per test name, so a
//! failure reproduces by re-running the test.
#![deny(missing_docs, unsafe_code)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test RNG driving all strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for a named test (FNV-1a hash of the name as seed,
    /// so every test gets a distinct but reproducible stream).
    pub fn deterministic_for(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Uniform draw from an integer span `[0, span)`.
    pub fn index(&mut self, span: usize) -> usize {
        self.0.gen_range(0..span.max(1))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Error carried out of a failing property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type (mini version of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let u = rng.unit_f64();
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, i32, i64, u8, u16);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy with lengths drawn from `len` (half-open, like
    /// proptest's `size_range`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.index(span);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Skips the current case when the assumption does not hold. Upstream
/// proptest resamples a replacement input; this shim simply treats the case
/// as vacuously passing, which preserves soundness (no false failures) at
/// the cost of running fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a `#[test]` running `cases` sampled executions of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic_for(concat!(
                ::core::module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "property `{}` failed at sampled case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, __e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 0.5..2.5_f64,
            n in 1usize..10,
            b in crate::bool::ANY,
        ) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((1..10).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_strategy_respects_length(
            v in crate::collection::vec(0.0..1.0_f64, 2..7),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn prop_map_applies(
            y in (1.0..2.0_f64, 3.0..4.0_f64).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((4.0..6.0).contains(&y));
        }
    }

    #[test]
    fn failing_property_panics_with_message() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0.0..1.0_f64) {
                    prop_assert!(x > 2.0, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(r.is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic_for("t");
        let mut b = crate::TestRng::deterministic_for("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
