//! Offline stand-in for the subset of `parking_lot` used by this workspace
//! (`Mutex` and `RwLock` with panic-free, non-poisoning `lock()`), backed by
//! `std::sync` primitives. Poisoned std locks are recovered transparently —
//! parking_lot has no poisoning, so this matches its observable behavior.
#![deny(missing_docs, unsafe_code)]

use std::sync;

/// Mutual exclusion lock whose `lock()` never fails (parking_lot API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock whose methods never fail (parking_lot API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
