//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`].
//!
//! The crates.io registry is unreachable in the build environment, so the
//! real `rand` cannot be fetched. This shim implements the same API surface
//! on top of a xoshiro256++ generator seeded through SplitMix64. Streams do
//! **not** match upstream `rand` bit-for-bit; everything in this repository
//! that consumes randomness asserts statistical or structural properties,
//! never exact stream values.
#![deny(missing_docs, unsafe_code)]

use std::ops::Range;

/// A type that can be sampled uniformly from a generator word stream
/// (stand-in for `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range that can be sampled uniformly (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        // Never returns `end`: u < 1. The result is >= start.
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i32, i64, u8, u16, i8, i16);

/// Random number generator interface (the subset of `rand::Rng` used here).
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over the type's standard
    /// sampling domain; `[0, 1)` for `f64`).
    ///
    /// Unlike upstream `rand` there is no `Self: Sized` bound: this trait
    /// is never used as a trait object here, and dropping the bound lets
    /// `R: Rng + ?Sized` callers invoke `gen` directly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Samples a boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    // Mirrors rand's blanket impl so `rng.gen()` resolves through autoref
    // when the caller's generic is `R: Rng + ?Sized`.
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed
/// (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++ core, SplitMix64
    /// seeding). Drop-in for `rand::rngs::StdRng` in this workspace; the
    /// output stream differs from upstream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna), public domain reference
            // algorithm re-expressed in safe Rust.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this shim's `SmallRng` is the same generator as [`StdRng`].
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(-0.4..0.4);
            assert!((-0.4..0.4).contains(&x));
            let k = r.gen_range(0usize..7);
            assert!(k < 7);
            let p = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(p > 0.0 && p < 1.0);
        }
    }
}
