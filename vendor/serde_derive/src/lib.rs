//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim.
//!
//! The registry (and therefore `syn`/`quote`) is unreachable in this build
//! environment, so the item is parsed directly from the
//! [`proc_macro::TokenStream`]: attributes and visibility are skipped,
//! the struct/enum shape is extracted (named-field structs; enums with
//! unit/tuple/struct variants — exactly the shapes in this workspace), and
//! the impls are emitted as formatted source. Generic types are rejected
//! with a compile error; none of the workspace's serialized types are
//! generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("shim derive emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("valid compile_error"),
    }
}

/// Skips leading `#[...]` attributes and a `pub`/`pub(...)` visibility
/// qualifier starting at `i`; returns the next significant index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                } else {
                    return i;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("shim serde derive does not support generic type `{name}`"));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "shim serde derive requires a braced body for `{name}`, found {other:?}"
            ))
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_named_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_variants(body)? }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Parses `name: Type, ...` out of a struct/struct-variant body, skipping
/// attributes and visibility. Commas nested in `<...>` generics or in
/// delimited groups do not split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{fname}`, found {other:?}")),
        }
        // Consume the type: everything up to a comma at angle depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(fname);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name: vname, shape });
    }
    Ok(variants)
}

/// Counts top-level (angle-depth-0) comma-separated entries in a tuple
/// variant's parenthesized field list.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push(({f:?}.to_string(), \
                         ::serde::Serialize::serialize_value(&self.{f})?));\n"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::std::result::Result<::serde::Value, ::serde::Error> {{\n\
                         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::std::result::Result::Ok(::serde::Value::Map(__m))\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::std::result::Result::Ok(\
                             ::serde::Value::Str({vn:?}.to_string())),\n"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::std::result::Result::Ok(::serde::Value::Map(vec![\
                             ({vn:?}.to_string(), ::serde::Serialize::serialize_value(__f0)?)])),\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let sers: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})?"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::std::result::Result::Ok(::serde::Value::Map(vec![\
                                 ({vn:?}.to_string(), ::serde::Value::Seq(vec![{}]))])),\n",
                                binders.join(", "),
                                sers.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binders = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__vm.push(({f:?}.to_string(), \
                                         ::serde::Serialize::serialize_value({f})?));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => {{\n\
                                     let mut __vm: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                     {pushes}\n\
                                     ::std::result::Result::Ok(::serde::Value::Map(vec![\
                                     ({vn:?}.to_string(), ::serde::Value::Map(__vm))]))\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::std::result::Result<::serde::Value, ::serde::Error> {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_value(\
                         ::serde::field(__v, {name:?}, {f:?})?)?,\n"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if __v.as_map().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected map for struct \", {name:?})));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!("filtered above"),
                        VariantShape::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize_value(__inner)?)),\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::deserialize_value(&__s[{k}])?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __s = __inner.as_seq().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected sequence for tuple variant\"))?;\n\
                                     if __s.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::Error::custom(\
                                             \"wrong tuple variant arity\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}\n",
                                gets.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize_value(\
                                         ::serde::field(__inner, {vn:?}, {f:?})?)?,\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}),\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 #[allow(clippy::all, unused_variables)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __inner) = &__m[0];\n\
                                 match __k.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                                         format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected externally-tagged enum \", {name:?}))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
