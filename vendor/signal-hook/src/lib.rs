//! Offline shim of the `signal-hook` crate: flag-style Unix signal
//! registration, implementing exactly the subset this workspace uses —
//! `signal_hook::flag::register(SIGTERM, flag)` so a resident service can
//! notice a termination request and shut down gracefully.
//!
//! The shim talks to libc's `sigaction` directly (Rust's std already links
//! libc on every supported target here, so no extra dependency). The
//! installed handler is async-signal-safe: it only walks a fixed table of
//! atomics and stores `true` into the registered flags — no allocation, no
//! locking, no syscalls.
//!
//! Like the rest of `vendor/`, this crate lives outside the workspace so
//! the workspace-wide `unsafe_code = "deny"` wall does not apply; the
//! `unsafe` here is confined to the two FFI calls and the handler's
//! pointer chase over leaked `Arc`s.

#![cfg(unix)]

use std::io;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicPtr, Ordering};
use std::sync::Arc;

/// Signal numbers (Linux-universal values; this shim targets Linux).
pub mod consts {
    /// Termination request (`kill <pid>` default, container runtimes' stop).
    pub const SIGTERM: i32 = 15;
    /// Interactive interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
    /// User-defined signal 1 (used by the shim's own tests).
    pub const SIGUSR1: i32 = 10;
}

/// Flag-style registration, mirroring `signal_hook::flag`.
pub mod flag {
    use super::*;

    /// Registers `flag` to be set to `true` whenever `signal` is
    /// delivered. Multiple flags may be registered for the same signal;
    /// all of them are set. Registrations last for the process lifetime
    /// (the real crate's `SigId` unregistration is not needed here).
    pub fn register(signal: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
        super::register_flag(signal, flag)
    }
}

const MAX_HOOKS: usize = 64;

// Slot i pairs HOOK_SIGNALS[i] (0 = free) with a leaked Arc<AtomicBool> in
// HOOK_FLAGS[i]. The handler reads both with acquire loads; registration
// publishes the pointer before the signal number, so the handler never
// sees a claimed slot with a null flag.
static HOOK_SIGNALS: [AtomicI32; MAX_HOOKS] = [const { AtomicI32::new(0) }; MAX_HOOKS];
static HOOK_FLAGS: [AtomicPtr<AtomicBool>; MAX_HOOKS] =
    [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_HOOKS];

extern "C" fn handler(signal: i32) {
    for i in 0..MAX_HOOKS {
        if HOOK_SIGNALS[i].load(Ordering::Acquire) == signal {
            let p = HOOK_FLAGS[i].load(Ordering::Acquire);
            if !p.is_null() {
                // Safety: a non-null pointer in HOOK_FLAGS is a leaked
                // Arc<AtomicBool> that is never freed.
                unsafe { (*p).store(true, Ordering::SeqCst) };
            }
        }
    }
}

// glibc/musl `struct sigaction` layout on Linux (x86_64 and aarch64):
// handler pointer, 128-byte signal mask, flags, restorer.
#[repr(C)]
struct SigAction {
    sa_handler: usize,
    sa_mask: [u64; 16],
    sa_flags: i32,
    sa_restorer: usize,
}

const SA_RESTART: i32 = 0x1000_0000;

extern "C" {
    fn sigaction(signum: i32, act: *const SigAction, oldact: *mut SigAction) -> i32;
}

fn register_flag(signal: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
    if signal <= 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "bad signal number"));
    }
    // Claim a free slot: publish the flag pointer first, the signal last.
    let ptr = Arc::into_raw(flag) as *mut AtomicBool;
    let mut claimed = false;
    for i in 0..MAX_HOOKS {
        if HOOK_SIGNALS[i].load(Ordering::Acquire) == 0 {
            HOOK_FLAGS[i].store(ptr, Ordering::Release);
            if HOOK_SIGNALS[i]
                .compare_exchange(0, signal, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                claimed = true;
                break;
            }
            // Lost the race for this slot; try the next one.
            HOOK_FLAGS[i].store(std::ptr::null_mut(), Ordering::Release);
        }
    }
    if !claimed {
        // Safety: reconstitute the Arc we just leaked so it is dropped.
        drop(unsafe { Arc::from_raw(ptr as *const AtomicBool) });
        return Err(io::Error::new(io::ErrorKind::Other, "signal hook table full"));
    }
    let act = SigAction {
        sa_handler: handler as *const () as usize,
        sa_mask: [0; 16],
        sa_flags: SA_RESTART,
        sa_restorer: 0,
    };
    // Safety: `act` matches the platform `struct sigaction` layout and the
    // handler only performs async-signal-safe atomic operations.
    let rc = unsafe { sigaction(signal, &act, std::ptr::null_mut()) };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signal: i32) -> i32;
    }

    #[test]
    fn registered_flag_is_set_on_delivery() {
        let flag = Arc::new(AtomicBool::new(false));
        let other = Arc::new(AtomicBool::new(false));
        flag::register(consts::SIGUSR1, Arc::clone(&flag)).expect("register");
        flag::register(consts::SIGUSR1, Arc::clone(&other)).expect("register second");
        assert!(!flag.load(Ordering::SeqCst));
        assert_eq!(unsafe { raise(consts::SIGUSR1) }, 0);
        assert!(flag.load(Ordering::SeqCst), "flag set by handler");
        assert!(other.load(Ordering::SeqCst), "all registrations fire");
    }

    #[test]
    fn rejects_bad_signal_numbers() {
        assert!(flag::register(0, Arc::new(AtomicBool::new(false))).is_err());
        assert!(flag::register(-3, Arc::new(AtomicBool::new(false))).is_err());
    }
}
