//! Offline JSON front-end for the serde shim: [`to_string`] / [`from_str`]
//! over the shim's `serde::Value` tree. Supports the JSON subset the
//! workspace round-trips (finite numbers, strings with standard escapes,
//! arrays, objects, booleans, null).
#![deny(missing_docs, unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.serialize_value()?;
    let mut out = String::new();
    write_value(&v, &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize_value(&v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::custom(format!("cannot serialize non-finite float {x}")));
            }
            // `{:?}` prints the shortest representation that round-trips,
            // and always keeps a `.0` on integral values.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("non-ascii \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by the writer;
                            // reject them on read rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number bytes"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5_f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&42_usize).unwrap(), "42");
        assert_eq!(from_str::<usize>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        let x: f64 = from_str(&to_string(&0.1_f64).unwrap()).unwrap();
        assert_eq!(x, 0.1);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0, 2.5, -3.25];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\tÿ";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5trailing").is_err());
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<f64> = from_str(" [ 1.0 , 2.0 ] ").unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
