//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use: `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId::{new, from_parameter}`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! No statistics, warm-up, or HTML reports: each benchmark runs its closure
//! a fixed number of iterations and prints the mean wall-clock time. That is
//! enough for `cargo bench` to build and run the harness-free bench targets
//! offline and give a rough relative signal. Real criterion's `--test` flag
//! is honored (`cargo bench -- --test` runs every closure exactly once) so
//! CI can smoke the bench targets cheaply.
#![deny(missing_docs, unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Iterations each benchmark closure is timed for. Kept small: these shim
/// runs exist to keep the bench targets compiling and smoke-running, not to
/// produce publication-grade numbers.
const ITERS: u32 = 10;

/// Iteration count honoring real criterion's `--test` flag (`cargo bench
/// -- --test` runs each benchmark exactly once, with no timing claims):
/// the CI smoke job uses it to check the bench targets still run without
/// paying for full timed iterations.
fn iters_from_args() -> u32 {
    if std::env::args().any(|a| a == "--test") {
        1
    } else {
        ITERS
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Id from just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed_ns: 0, iters: iters_from_args() };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed_ns: 0, iters: iters_from_args() };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (report-flush point in real criterion; no-op here).
    pub fn finish(self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean_ns = b.elapsed_ns / u128::from(b.iters.max(1));
        println!("bench {}/{}: {} ns/iter (mean of {})", self.name, id, mean_ns, b.iters);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a benchmark group with the given name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name).bench_function("bench", f);
        self
    }
}

/// Declares a group of benchmark functions (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(10);
        group.bench_function("small", |b| {
            b.iter(|| (0u64..100).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sized", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_benches() {
        benches();
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
