//! Offline stand-in for the subset of `serde` this workspace uses:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string,
//! from_str}` round-trips.
//!
//! The real serde visitor architecture is replaced by a tiny
//! tree-structured [`Value`] data model: `Serialize` renders a value tree,
//! `Deserialize` reads one back. The derive macros (re-exported from the
//! sibling hand-rolled `serde_derive` shim) generate externally-tagged
//! representations compatible with serde's defaults for the shapes used in
//! this repository (structs with named fields; enums with unit, newtype,
//! tuple, and struct variants).
#![deny(missing_docs, unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Tree-structured serialization value (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (covers the workspace's `usize`/`u64` fields; values
    /// beyond `i64` are unrepresentable and rejected at serialization).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (struct fields / externally-tagged enums).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the map entries if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is a [`Value::Seq`].
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field in a [`Value::Map`].
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the shim's [`Value`] tree.
pub trait Serialize {
    /// Serializes into a value tree.
    fn serialize_value(&self) -> Result<Value, Error>;
}

/// Reconstructs `Self` from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches a required struct field from a map value (derive-macro helper).
pub fn field<'v>(v: &'v Value, strukt: &str, name: &str) -> Result<&'v Value, Error> {
    v.get_field(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for `{strukt}`")))
}

impl Serialize for Value {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(self.clone())
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Bool(*self))
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Result<Value, Error> {
                i64::try_from(*self)
                    .map(Value::Int)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of i64 range")))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => Err(Error::custom("expected integer")),
                }
            }
        }
    )*};
}
impl_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for String {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Str(self.clone()))
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Str(self.to_string()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Seq(
            self.iter().map(Serialize::serialize_value).collect::<Result<_, _>>()?,
        ))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(Deserialize::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        match self {
            None => Ok(Value::Null),
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Result<Value, Error> {
        (**self).serialize_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Seq(
            self.iter().map(Serialize::serialize_value).collect::<Result<_, _>>()?,
        ))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Result<Value, Error> {
                Ok(Value::Seq(vec![$(self.$n.serialize_value()?),+]))
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let mut it = s.iter();
                Ok(($(
                    $t::deserialize_value(
                        it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let v = 3.25_f64.serialize_value().unwrap();
        assert_eq!(f64::deserialize_value(&v).unwrap(), 3.25);
        let v = 17_usize.serialize_value().unwrap();
        assert_eq!(usize::deserialize_value(&v).unwrap(), 17);
        let v = vec![1.0, 2.0].serialize_value().unwrap();
        assert_eq!(Vec::<f64>::deserialize_value(&v).unwrap(), vec![1.0, 2.0]);
        let v = Option::<f64>::None.serialize_value().unwrap();
        assert_eq!(Option::<f64>::deserialize_value(&v).unwrap(), None);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert!(field(&v, "S", "a").is_ok());
        let e = field(&v, "S", "b").unwrap_err();
        assert!(e.to_string().contains('b'));
    }
}
