//! The deterministic scheduler behind [`crate::model`].
//!
//! One *execution* runs the model closure with every controlled thread
//! serialized: exactly one thread is ever runnable-and-running, and each
//! atomic operation (plus spawn/join/exit) is a *scheduling point* where
//! the scheduler picks which thread runs next. The sequence of picks is a
//! *schedule*; depth-first search enumerates schedules by replaying a
//! recorded prefix and taking the first untried branch at its end.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Per-thread scheduler state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting for the thread with this id to finish.
    Blocked(usize),
    /// Done; never scheduled again.
    Finished,
}

/// One recorded scheduling decision: which option index was taken out of
/// how many were available at that point.
#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: usize,
    options: usize,
}

struct Sched {
    states: Vec<State>,
    /// Id of the thread allowed to run, `None` once all are finished.
    current: Option<usize>,
    /// Replay prefix for this execution (choice indices).
    prefix: Vec<usize>,
    /// Decisions actually taken this execution (replay + fresh).
    decisions: Vec<Decision>,
    /// Preemptive switches taken so far this execution.
    preemptions: usize,
    /// Cap on preemptive switches (usize::MAX = unbounded/exhaustive).
    preemption_bound: usize,
    /// Set on the first panic in any controlled thread; aborts the search.
    panic_note: Option<String>,
    /// OS handles of spawned threads, drained at end of execution.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    sched: Mutex<Sched>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The `(execution, thread id)` context of the calling OS thread, if it is
/// a controlled thread of a live model execution.
pub(crate) fn context() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_context(ctx: Option<(Arc<Execution>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

impl Execution {
    fn new(prefix: Vec<usize>, preemption_bound: usize) -> Self {
        Self {
            sched: Mutex::new(Sched {
                states: vec![State::Runnable],
                current: Some(0),
                prefix,
                decisions: Vec::new(),
                preemptions: 0,
                preemption_bound,
                panic_note: None,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Picks the next thread to run. `from` is the deciding thread when it
    /// is itself still runnable (so "keep running" is option 0 and any
    /// other pick counts as a preemption); `None` when the deciding thread
    /// just blocked or finished.
    fn schedule_next(&self, s: &mut Sched, from: Option<usize>) {
        let mut options: Vec<usize> = (0..s.states.len())
            .filter(|&i| s.states[i] == State::Runnable)
            .collect();
        if let Some(me) = from {
            // Rotate so the incumbent is option 0: choice 0 never preempts.
            if let Some(pos) = options.iter().position(|&i| i == me) {
                options.rotate_left(pos);
            }
        }
        if options.is_empty() {
            s.current = None;
            self.cv.notify_all();
            return;
        }
        let incumbent_runnable = from.is_some_and(|me| options[0] == me);
        let effective = if incumbent_runnable && s.preemptions >= s.preemption_bound {
            1 // bound reached: the incumbent must keep running
        } else {
            options.len()
        };
        let step = s.decisions.len();
        let chosen = if step < s.prefix.len() {
            s.prefix[step].min(effective - 1)
        } else {
            0
        };
        s.decisions.push(Decision { chosen, options: effective });
        let next = options[chosen];
        if incumbent_runnable && chosen != 0 {
            s.preemptions += 1;
        }
        s.current = Some(next);
        self.cv.notify_all();
    }

    /// A scheduling point for thread `me`: offer the scheduler a switch,
    /// then wait until scheduled again. Returns immediately once the
    /// execution is aborting after a panic (threads then free-run so the
    /// harness can join them; memory safety is upheld by the real atomics
    /// underneath).
    pub(crate) fn switch(&self, me: usize) {
        let mut s = self.sched.lock().expect("loom scheduler lock");
        if s.panic_note.is_some() {
            return;
        }
        self.schedule_next(&mut s, Some(me));
        while s.panic_note.is_none() && s.current != Some(me) {
            s = self.cv.wait(s).expect("loom scheduler lock");
        }
    }

    /// Blocks until scheduled for the first time (entry point of spawned
    /// threads).
    fn wait_first_turn(&self, me: usize) {
        let mut s = self.sched.lock().expect("loom scheduler lock");
        while s.panic_note.is_none() && s.current != Some(me) {
            s = self.cv.wait(s).expect("loom scheduler lock");
        }
    }

    /// Marks `me` finished, wakes any joiners, and hands off the schedule.
    fn exit(&self, me: usize) {
        let mut s = self.sched.lock().expect("loom scheduler lock");
        s.states[me] = State::Finished;
        for st in s.states.iter_mut() {
            if *st == State::Blocked(me) {
                *st = State::Runnable;
            }
        }
        if s.panic_note.is_none() {
            self.schedule_next(&mut s, None);
        } else {
            self.cv.notify_all();
        }
    }

    /// Registers a new controlled thread, returning its id.
    fn register_thread(&self) -> usize {
        let mut s = self.sched.lock().expect("loom scheduler lock");
        s.states.push(State::Runnable);
        s.states.len() - 1
    }

    fn keep_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.sched.lock().expect("loom scheduler lock").os_handles.push(h);
    }

    /// Blocks `me` on `target` finishing, scheduling someone else
    /// meanwhile.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        loop {
            let mut s = self.sched.lock().expect("loom scheduler lock");
            if s.panic_note.is_some() || s.states[target] == State::Finished {
                return;
            }
            s.states[me] = State::Blocked(target);
            self.schedule_next(&mut s, None);
            while s.panic_note.is_none() && s.current != Some(me) {
                s = self.cv.wait(s).expect("loom scheduler lock");
            }
        }
    }

    /// Records the first panic and wakes everyone so the search can abort.
    pub(crate) fn record_panic(&self, note: String) {
        let mut s = self.sched.lock().expect("loom scheduler lock");
        if s.panic_note.is_none() {
            s.panic_note = Some(note);
        }
        self.cv.notify_all();
    }

    /// Waits until every controlled thread has finished.
    fn wait_all_finished(&self) {
        let mut s = self.sched.lock().expect("loom scheduler lock");
        while s.states.iter().any(|st| *st != State::Finished) {
            if s.panic_note.is_some() {
                // Free-running abort: OS joins below provide the barrier.
                return;
            }
            s = self.cv.wait(s).expect("loom scheduler lock");
        }
    }
}

pub(crate) fn spawn_controlled(exec: &Arc<Execution>, body: impl FnOnce() + Send + 'static) -> usize {
    let id = exec.register_thread();
    let exec2 = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(move || {
            set_context(Some((Arc::clone(&exec2), id)));
            exec2.wait_first_turn(id);
            let result = catch_unwind(AssertUnwindSafe(body));
            if let Err(payload) = result {
                exec2.record_panic(panic_text(&payload));
            }
            exec2.exit(id);
            set_context(None);
        })
        .expect("loom: failed to spawn OS thread");
    exec.keep_os_handle(handle);
    id
}

pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Configures and runs a model (upstream-compatible subset of
/// `loom::model::Builder`).
#[derive(Debug, Clone, Default)]
pub struct Builder {
    /// Maximum number of *preemptive* context switches to explore per
    /// execution (`None` = unbounded, fully exhaustive). Bounding to 2–3
    /// keeps larger models tractable while still covering the schedules
    /// that expose almost all interleaving bugs.
    pub preemption_bound: Option<usize>,
    /// Maximum number of distinct executions before the checker gives up
    /// with a panic (a runaway-model backstop, not a soundness knob).
    /// Defaults to `LOOM_MAX_ITERATIONS` or 200 000.
    pub max_iterations: Option<usize>,
}

impl Builder {
    /// A builder with default (exhaustive) settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Explores every schedule of `f` under this configuration.
    pub fn check<F: Fn() + Send + Sync + 'static>(&self, f: F) {
        let max_iterations = self
            .max_iterations
            .or_else(|| {
                std::env::var("LOOM_MAX_ITERATIONS").ok().and_then(|v| v.parse().ok())
            })
            .unwrap_or(200_000);
        let bound = self.preemption_bound.unwrap_or(usize::MAX);
        let mut prefix: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= max_iterations,
                "loom: model not exhausted after {max_iterations} executions; \
                 set a preemption_bound or raise LOOM_MAX_ITERATIONS"
            );
            let exec = Arc::new(Execution::new(prefix.clone(), bound));

            set_context(Some((Arc::clone(&exec), 0)));
            let result = catch_unwind(AssertUnwindSafe(&f));
            if let Err(payload) = result {
                exec.record_panic(panic_text(&payload));
            }
            exec.exit(0);
            exec.wait_all_finished();
            set_context(None);

            let handles = {
                let mut s = exec.sched.lock().expect("loom scheduler lock");
                std::mem::take(&mut s.os_handles)
            };
            for h in handles {
                let _ = h.join();
            }

            let s = exec.sched.lock().expect("loom scheduler lock");
            if let Some(note) = &s.panic_note {
                let schedule: Vec<usize> = s.decisions.iter().map(|d| d.chosen).collect();
                panic!(
                    "loom: model failed after {iterations} execution(s); \
                     schedule {schedule:?}: {note}"
                );
            }
            // DFS: extend from the deepest decision with an untried branch.
            let mut next_prefix = None;
            for (i, d) in s.decisions.iter().enumerate().rev() {
                if d.chosen + 1 < d.options {
                    let mut p: Vec<usize> =
                        s.decisions[..i].iter().map(|d| d.chosen).collect();
                    p.push(d.chosen + 1);
                    next_prefix = Some(p);
                    break;
                }
            }
            drop(s);
            match next_prefix {
                Some(p) => prefix = p,
                None => return, // schedule space exhausted
            }
        }
    }
}

/// Explores every interleaving of `f` (exhaustive search; see
/// [`Builder::preemption_bound`] for bounding larger models).
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) {
    Builder::new().check(f);
}
