//! Offline shim of the `loom` concurrency model checker.
//!
//! The build environment has no registry access, so — like the serde and
//! rand shims under `vendor/` — this implements exactly the subset of the
//! upstream API the workspace uses, with real checking behind it rather
//! than a no-op:
//!
//! * [`model`] runs a closure under a **deterministic scheduler** that
//!   serializes all spawned threads and explores thread interleavings by
//!   depth-first search over scheduling decisions. Every operation on a
//!   [`sync::atomic`] type is a scheduling point; the search reruns the
//!   closure once per distinct schedule until the space (optionally
//!   preemption-bounded, see [`model::Builder`]) is exhausted.
//! * A panic (e.g. a failed assertion) in any thread under any explored
//!   schedule aborts the search and re-panics with the offending schedule
//!   attached, so a lost update or torn accumulation surfaces as a test
//!   failure naming the interleaving that produced it.
//!
//! **Scope, honestly stated:** unlike upstream loom, this shim models
//! *sequentially consistent interleavings only* — it permutes the order in
//! which whole atomic operations execute, but does not model C11 weak-memory
//! reorderings, so it cannot distinguish `Relaxed` from `SeqCst`. That is
//! the right tool for the COCA metrics registry, whose contract is
//! "independent `Relaxed` counters, no cross-variable ordering": the bugs
//! that contract can hide are interleaving bugs (lost CAS updates,
//! check-then-act races, inconsistent multi-variable reads), which this
//! shim finds exhaustively. Ordering-sensitivity itself is covered
//! statically by the `atomic-ordering` audit lint.

#![deny(missing_docs)]

pub mod sync;
pub mod thread;

mod scheduler;

pub use scheduler::model;

/// Upstream-compatible access to [`model::Builder`].
pub mod model {
    pub use crate::scheduler::Builder;
}
