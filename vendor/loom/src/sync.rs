//! Mock `std::sync` types for model executions.

pub use std::sync::Arc;

/// Mock atomics: every operation is a scheduling point, so the model
/// checker explores all interleavings of whole atomic operations.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::scheduler;

    /// Inserts a scheduling point when running under a model execution.
    fn sched_point() {
        if let Some((exec, me)) = scheduler::context() {
            exec.switch(me);
        }
    }

    macro_rules! mock_atomic {
        ($name:ident, $inner:path, $prim:ty) => {
            /// Scheduling-point-instrumented atomic (shim of the loom
            /// type of the same name).
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $inner,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub fn new(v: $prim) -> Self {
                    Self { inner: <$inner>::new(v) }
                }

                /// Atomic load (scheduling point).
                pub fn load(&self, order: Ordering) -> $prim {
                    sched_point();
                    self.inner.load(order)
                }

                /// Atomic store (scheduling point).
                pub fn store(&self, v: $prim, order: Ordering) {
                    sched_point();
                    self.inner.store(v, order);
                }

                /// Atomic swap (scheduling point).
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    sched_point();
                    self.inner.swap(v, order)
                }

                /// Atomic add, returning the previous value (scheduling
                /// point).
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    sched_point();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value
                /// (scheduling point).
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    sched_point();
                    self.inner.fetch_sub(v, order)
                }

                /// Atomic compare-exchange (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    sched_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Atomic compare-exchange allowed to fail spuriously
                /// (scheduling point; the shim never fails spuriously,
                /// which only narrows — never widens — the behaviors a
                /// correct caller must handle).
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    sched_point();
                    self.inner.compare_exchange_weak(current, new, success, failure)
                }
            }
        };
    }

    mock_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    mock_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    mock_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
}
