//! Mock `std::thread` for model executions.

use std::sync::{Arc, Mutex};

use crate::scheduler;

/// Handle to a thread spawned under [`crate::model`].
pub struct JoinHandle<T> {
    exec: Arc<scheduler::Execution>,
    id: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result, as
    /// `std::thread::JoinHandle::join` does. `Err` carries the panic
    /// message when the thread panicked under the explored schedule.
    pub fn join(self) -> Result<T, String> {
        let (exec, me) = scheduler::context()
            .expect("loom::thread::JoinHandle::join outside a model execution");
        debug_assert!(Arc::ptr_eq(&exec, &self.exec));
        exec.join_wait(me, self.id);
        self.result
            .lock()
            .expect("loom join-result lock")
            .take()
            .ok_or_else(|| "loom: joined thread panicked".to_string())
    }
}

/// Spawns a controlled thread inside a model execution.
///
/// Panics when called outside [`crate::model`] — the shim has no
/// free-running mode, which keeps accidental unmodelled use loud.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) =
        scheduler::context().expect("loom::thread::spawn outside a model execution");
    let result = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let id = scheduler::spawn_controlled(&exec, move || {
        let v = f();
        *result2.lock().expect("loom join-result lock") = Some(v);
    });
    // Spawning is itself a scheduling point: the child may run first.
    exec.switch(me);
    JoinHandle { exec, id, result }
}

/// A pure scheduling point: offers the scheduler a switch without touching
/// any shared state.
pub fn yield_now() {
    if let Some((exec, me)) = scheduler::context() {
        exec.switch(me);
    }
}
