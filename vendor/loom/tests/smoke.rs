//! Shim self-tests: the checker must pass correct models and catch a
//! seeded lost-update bug with a named schedule.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

#[test]
fn fetch_add_counter_is_lossless() {
    loom::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

#[test]
#[should_panic(expected = "loom: model failed")]
fn load_then_store_counter_loses_updates() {
    loom::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn cas_retry_loop_is_lossless() {
    loom::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let mut cur = c.load(Ordering::Relaxed);
                    loop {
                        match c.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed) {
                            Ok(_) => return,
                            Err(seen) => cur = seen,
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn preemption_bound_still_finds_simple_races() {
    let mut b = loom::model::Builder::new();
    b.preemption_bound = Some(2);
    let failed = std::panic::catch_unwind(|| {
        b.check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let h = thread::spawn(move || {
                let v = c2.load(Ordering::Relaxed);
                c2.store(v + 1, Ordering::Relaxed);
            });
            let v = c.load(Ordering::Relaxed);
            c.store(v + 1, Ordering::Relaxed);
            h.join().unwrap();
            assert_eq!(c.load(Ordering::Relaxed), 2);
        });
    })
    .is_err();
    assert!(failed, "bounded search must still expose the lost update");
}
