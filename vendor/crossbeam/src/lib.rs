//! Offline stand-in for the subset of `crossbeam` used by this workspace:
//! bounded channels, scoped threads (with crossbeam's `Result`-returning
//! panic propagation), and `SegQueue`. All of it is implemented on `std`
//! primitives — `std::sync::mpsc`, `std::thread::scope`, and a mutexed
//! deque — trading crossbeam's lock-free performance for zero external
//! dependencies. Semantics relevant to this workspace are preserved.
#![deny(missing_docs, unsafe_code)]

/// Multi-producer multi-consumer channels (subset: `bounded`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued; errors if disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors if disconnected and empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Creates a channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads (subset: `scope` with crossbeam's `Result` return).
pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads tied to a scope. The closure passed to
    /// [`Scope::spawn`] receives the scope again (crossbeam's signature);
    /// every caller in this workspace ignores it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread joined before the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads can borrow from the caller's
    /// stack. Returns `Err` with the panic payload if any scoped thread (or
    /// the closure itself) panicked — crossbeam's contract, mapped onto
    /// `std::thread::scope` + `catch_unwind`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Concurrent queues (subset: `SegQueue`).
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue. The lock-free segments of the real
    /// `SegQueue` are replaced by a mutexed `VecDeque`; contention on the
    /// workspace's sweep workloads is negligible next to the work items.
    pub struct SegQueue<T> {
        items: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue { items: Mutex::new(VecDeque::new()) }
        }

        /// Enqueues an item.
        pub fn push(&self, item: T) {
            self.items.lock().unwrap_or_else(|e| e.into_inner()).push_back(item);
        }

        /// Dequeues the oldest item, if any.
        pub fn pop(&self) -> Option<T> {
            self.items.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        /// Number of queued items.
        pub fn len(&self) -> usize {
            self.items.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True when the queue holds no items.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip_across_threads() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        let got = super::thread::scope(|s| {
            s.spawn(move |_| {
                tx.send(7).unwrap();
                tx.send(8).unwrap();
            });
            (rx.recv().unwrap(), rx.recv().unwrap())
        })
        .unwrap();
        assert_eq!(got, (7, 8));
    }

    #[test]
    fn scope_reports_worker_panic_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn segqueue_fifo() {
        let q = super::queue::SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
