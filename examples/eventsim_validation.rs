//! Event-simulation validation of the analytic M/G/1/PS delay model.
//!
//! ```sh
//! cargo run --release --example eventsim_validation
//! ```
//!
//! The year-long experiments use the closed-form processor-sharing delay
//! `d = λ/(x−λ)` (paper eq. 4). This example drives the discrete-event
//! engine with the paper's calibration — 100 ms mean service time at full
//! speed, i.e. x = 10 req/s — across utilizations and three service-time
//! distributions, demonstrating both the accuracy of the formula and the
//! PS insensitivity property (mean delay depends only on the mean job
//! size, not its variance).

use coca::dcsim::eventsim::{PsQueueSim, ServiceDist};
use coca::dcsim::queueing;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2013);
    let completions = 150_000;

    println!("M/G/1/PS mean response time: event simulation vs 1/(x−λ)");
    println!("(x = 10 req/s; {} completions per cell)\n", completions);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "rho", "analytic", "exponential", "determin.", "bursty(scv4)", "max err"
    );

    for rho in [0.3, 0.5, 0.7, 0.8, 0.9] {
        let lambda = rho * 10.0;
        let analytic = queueing::mean_response_time(lambda, 10.0).expect("stable");
        let mut measured = Vec::new();
        for dist in [
            ServiceDist::Exponential { mean: 0.1 },
            ServiceDist::Deterministic { size: 0.1 },
            ServiceDist::bursty(0.1),
        ] {
            let sim = PsQueueSim::new(lambda, 1.0, dist);
            let stats = sim.run(completions, &mut rng);
            measured.push(stats.mean_response);
        }
        let max_err = measured
            .iter()
            .map(|m| ((m - analytic) / analytic).abs())
            .fold(0.0_f64, f64::max);
        println!(
            "{:>6.2} {:>10.4} {:>12.4} {:>12.4} {:>12.4} {:>7.1}%",
            rho, analytic, measured[0], measured[1], measured[2], max_err * 100.0
        );
    }

    println!("\njobs-in-system (the paper's delay cost d = λ/(x−λ)):");
    println!("{:>6} {:>10} {:>12}", "rho", "analytic", "simulated");
    for rho in [0.5, 0.8] {
        let lambda = rho * 10.0;
        let analytic = queueing::delay_cost(lambda, 10.0).expect("stable");
        let sim = PsQueueSim::new(lambda, 1.0, ServiceDist::Exponential { mean: 0.1 });
        let stats = sim.run(completions, &mut rng);
        println!("{:>6.2} {:>10.4} {:>12.4}", rho, analytic, stats.mean_jobs);
    }

    println!("\nPS insensitivity holds: all three service distributions give the");
    println!("same mean delay, so the slot simulator's analytic shortcut is sound.");
}
