//! Batch tier on top of COCA: renewable-aware deferral of delay-tolerant
//! work into the interactive tier's headroom.
//!
//! ```sh
//! cargo run --release --example batch_scheduling
//! ```
//!
//! The paper isolates delay-tolerant batch jobs into "a separate batch job
//! queue" (Sec. 2.3). This example runs COCA for the interactive tier, then
//! schedules a week of nightly batch jobs into the leftover capacity with
//! the plain-EDF and the renewable-aware (GreenEDF) disciplines, and
//! compares how much of the batch energy each covers with on-site
//! renewables.

use std::sync::Arc;

use coca::core::symmetric::SymmetricSolver;
use coca::core::{CocaConfig, CocaController, VSchedule};
use coca::dcsim::batch::{BatchJob, BatchPolicy, BatchScheduler, BatchSlotBudget};
use coca::dcsim::{run_lockstep, Cluster, CostParams};
use coca::traces::{TraceConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(Cluster::scaled_paper_datacenter(8, 50));
    let cost = CostParams::default();
    let hours = 7 * 24;
    let trace = TraceConfig {
        hours,
        workload_kind: WorkloadKind::Fiu,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 25_000.0,
        offsite_energy_kwh: 6_000.0,
        mean_price: 0.5,
        seed: 5,
        ..Default::default()
    }
    .generate();

    // Interactive tier under COCA.
    let cfg = CocaConfig {
        v: VSchedule::Constant(2_000.0),
        frame_length: hours,
        horizon: hours,
        alpha: 1.0,
        rec_total: 3_000.0,
    };
    let coca = CocaController::new(Arc::clone(&cluster), cost, cfg, SymmetricSolver::new());
    let outcome = run_lockstep(Arc::clone(&cluster), &trace, cost, 3_000.0, vec![Box::new(coca)])?
        .pop()
        .expect("one lane, one outcome");

    // Headroom the interactive tier leaves per slot: idle servers (as
    // server-hours) and unabsorbed on-site renewable energy.
    let budgets: Vec<BatchSlotBudget> = outcome
        .records
        .iter()
        .map(|r| BatchSlotBudget {
            capacity: (cluster.num_servers() - r.servers_on) as f64,
            green_energy: (r.onsite - r.facility_energy).max(0.0),
        })
        .collect();

    // A daily batch workload: one job per day, released at midnight with a
    // 36-hour completion window, 600 server-hours each (e.g. index
    // rebuilds) — enough slack to chase the next day's solar peak.
    let jobs: Vec<BatchJob> = (0..6)
        .map(|day| BatchJob { release: day * 24, deadline: day * 24 + 35, work: 600.0 })
        .collect();

    println!("batch workload: {} jobs × 600 server-hours, 36-hour windows", jobs.len());
    println!(
        "interactive tier: {} servers, avg headroom {:.0} server-hours/slot\n",
        cluster.num_servers(),
        budgets.iter().map(|b| b.capacity).sum::<f64>() / hours as f64
    );
    for policy in [BatchPolicy::Edf, BatchPolicy::GreenEdf] {
        let out = BatchScheduler::new(policy).schedule(&jobs, &budgets)?;
        println!("{policy:?}:");
        println!("  deadlines met : {}", out.all_met());
        println!("  green energy  : {:.1} kWh", out.total_green());
        println!("  brown energy  : {:.1} kWh", out.total_brown());
        println!("  green fraction: {:.1}%", out.green_fraction() * 100.0);
    }
    println!("\n(GreenEDF defers work toward renewable-rich slots within each\n\
              deadline window — the effect studied by the paper's refs [4,13,20].)");
    Ok(())
}
