//! GSD in action: sequential vs message-passing distributed engines.
//!
//! ```sh
//! cargo run --release --example gsd_distributed
//! ```
//!
//! Solves one P3 instance (a snapshot slot of the COCA controller) with
//! three solvers — the exhaustive ground truth, sequential GSD, and the
//! crossbeam message-passing distributed GSD — and shows the temperature
//! trade-off of the paper's Fig. 4: low δ explores but does not settle,
//! high δ concentrates on the optimum.

use coca::core::gsd::{GsdOptions, GsdSolver};
use coca::core::gsd_distributed::DistributedGsdSolver;
use coca::core::solver::{ExhaustiveSolver, P3Solver};
use coca::dcsim::dispatch::SlotProblem;
use coca::dcsim::Cluster;
use coca::opt::schedule::TemperatureSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small fleet so the exhaustive solver stays tractable: 6 groups × 5
    // choices = 15 625 states.
    let cluster = Cluster::homogeneous(6, 20);
    let problem = SlotProblem {
        cluster: &cluster,
        arrival_rate: 0.45 * cluster.max_capacity(),
        onsite: 5.0,
        energy_weight: 400.0,
        delay_weight: 1000.0,
        gamma: 0.95,
        pue: 1.1,
    };

    let exact = ExhaustiveSolver.solve(&problem)?;
    println!("exhaustive optimum: objective {:.4}, levels {:?}",
        exact.outcome.objective, exact.levels);

    println!("\nsequential GSD, 800 iterations:");
    println!("{:>12} {:>14} {:>14} {:>10}", "delta", "best", "final-kept", "accepted");
    for delta in [1e2, 1e3, 1e4, 1e6] {
        let mut gsd = GsdSolver::new(GsdOptions {
            iterations: 800,
            schedule: TemperatureSchedule::Constant(delta),
            record_trace: true,
            warm_start: false,
            seed: 7,
            ..Default::default()
        });
        let sol = gsd.solve(&problem)?;
        println!(
            "{:>12.0} {:>14.4} {:>14.4} {:>10}",
            delta,
            sol.outcome.objective,
            gsd.last_trace.last().copied().unwrap_or(f64::NAN),
            gsd.stats().accepted
        );
    }

    println!("\ndistributed GSD (3 worker agents, dual-decomposition load distribution):");
    let mut dist = DistributedGsdSolver::new(
        GsdOptions {
            iterations: 800,
            schedule: TemperatureSchedule::Constant(1e6),
            warm_start: false,
            seed: 7,
            ..Default::default()
        },
        3,
    );
    let sol = dist.solve(&problem)?;
    println!("  objective {:.4} (exhaustive {:.4})", sol.outcome.objective, exact.outcome.objective);
    println!("  levels    {:?}", sol.levels);
    let gap = (sol.outcome.objective - exact.outcome.objective) / exact.outcome.objective;
    println!("  optimality gap: {:.3}%", gap * 100.0);

    // Annealing: start exploratory, finish greedy (Sec. 4.2's advice).
    let mut annealed = GsdSolver::new(GsdOptions {
        iterations: 800,
        schedule: TemperatureSchedule::Geometric { start: 1e2, factor: 1.02, max: 1e7 },
        warm_start: false,
        seed: 7,
        ..Default::default()
    });
    let sol = annealed.solve(&problem)?;
    println!("\nannealed GSD (δ: 1e2 → 1e7): objective {:.4}", sol.outcome.objective);
    Ok(())
}
