//! Capacity planning: what does carbon neutrality cost?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```
//!
//! A planning study built on the offline OPT benchmark: sweep the carbon
//! budget from 70 % to 110 % of the carbon-unaware consumption and report
//! the cost of meeting each target — the "price curve" a data-center
//! operator would consult before committing to a REC purchase, plus the
//! marginal cost of the last 5 % of decarbonization.

use std::sync::Arc;

use coca::baselines::{CarbonUnaware, OfflineOpt};
use coca::core::symmetric::SymmetricSolver;
use coca::dcsim::{run_lockstep, Cluster, CostParams};
use coca::traces::{TraceConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(Cluster::scaled_paper_datacenter(8, 50));
    let cost = CostParams::default();
    let hours = 8 * 7 * 24; // an 8-week planning window
    let trace = TraceConfig {
        hours,
        workload_kind: WorkloadKind::Fiu,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 15_000.0,
        offsite_energy_kwh: 0.0, // planning counts the whole budget as RECs
        mean_price: 0.5,
        seed: 11,
        ..Default::default()
    }
    .generate();

    // One engine pass of the reference policy gives both the consumption
    // and the cost baseline.
    let reference = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        0.0,
        vec![Box::new(CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new()))],
    )?
    .pop()
    .expect("one lane, one outcome");
    let unaware = reference.total_brown_energy();
    let unaware_cost = reference.total_cost();
    println!("reference (carbon-unaware): {:.1} MWh brown, total cost ${:.0}", unaware / 1000.0, unaware_cost);

    println!("\n{:>8} {:>12} {:>12} {:>12} {:>10}", "budget", "MWh", "cost $", "vs unaware", "mu*");
    let mut prev: Option<(f64, f64)> = None;
    let mut marginal_rows = Vec::new();
    for frac in [1.10, 1.00, 0.95, 0.92, 0.85, 0.80, 0.75, 0.70] {
        let budget = frac * unaware;
        let mut solver = SymmetricSolver::new();
        let plan = OfflineOpt::plan(&cluster, cost, &trace, budget, &mut solver)?;
        let total = plan.total_planned_cost();
        println!(
            "{:>7.0}% {:>12.1} {:>12.0} {:>11.2}% {:>10.3}",
            frac * 100.0,
            plan.total_planned_brown() / 1000.0,
            total,
            100.0 * (total / unaware_cost - 1.0),
            plan.multipliers[0],
        );
        if let Some((pf, pc)) = prev {
            let d_budget = (pf - frac) * unaware; // kWh given up
            if d_budget > 0.0 {
                marginal_rows.push((frac, (total - pc) / d_budget));
            }
        }
        prev = Some((frac, total));
    }

    println!("\nmarginal cost of decarbonization ($ per kWh of budget given up):");
    for (frac, m) in marginal_rows {
        println!("  down to {:>4.0}%: {:.4} $/kWh", frac * 100.0, m.max(0.0));
    }
    println!("\n(The curve is convex: the first budget cuts are nearly free — the\n\
              optimizer shifts load to cheap/renewable-rich hours — while deep\n\
              cuts force delay-costly consolidation. This is the planning view\n\
              of the paper's Fig. 5(a).)");
    Ok(())
}
