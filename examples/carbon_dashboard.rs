//! Carbon dashboard: a month-by-month view of COCA vs the carbon-unaware
//! operator over a simulated year.
//!
//! ```sh
//! cargo run --release --example carbon_dashboard
//! ```
//!
//! Prints, per month: average cost, brown energy, carbon allowance, the
//! running deficit, and an ASCII sparkline of the carbon-deficit queue —
//! the signal that drives COCA's decisions.

use std::sync::Arc;

use coca::baselines::CarbonUnaware;
use coca::core::symmetric::SymmetricSolver;
use coca::core::{CocaConfig, CocaController, VSchedule};
use coca::dcsim::{run_lockstep, Cluster, CostParams, Policy, SimOutcome};
use coca::traces::{TraceConfig, WorkloadKind, HOURS_PER_YEAR};

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[f64], buckets: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let chunk = (values.len() / buckets).max(1);
    values
        .chunks(chunk)
        .map(|c| {
            let avg = c.iter().sum::<f64>() / c.len() as f64;
            let idx = ((avg / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            SPARK[idx]
        })
        .collect()
}

fn monthly(outcome: &SimOutcome, f: impl Fn(&coca::dcsim::SlotRecord) -> f64) -> Vec<f64> {
    outcome
        .records
        .chunks(HOURS_PER_YEAR / 12)
        .map(|m| m.iter().map(&f).sum::<f64>() / m.len() as f64)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(Cluster::scaled_paper_datacenter(8, 50));
    let cost = CostParams::default();
    let trace = TraceConfig {
        hours: HOURS_PER_YEAR,
        workload_kind: WorkloadKind::Fiu,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 90_000.0,
        offsite_energy_kwh: 160_000.0,
        mean_price: 0.5,
        seed: 7,
        ..Default::default()
    }
    .generate();

    // Reference consumption: one engine pass of the carbon-unaware policy.
    let unaware_brown = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        0.0,
        vec![Box::new(CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new()))],
    )?
    .pop()
    .expect("one lane, one outcome")
    .total_brown_energy();
    let budget = 0.92 * unaware_brown;
    let rec_total = (budget - trace.total_offsite()).max(0.0);

    let cfg = CocaConfig {
        v: VSchedule::Constant(5_000.0),
        frame_length: HOURS_PER_YEAR,
        horizon: HOURS_PER_YEAR,
        alpha: 1.0,
        rec_total,
    };
    let mut coca = CocaController::new(Arc::clone(&cluster), cost, cfg, SymmetricSolver::new());
    // COCA and the unaware operator advance in lockstep through a single
    // pass over the year; `&mut coca` keeps the queue history readable.
    let mut outcomes = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        rec_total,
        vec![
            Box::new(&mut coca) as Box<dyn Policy + '_>,
            Box::new(CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new())),
        ],
    )?;
    let unaware_outcome = outcomes.pop().expect("unaware lane");
    let outcome = outcomes.pop().expect("coca lane");

    println!("== Carbon dashboard: COCA vs carbon-unaware ==");
    println!("fleet: {} servers, budget {:.0} MWh (92% of unaware)", cluster.num_servers(), budget / 1000.0);
    println!("\n{:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "month", "coca $/h", "unaware $/h", "coca MWh", "unaw. MWh", "allow. MWh");
    let coca_cost = monthly(&outcome, |r| r.total_cost);
    let un_cost = monthly(&unaware_outcome, |r| r.total_cost);
    let coca_brown = monthly(&outcome, |r| r.brown_energy);
    let un_brown = monthly(&unaware_outcome, |r| r.brown_energy);
    let allow = monthly(&outcome, |r| r.offsite + rec_total / HOURS_PER_YEAR as f64);
    let hrs_per_month = (HOURS_PER_YEAR / 12) as f64;
    for m in 0..coca_cost.len() {
        println!(
            "{:>5} {:>12.2} {:>12.2} {:>12.1} {:>12.1} {:>12.1}",
            m + 1,
            coca_cost[m],
            un_cost[m],
            coca_brown[m] * hrs_per_month / 1000.0,
            un_brown[m] * hrs_per_month / 1000.0,
            allow[m] * hrs_per_month / 1000.0
        );
    }

    println!("\ncarbon-deficit queue over the year:");
    println!("  {}", sparkline(&coca.q_history, 72));
    println!("  peak queue: {:.0} kWh", coca.max_deficit());

    println!("\nannual totals:");
    println!("  coca    : ${:.0}, {:.0} MWh brown, neutral: {}",
        outcome.total_cost(), outcome.total_brown_energy() / 1000.0,
        outcome.total_brown_energy() <= budget);
    println!("  unaware : ${:.0}, {:.0} MWh brown, neutral: {}",
        unaware_outcome.total_cost(), unaware_outcome.total_brown_energy() / 1000.0,
        unaware_outcome.total_brown_energy() <= budget);
    Ok(())
}
