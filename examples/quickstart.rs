//! Quickstart: run the COCA controller over a synthetic month.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small heterogeneous data center, generates a month of synthetic
//! environment (workload, renewables, prices), runs COCA with a carbon
//! budget of 90 % of the carbon-unaware consumption, and prints the outcome.
//! Both runs go through the streaming [`coca::dcsim::SimEngine`] via
//! [`run_lockstep`].

use std::sync::Arc;

use coca::baselines::CarbonUnaware;
use coca::core::symmetric::SymmetricSolver;
use coca::core::{CocaConfig, CocaController, VSchedule};
use coca::dcsim::{run_lockstep, Cluster, CostParams, Policy};
use coca::traces::{TraceConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 800-server fleet: 8 groups of 100 servers (4 heterogeneous classes).
    let cluster = Arc::new(Cluster::scaled_paper_datacenter(8, 100));
    let cost = CostParams::default(); // β = 10, γ = 0.95, PUE 1.0

    // One month of hourly environment; peak load ≈ half the fleet capacity.
    let hours = 30 * 24;
    let trace = TraceConfig {
        hours,
        workload_kind: WorkloadKind::Fiu,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 8_000.0,
        offsite_energy_kwh: 15_000.0,
        mean_price: 0.5,
        seed: 42,
        ..Default::default()
    }
    .generate();

    // Reference: what would a carbon-unaware operator consume?
    let reference = CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new());
    let unaware = run_lockstep(Arc::clone(&cluster), &trace, cost, 0.0, vec![Box::new(reference)])?
        .pop()
        .expect("one lane, one outcome")
        .total_brown_energy();
    println!("carbon-unaware consumption : {:.1} MWh", unaware / 1000.0);

    // Carbon budget: 90 % of that, as off-site renewables + RECs.
    let budget = 0.90 * unaware;
    let rec_total = (budget - trace.offsite.iter().sum::<f64>()).max(0.0);
    println!("carbon budget              : {:.1} MWh (RECs: {:.1} MWh)",
        budget / 1000.0, rec_total / 1000.0);

    // The COCA controller: single frame, constant V.
    let cfg = CocaConfig {
        v: VSchedule::Constant(500.0),
        frame_length: hours,
        horizon: hours,
        alpha: 1.0,
        rec_total,
    };
    let mut coca = CocaController::new(Arc::clone(&cluster), cost, cfg, SymmetricSolver::new());

    // Lending `&mut coca` as the lane keeps the controller readable after
    // the run (for its peak deficit-queue length).
    let outcome = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        rec_total,
        vec![Box::new(&mut coca) as Box<dyn Policy + '_>],
    )?
    .pop()
    .expect("one lane, one outcome");

    println!("\n== COCA over {} hours ==", outcome.len());
    println!("average hourly cost        : ${:.2}", outcome.avg_hourly_cost());
    println!("  electricity              : ${:.2}/h", outcome.total_electricity_cost() / hours as f64);
    println!("  delay (β·d)              : ${:.2}/h", outcome.total_delay_cost() / hours as f64);
    println!("brown energy               : {:.1} MWh", outcome.total_brown_energy() / 1000.0);
    println!("budget used                : {:.1} %", 100.0 * outcome.total_brown_energy() / budget);
    println!("carbon neutral             : {}", outcome.total_brown_energy() <= budget);
    println!("peak carbon-deficit queue  : {:.1} kWh", coca.max_deficit());
    Ok(())
}
