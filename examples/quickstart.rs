//! Quickstart: run the COCA controller over a synthetic month.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small heterogeneous data center, generates a month of synthetic
//! environment (workload, renewables, prices), runs COCA with a carbon
//! budget of 90 % of the carbon-unaware consumption, and prints the outcome.

use coca::baselines::CarbonUnaware;
use coca::core::symmetric::SymmetricSolver;
use coca::core::{CocaConfig, CocaController, VSchedule};
use coca::dcsim::{Cluster, CostParams, SlotSimulator};
use coca::traces::{TraceConfig, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 800-server fleet: 8 groups of 100 servers (4 heterogeneous classes).
    let cluster = Cluster::scaled_paper_datacenter(8, 100);
    let cost = CostParams::default(); // β = 10, γ = 0.95, PUE 1.0

    // One month of hourly environment; peak load ≈ half the fleet capacity.
    let hours = 30 * 24;
    let trace = TraceConfig {
        hours,
        workload_kind: WorkloadKind::Fiu,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 8_000.0,
        offsite_energy_kwh: 15_000.0,
        mean_price: 0.5,
        seed: 42,
        ..Default::default()
    }
    .generate();

    // Reference: what would a carbon-unaware operator consume?
    let unaware =
        CarbonUnaware::annual_consumption(&cluster, cost, &trace, SymmetricSolver::new())?;
    println!("carbon-unaware consumption : {:.1} MWh", unaware / 1000.0);

    // Carbon budget: 90 % of that, as off-site renewables + RECs.
    let budget = 0.90 * unaware;
    let rec_total = budget - trace.offsite.iter().sum::<f64>();
    println!("carbon budget              : {:.1} MWh (RECs: {:.1} MWh)",
        budget / 1000.0, rec_total.max(0.0) / 1000.0);

    // The COCA controller: single frame, constant V.
    let cfg = CocaConfig {
        v: VSchedule::Constant(500.0),
        frame_length: hours,
        horizon: hours,
        alpha: 1.0,
        rec_total: rec_total.max(0.0),
    };
    let mut coca = CocaController::new(&cluster, cost, cfg, SymmetricSolver::new());

    let sim = SlotSimulator::new(&cluster, &trace, cost, rec_total.max(0.0));
    let outcome = sim.run(&mut coca)?;

    println!("\n== COCA over {} hours ==", outcome.len());
    println!("average hourly cost        : ${:.2}", outcome.avg_hourly_cost());
    println!("  electricity              : ${:.2}/h", outcome.total_electricity_cost() / hours as f64);
    println!("  delay (β·d)              : ${:.2}/h", outcome.total_delay_cost() / hours as f64);
    println!("brown energy               : {:.1} MWh", outcome.total_brown_energy() / 1000.0);
    println!("budget used                : {:.1} %", 100.0 * outcome.total_brown_energy() / budget);
    println!("carbon neutral             : {}", outcome.total_brown_energy() <= budget);
    println!("peak carbon-deficit queue  : {:.1} kWh", coca.max_deficit());
    Ok(())
}
