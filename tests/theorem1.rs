//! Empirical validation of Theorem 1: GSD converges to the global optimum
//! of P3 with probability → 1 as the temperature δ → ∞, and its chain's
//! stationary law matches the closed-form Gibbs distribution (eq. 25).

use coca::core::gsd::{GsdOptions, GsdSolver};
use coca::core::solver::{ExhaustiveSolver, P3Solver};
use coca::dcsim::dispatch::SlotProblem;
use coca::dcsim::Cluster;
use coca::opt::gibbs::gibbs_stationary;
use coca::opt::schedule::TemperatureSchedule;

fn problem(cluster: &Cluster) -> SlotProblem<'_> {
    SlotProblem {
        cluster,
        arrival_rate: 0.4 * cluster.max_capacity(),
        onsite: 2.0,
        energy_weight: 30.0,
        delay_weight: 25.0,
        gamma: 0.95,
        pue: 1.0,
    }
}

#[test]
fn probability_of_finding_optimum_increases_with_delta() {
    let cluster = Cluster::homogeneous(3, 6);
    let p = problem(&cluster);
    let exact = ExhaustiveSolver.solve(&p).expect("exhaustive");

    let success_rate = |delta: f64| -> f64 {
        let trials = 20;
        let mut hits = 0;
        for seed in 0..trials {
            let mut gsd = GsdSolver::new(GsdOptions {
                iterations: 400,
                schedule: TemperatureSchedule::Constant(delta),
                warm_start: false,
                record_trace: true,
                seed,
                ..Default::default()
            });
            let _ = gsd.solve(&p).expect("gsd");
            // Theorem 1 is about the *kept* state concentrating on the
            // optimum, not the best-seen state.
            let final_cost = *gsd.last_trace.last().expect("trace");
            if (final_cost - exact.outcome.objective).abs()
                <= exact.outcome.objective * 1e-6 + 1e-6
            {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    };

    let low = success_rate(1.0);
    let high = success_rate(1e8);
    assert!(
        high >= low,
        "success probability must not decrease with δ: δ→∞ {high} vs δ=1 {low}"
    );
    assert!(high >= 0.9, "at δ=1e8 the kept state should almost surely be optimal, got {high}");
}

#[test]
fn stationary_distribution_matches_gibbs_law_on_p3() {
    // Enumerate a tiny P3 state space and compare the closed-form Ω with
    // the empirical visit frequencies of the GSD chain.
    let cluster = Cluster::homogeneous(2, 4);
    let p = problem(&cluster);
    let counts = cluster.choice_counts();
    let delta = 200.0;

    let cost = |state: &[usize]| GsdSolver::state_cost(&p, state);
    let stationary = gibbs_stationary(&counts, cost, delta).expect("stationary");

    // Drive the chain manually (same dynamics as run_gibbs) and count.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut kept: Vec<usize> = cluster.full_speed_vector();
    let mut kept_cost = cost(&kept);
    let mut visits = std::collections::HashMap::<Vec<usize>, usize>::new();
    let iters = 120_000;
    for _ in 0..iters {
        let site = rng.gen_range(0..counts.len());
        let proposal = rng.gen_range(0..counts[site]);
        let old = kept[site];
        if proposal != old {
            kept[site] = proposal;
            let c = cost(&kept);
            let u = coca::opt::sigmoid(delta * (1.0 / c - 1.0 / kept_cost));
            if rng.gen::<f64>() < u {
                kept_cost = c;
            } else {
                kept[site] = old;
            }
        }
        *visits.entry(kept.clone()).or_default() += 1;
    }
    for (state, pi) in &stationary {
        let emp = *visits.get(state).unwrap_or(&0) as f64 / iters as f64;
        assert!(
            (emp - pi).abs() < 0.03,
            "state {state:?}: empirical {emp:.4} vs Gibbs law {pi:.4}"
        );
    }
}

#[test]
fn distributed_engine_agrees_with_sequential_quality() {
    use coca::core::gsd_distributed::DistributedGsdSolver;
    let cluster = Cluster::homogeneous(4, 5);
    let p = problem(&cluster);
    let exact = ExhaustiveSolver.solve(&p).expect("exhaustive");
    let opts = GsdOptions {
        iterations: 1500,
        schedule: TemperatureSchedule::Constant(1e8),
        warm_start: false,
        seed: 4,
        ..Default::default()
    };
    let mut seq = GsdSolver::new(opts.clone());
    let mut dist = DistributedGsdSolver::new(opts, 2);
    let a = seq.solve(&p).expect("seq");
    let b = dist.solve(&p).expect("dist");
    for sol in [&a, &b] {
        let rel = (sol.outcome.objective - exact.outcome.objective)
            / exact.outcome.objective.max(1e-9);
        assert!(rel < 5e-3, "GSD engines must reach the optimum: gap {rel}");
    }
}
