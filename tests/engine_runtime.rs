//! Engine acceptance tests (ISSUE PR 3): lockstep multi-policy runs must
//! be bit-compatible with individual per-policy passes, and checkpointing
//! at a frame boundary followed by resume must reproduce the uninterrupted
//! run exactly.

use std::sync::Arc;

use coca::baselines::{CarbonUnaware, PerfectHp};
use coca::core::symmetric::SymmetricSolver;
use coca::core::{CocaConfig, CocaController, VSchedule};
use coca::dcsim::{
    run_lockstep, Cluster, CostParams, FnSource, Policy, SimEngine, SimOutcome, StepStatus,
    SummarySink,
};
use coca::traces::{EnvironmentTrace, TraceConfig, WorkloadKind};

fn cluster() -> Arc<Cluster> {
    Arc::new(Cluster::scaled_paper_datacenter(4, 25))
}

fn trace(hours: usize) -> EnvironmentTrace {
    TraceConfig {
        hours,
        workload_kind: WorkloadKind::Fiu,
        peak_arrival_rate: 0.45 * cluster().max_capacity(),
        onsite_energy_kwh: 40.0 * hours as f64 / 100.0,
        offsite_energy_kwh: 90.0 * hours as f64 / 100.0,
        mean_price: 0.5,
        seed: 9,
        ..Default::default()
    }
    .generate()
}

/// Builds the full five-controller policy set (COCA at two V values, the
/// carbon-unaware minimizer, and PerfectHP; OfflineOpt needs a plan bound
/// to a budget, exercised separately in the baselines crate).
fn policy_set<'a>(
    cluster: &Arc<Cluster>,
    cost: CostParams,
    env: &EnvironmentTrace,
    rec_total: f64,
) -> Vec<Box<dyn Policy + 'a>> {
    let mut set: Vec<Box<dyn Policy + 'a>> = Vec::new();
    for v in [40.0, 4_000.0] {
        let cfg = CocaConfig {
            v: VSchedule::Constant(v),
            frame_length: env.len(),
            horizon: env.len(),
            alpha: 1.0,
            rec_total,
        };
        set.push(Box::new(CocaController::new(
            Arc::clone(cluster),
            cost,
            cfg,
            SymmetricSolver::new(),
        )));
    }
    set.push(Box::new(CarbonUnaware::new(Arc::clone(cluster), cost, SymmetricSolver::new())));
    set.push(Box::new(
        PerfectHp::<SymmetricSolver>::new(Arc::clone(cluster), cost, env, rec_total, 24)
            .expect("hp plans"),
    ));
    set
}

fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() / scale
        })
        .fold(0.0, f64::max)
}

#[test]
fn lockstep_policies_match_individual_passes_to_1e12() {
    let cluster = cluster();
    let cost = CostParams::default();
    let env = trace(96);
    let rec_total = 60.0;

    let lockstep = run_lockstep(
        Arc::clone(&cluster),
        &env,
        cost,
        rec_total,
        policy_set(&cluster, cost, &env, rec_total),
    )
    .expect("lockstep run");

    let individual: Vec<SimOutcome> = policy_set(&cluster, cost, &env, rec_total)
        .into_iter()
        .map(|policy| {
            run_lockstep(Arc::clone(&cluster), &env, cost, rec_total, vec![policy])
                .expect("individual run")
                .pop()
                .expect("one outcome")
        })
        .collect();

    assert_eq!(lockstep.len(), individual.len());
    for (joint, solo) in lockstep.iter().zip(&individual) {
        assert_eq!(joint.policy, solo.policy);
        assert!(
            max_rel_err(&joint.cost_series(), &solo.cost_series()) <= 1e-12,
            "{}: lockstep cost series deviates from the individual pass",
            joint.policy
        );
        let joint_brown: Vec<f64> = joint.records.iter().map(|r| r.brown_energy).collect();
        let solo_brown: Vec<f64> = solo.records.iter().map(|r| r.brown_energy).collect();
        assert!(
            max_rel_err(&joint_brown, &solo_brown) <= 1e-12,
            "{}: lockstep brown-energy series deviates",
            joint.policy
        );
    }
}

#[test]
fn checkpoint_at_frame_boundary_then_resume_is_exact() {
    let cluster = cluster();
    let cost = CostParams::default();
    let env = trace(96);
    let rec_total = 60.0;
    let frame = 24;

    // Reference: uninterrupted run.
    let reference = run_lockstep(
        Arc::clone(&cluster),
        &env,
        cost,
        rec_total,
        policy_set(&cluster, cost, &env, rec_total),
    )
    .expect("reference run");

    // Interrupted run: advance two frames, checkpoint, drop the engine.
    let mut first = SimEngine::new(Arc::clone(&cluster), &env, cost, rec_total).expect("engine");
    for policy in policy_set(&cluster, cost, &env, rec_total) {
        let _ = first.add_policy(policy);
    }
    for _ in 0..(2 * frame) {
        assert_eq!(first.step().expect("step"), StepStatus::Advanced);
    }
    let state = first.checkpoint().expect("checkpoint");
    assert_eq!(state.t, 2 * frame);
    // JSON round-trip, as `repro --resume` does it.
    let json = serde_json::to_string(&state).expect("serialize");
    let state: coca::dcsim::EngineState = serde_json::from_str(&json).expect("parse");
    drop(first);

    // Resume in a fresh engine with freshly-built policies.
    let mut second = SimEngine::new(Arc::clone(&cluster), &env, cost, rec_total).expect("engine");
    for policy in policy_set(&cluster, cost, &env, rec_total) {
        let _ = second.add_policy(policy);
    }
    second.restore(&state).expect("restore");
    assert_eq!(second.t(), 2 * frame);
    let _ = second.run_to_end().expect("resume run");
    let resumed = second.into_outcomes().expect("outcomes");

    assert_eq!(resumed, reference, "resumed run must equal the uninterrupted run exactly");
}

#[test]
fn generator_source_streams_unbounded_synthetic_slots() {
    // A synthetic slot generator with no materialized trace: the engine
    // pulls slots on demand and a SummarySink keeps memory flat.
    let cluster = cluster();
    let cost = CostParams::default();
    let horizon = 500;
    let peak = 0.4 * cluster.max_capacity();
    let source = FnSource::with_len(
        move |t| {
            (t < horizon).then(|| coca::traces::SlotEnv {
                t,
                arrival_rate: peak * (0.6 + 0.4 * ((t % 24) as f64 / 23.0)),
                onsite: 5.0,
                price: 0.04 + 0.02 * ((t % 24) as f64 / 23.0),
                offsite: 8.0,
            })
        },
        horizon,
    );
    let mut engine = SimEngine::new(Arc::clone(&cluster), source, cost, 100.0).expect("engine");
    let _ = engine.add_policy_with_sink(
        Box::new(CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new())),
        Box::new(SummarySink::new()),
    );
    let steps = engine.run_to_end().expect("run");
    assert_eq!(steps, horizon);
}
