//! Property-based cross-checks of the optimization stack on random
//! instances: the exact water-filling solver against the projected-gradient
//! fallback, the symmetric P3 solver against GSD and exhaustive search, and
//! the structural invariants every dispatch must satisfy.

use coca::core::gsd::{GsdOptions, GsdSolver};
use coca::core::solver::{ExhaustiveSolver, P3Solver};
use coca::core::symmetric::SymmetricSolver;
use coca::dcsim::dispatch::{optimal_dispatch, SlotProblem};
use coca::dcsim::Cluster;
use coca::opt::pgd::{solve_pgd, PgdOptions};
use coca::opt::schedule::TemperatureSchedule;
use coca::opt::waterfill::{solve, LoadDistProblem, QueueSpec};
use proptest::prelude::*;

fn queue_strategy() -> impl Strategy<Value = QueueSpec> {
    (1.0..50.0_f64, 0.5..0.99_f64, 0.0..2.0_f64)
        .prop_map(|(cap, gamma, slope)| QueueSpec::single(cap, gamma * cap, slope))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn waterfill_agrees_with_pgd(
        queues in proptest::collection::vec(queue_strategy(), 1..6),
        load_frac in 0.0..0.95_f64,
        a in 0.0..20.0_f64,
        w in 0.01..20.0_f64,
        r in 0.0..30.0_f64,
    ) {
        let capped: f64 = queues.iter().map(|q| q.util_cap).sum();
        let p = LoadDistProblem {
            queues: &queues,
            total_load: load_frac * capped,
            energy_weight: a,
            delay_weight: w,
            base_power: 0.5,
            renewable: r,
        };
        let exact = solve(&p).unwrap();
        let approx = solve_pgd(&p, PgdOptions::default()).unwrap();
        let v_pgd = p.objective(&approx);
        // PGD is approximate: it must not beat the exact optimum by more
        // than numerical noise, and must come close to it.
        prop_assert!(exact.objective <= v_pgd + v_pgd.abs() * 1e-4 + 1e-6,
            "exact {} worse than pgd {}", exact.objective, v_pgd);
        prop_assert!(v_pgd <= exact.objective * 1.02 + 1e-4,
            "pgd {} far from exact {}", v_pgd, exact.objective);
    }

    #[test]
    fn waterfill_solution_is_feasible_and_conserving(
        queues in proptest::collection::vec(queue_strategy(), 1..8),
        load_frac in 0.0..0.999_f64,
        a in 0.0..50.0_f64,
        w in 0.0..50.0_f64,
        r in 0.0..100.0_f64,
    ) {
        let capped: f64 = queues.iter().map(|q| q.util_cap).sum();
        let p = LoadDistProblem {
            queues: &queues,
            total_load: load_frac * capped,
            energy_weight: a,
            delay_weight: w,
            base_power: 0.0,
            renewable: r,
        };
        let sol = solve(&p).unwrap();
        let total = p.dispatched(&sol.lambdas);
        prop_assert!((total - p.total_load).abs() <= p.total_load * 1e-6 + 1e-9,
            "load not conserved: {} vs {}", total, p.total_load);
        for (l, q) in sol.lambdas.iter().zip(&queues) {
            prop_assert!(*l >= -1e-12 && *l <= q.util_cap * (1.0 + 1e-9));
        }
        prop_assert!(sol.objective >= 0.0);
        prop_assert!(sol.power >= 0.0 && sol.delay >= 0.0);
    }

    #[test]
    fn multiplicity_compression_is_lossless(
        cap in 2.0..30.0_f64,
        gamma in 0.5..0.95_f64,
        slope in 0.0..1.0_f64,
        m in 2usize..6,
        load_frac in 0.01..0.9_f64,
        a in 0.0..10.0_f64,
        w in 0.1..10.0_f64,
    ) {
        let compact = vec![QueueSpec { capacity: cap, util_cap: gamma * cap, energy_slope: slope, multiplicity: m as f64 }];
        let expanded: Vec<QueueSpec> = (0..m).map(|_| QueueSpec::single(cap, gamma * cap, slope)).collect();
        let load = load_frac * (m as f64) * gamma * cap;
        fn mk<'a>(qs: &'a [QueueSpec], load: f64, a: f64, w: f64) -> LoadDistProblem<'a> {
            LoadDistProblem {
                queues: qs,
                total_load: load,
                energy_weight: a,
                delay_weight: w,
                base_power: 0.0,
                renewable: 0.0,
            }
        }
        let sc = solve(&mk(&compact, load, a, w)).unwrap();
        let se = solve(&mk(&expanded, load, a, w)).unwrap();
        prop_assert!((sc.objective - se.objective).abs() <= se.objective.abs() * 1e-6 + 1e-9,
            "compression changed the optimum: {} vs {}", sc.objective, se.objective);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn symmetric_solver_close_to_exhaustive(
        groups in 2usize..5,
        servers in 2usize..6,
        load_frac in 0.05..0.9_f64,
        a in 0.1..50.0_f64,
        w in 0.1..50.0_f64,
    ) {
        let cluster = Cluster::homogeneous(groups, servers);
        let p = SlotProblem {
            cluster: &cluster,
            arrival_rate: load_frac * 0.95 * cluster.max_capacity(),
            onsite: 0.0,
            energy_weight: a,
            delay_weight: w,
            gamma: 0.95,
            pue: 1.0,
        };
        let exact = ExhaustiveSolver.solve(&p).unwrap();
        let sym = SymmetricSolver::new().solve(&p).unwrap();
        let rel = (sym.outcome.objective - exact.outcome.objective)
            / exact.outcome.objective.max(1e-9);
        prop_assert!(rel < 0.03, "symmetric gap {} too large (sym {}, exact {})",
            rel, sym.outcome.objective, exact.outcome.objective);
    }

    #[test]
    fn gsd_never_returns_infeasible_or_worse_than_start(
        groups in 2usize..5,
        servers in 2usize..5,
        load_frac in 0.05..0.9_f64,
        seed in 0u64..1000,
    ) {
        let cluster = Cluster::homogeneous(groups, servers);
        let p = SlotProblem {
            cluster: &cluster,
            arrival_rate: load_frac * 0.95 * cluster.max_capacity(),
            onsite: 1.0,
            energy_weight: 5.0,
            delay_weight: 5.0,
            gamma: 0.95,
            pue: 1.0,
        };
        let full = cluster.full_speed_vector();
        let start_cost = optimal_dispatch(&p, &full).unwrap().objective;
        let mut gsd = GsdSolver::new(GsdOptions {
            iterations: 150,
            schedule: TemperatureSchedule::Constant(1e5),
            warm_start: false,
            seed,
            ..Default::default()
        });
        let sol = gsd.solve(&p).unwrap();
        prop_assert!(p.is_feasible(&sol.levels));
        prop_assert!(sol.outcome.objective <= start_cost + 1e-9,
            "best-so-far can never exceed the initial state's cost");
        let total: f64 = sol.loads.iter().sum();
        prop_assert!((total - p.arrival_rate).abs() <= p.arrival_rate * 1e-6 + 1e-9);
    }
}
