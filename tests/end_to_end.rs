//! End-to-end pipeline tests: the calibrated paper scenario at small scale,
//! all four policies, and the cost/neutrality orderings the paper's
//! evaluation relies on.

use std::sync::Arc;

use coca::baselines::{OfflineOpt, PerfectHp};
use coca::core::symmetric::SymmetricSolver;
use coca::core::VSchedule;
use coca::dcsim::run_single;
use coca::traces::WorkloadKind;
use coca_experiments::figures::{calibrate_v, run_coca};
use coca_experiments::setup::{unaware_reference, ExperimentScale, PaperSetup};

fn small_setup() -> PaperSetup {
    PaperSetup::build(ExperimentScale::small(), WorkloadKind::Fiu, 0.92).expect("setup")
}

#[test]
fn calibrated_coca_is_carbon_neutral_and_near_unaware_cost() {
    let setup = small_setup();
    let v = calibrate_v(&setup, 6).expect("calibration");
    let coca = run_coca(&setup, VSchedule::Constant(v), setup.trace.len()).expect("run");
    assert!(
        coca.total_brown_energy() <= setup.budget_kwh * 1.01,
        "COCA must satisfy the budget: {} vs {}",
        coca.total_brown_energy(),
        setup.budget_kwh
    );
    let unaware = unaware_reference(&setup.cluster, setup.cost, &setup.trace, setup.rec_total)
        .expect("unaware");
    // Unconstrained minimization lower-bounds every constrained policy.
    assert!(coca.avg_hourly_cost() >= unaware.avg_hourly_cost() - 1e-9);
    // Paper Fig. 5(a): at a 92% budget the cost premium is a few percent.
    assert!(
        coca.avg_hourly_cost() <= unaware.avg_hourly_cost() * 1.25,
        "COCA premium too large: {} vs {}",
        coca.avg_hourly_cost(),
        unaware.avg_hourly_cost()
    );
}

#[test]
fn policy_cost_ordering_holds() {
    let setup = small_setup();
    // Unaware ≤ OPT ≤ (any online policy meeting the same budget, roughly).
    let unaware = unaware_reference(&setup.cluster, setup.cost, &setup.trace, setup.rec_total)
        .expect("unaware");
    let mut solver = SymmetricSolver::new();
    let opt = OfflineOpt::plan(&setup.cluster, setup.cost, &setup.trace, setup.budget_kwh, &mut solver)
        .expect("opt plan");
    assert!(opt.total_planned_brown() <= setup.budget_kwh * 1.01, "OPT meets the budget");
    assert!(
        opt.total_planned_cost() >= unaware.total_cost() - 1e-6,
        "constrained OPT cannot beat the unconstrained minimum"
    );

    let v = calibrate_v(&setup, 6).expect("calibration");
    let coca = run_coca(&setup, VSchedule::Constant(v), setup.trace.len()).expect("coca");
    // OPT has full future knowledge; COCA is online. Allow a small slack for
    // the dual's budget tolerance.
    assert!(
        coca.total_cost() >= opt.total_planned_cost() * 0.98,
        "online COCA should not beat offline OPT: {} vs {}",
        coca.total_cost(),
        opt.total_planned_cost()
    );
}

#[test]
fn coca_beats_perfect_hp_while_being_more_neutral() {
    let setup = small_setup();
    let v = calibrate_v(&setup, 6).expect("calibration");
    let coca = run_coca(&setup, VSchedule::Constant(v), setup.trace.len()).expect("coca");
    let mut hp: PerfectHp<SymmetricSolver> =
        PerfectHp::new(Arc::clone(&setup.cluster), setup.cost, &setup.trace, setup.rec_total, 48)
            .expect("perfect-hp");
    let hp_out = run_single(
        Arc::clone(&setup.cluster),
        &setup.trace,
        setup.cost,
        setup.rec_total,
        1.0,
        Box::new(&mut hp),
    )
    .expect("hp run");
    // The paper's headline: COCA is cheaper (Fig. 3(a)) — at this reduced
    // scale we only require a strict win, the magnitude is recorded in
    // EXPERIMENTS.md at the full scale.
    assert!(
        coca.avg_hourly_cost() < hp_out.avg_hourly_cost(),
        "COCA {} should beat PerfectHP {}",
        coca.avg_hourly_cost(),
        hp_out.avg_hourly_cost()
    );
    // ... while tracking the budget at least as closely (Fig. 3(b)).
    let coca_gap = (coca.total_brown_energy() - setup.budget_kwh).abs();
    let hp_gap = (hp_out.total_brown_energy() - setup.budget_kwh).abs();
    assert!(
        coca_gap <= hp_gap * 1.05 + 1e-6,
        "COCA budget gap {} should not exceed PerfectHP's {}",
        coca_gap,
        hp_gap
    );
}

#[test]
fn overestimation_and_switching_cost_stay_modest() {
    // Paper Fig. 5(c): ≤2.5% cost increase at 20% overestimation;
    // Fig. 5(d): ≤5% at 0.0231 kWh switching. We allow looser slack at the
    // reduced scale but the "modest" qualitative claim must hold.
    let setup = small_setup();
    let v = calibrate_v(&setup, 5).expect("calibration");
    let fig_c =
        coca_experiments::figures::fig5_overestimation(&setup, v, &[1.0, 1.2]).expect("fig5c");
    let y = &fig_c.series[0].y;
    assert!(y[1] <= 1.10, "20% overestimation should cost <10% at small scale, got {}", y[1]);

    let fig_d =
        coca_experiments::figures::fig5_switching(&setup, v, &[0.0, 0.0231]).expect("fig5d");
    let y = &fig_d.series[0].y;
    assert!(y[1] <= 1.15, "switching cost impact should be modest, got {}", y[1]);
}

#[test]
fn msr_workload_pipeline_works() {
    let setup = PaperSetup::build(ExperimentScale::small(), WorkloadKind::Msr, 0.9).expect("setup");
    let v = calibrate_v(&setup, 5).expect("calibration");
    let coca = run_coca(&setup, VSchedule::Constant(v), setup.trace.len()).expect("run");
    assert!(coca.total_brown_energy() <= setup.budget_kwh * 1.02);
    assert!(coca.avg_hourly_cost().is_finite());
}
