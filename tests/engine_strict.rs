//! Lockstep equivalence under `COCA_STRICT_INVARIANTS=1` (ISSUE PR 3
//! acceptance criterion): with every runtime paper-invariant check promoted
//! to an unconditional panic, an N-policy lockstep run must still complete
//! and still match N individual passes.
//!
//! Separate test binary because strict mode is a process-wide switch that
//! must be set before the first invariant check fires.

use std::sync::Arc;

use coca::baselines::CarbonUnaware;
use coca::core::symmetric::SymmetricSolver;
use coca::core::{invariant, CocaConfig, CocaController, VSchedule};
use coca::dcsim::{run_lockstep, Cluster, CostParams, Policy};
use coca::traces::{EnvironmentTrace, TraceConfig, WorkloadKind};

fn policy_set<'a>(
    cluster: &Arc<Cluster>,
    cost: CostParams,
    horizon: usize,
    rec_total: f64,
) -> Vec<Box<dyn Policy + 'a>> {
    let mut set: Vec<Box<dyn Policy + 'a>> = Vec::new();
    for v in [30.0, 3_000.0] {
        let cfg = CocaConfig {
            v: VSchedule::Constant(v),
            frame_length: horizon,
            horizon,
            alpha: 1.0,
            rec_total,
        };
        set.push(Box::new(CocaController::new(
            Arc::clone(cluster),
            cost,
            cfg,
            SymmetricSolver::new(),
        )));
    }
    set.push(Box::new(CarbonUnaware::new(Arc::clone(cluster), cost, SymmetricSolver::new())));
    set
}

#[test]
fn strict_lockstep_matches_individual_passes() {
    assert!(invariant::force_strict(), "must run before any invariant check");
    assert!(invariant::global().is_strict());

    let cluster = Arc::new(Cluster::homogeneous(4, 20));
    let cost = CostParams::default();
    let env: EnvironmentTrace = TraceConfig {
        hours: 48,
        workload_kind: WorkloadKind::Fiu,
        peak_arrival_rate: 400.0,
        onsite_energy_kwh: 10.0,
        offsite_energy_kwh: 40.0,
        ..Default::default()
    }
    .generate();
    let rec_total = 25.0;

    let lockstep = run_lockstep(
        Arc::clone(&cluster),
        &env,
        cost,
        rec_total,
        policy_set(&cluster, cost, env.len(), rec_total),
    )
    .expect("strict lockstep run");

    for (i, policy) in policy_set(&cluster, cost, env.len(), rec_total).into_iter().enumerate() {
        let solo = run_lockstep(Arc::clone(&cluster), &env, cost, rec_total, vec![policy])
            .expect("strict individual run")
            .pop()
            .expect("one outcome");
        assert_eq!(
            lockstep[i], solo,
            "lane {i}: strict lockstep outcome deviates from individual pass"
        );
    }

    // The runs above must actually have exercised the decision checks.
    let counts = invariant::counts();
    let decisions = counts
        .iter()
        .find(|(name, _)| name.contains("decision") || name.contains("load"))
        .map_or(0, |(_, c)| *c);
    assert!(decisions > 0 || counts.iter().any(|(_, c)| *c > 0), "no invariant checks fired");
}
