//! Empirical validation of Theorem 2: the Lyapunov performance bounds of
//! COCA hold on simulated runs, and the qualitative V trade-off matches.

use coca::core::lyapunov::{
    cost_upper_bound, neutrality_slack_bound, queue_length_bound, DriftConstants, EnvBounds,
};
use coca::core::symmetric::SymmetricSolver;
use coca::core::{CocaConfig, CocaController, VSchedule};
use coca::baselines::OfflineOpt;
use coca::dcsim::run_single;
use coca::traces::WorkloadKind;
use coca_experiments::setup::{ExperimentScale, PaperSetup};

fn setup() -> PaperSetup {
    PaperSetup::build(ExperimentScale::small(), WorkloadKind::Fiu, 0.92).expect("setup")
}

fn env_bounds(s: &PaperSetup) -> EnvBounds {
    let y_max = s.cluster.peak_power() * s.cost.pue;
    let f_max = s.trace.offsite.iter().cloned().fold(0.0_f64, f64::max);
    let z = s.rec_total / s.trace.len() as f64;
    let r_max = s.trace.onsite.iter().cloned().fold(0.0_f64, f64::max);
    EnvBounds { y_max, z_max: f_max + z, r_max }
}

/// Runs COCA with a given (V, T) and returns (avg cost, avg brown, max q).
fn run(s: &PaperSetup, v: f64, frame: usize) -> (f64, f64, f64) {
    let cfg = CocaConfig {
        v: VSchedule::Constant(v),
        frame_length: frame,
        horizon: s.trace.len(),
        alpha: 1.0,
        rec_total: s.rec_total,
    };
    let mut coca =
        CocaController::new(std::sync::Arc::clone(&s.cluster), s.cost, cfg, SymmetricSolver::new());
    let out = run_single(
        std::sync::Arc::clone(&s.cluster),
        &s.trace,
        s.cost,
        s.rec_total,
        1.0,
        Box::new(&mut coca),
    )
    .expect("run");
    (
        out.avg_hourly_cost(),
        out.total_brown_energy() / out.len() as f64,
        coca.max_deficit(),
    )
}

#[test]
fn cost_bound_20_holds() {
    let s = setup();
    let t = s.trace.len(); // single frame: R = 1, T = J
    let consts = DriftConstants::from_bounds(&env_bounds(&s));
    let c_t = consts.c_of(t);

    // G* for the single frame: the optimal T-step lookahead cost.
    let mut solver = SymmetricSolver::new();
    let opt = OfflineOpt::plan(&s.cluster, s.cost, &s.trace, s.budget_kwh, &mut solver)
        .expect("lookahead");
    let g_star = opt.total_planned_cost() / t as f64;

    for v in [s.characteristic_v() * 0.1, s.characteristic_v(), s.characteristic_v() * 10.0] {
        let (avg_cost, _, _) = run(&s, v, t);
        let bound = cost_upper_bound(c_t, &[g_star], &[v]);
        assert!(
            avg_cost <= bound,
            "bound (20) violated at V={v}: cost {avg_cost} > bound {bound}"
        );
    }
}

#[test]
fn neutrality_bound_19_holds() {
    let s = setup();
    let t = s.trace.len();
    let consts = DriftConstants::from_bounds(&env_bounds(&s));
    let c_t = consts.c_of(t);
    let mut solver = SymmetricSolver::new();
    let opt = OfflineOpt::plan(&s.cluster, s.cost, &s.trace, s.budget_kwh, &mut solver)
        .expect("lookahead");
    let g_star = opt.total_planned_cost() / t as f64;
    // g_min: the cheapest feasible hourly cost over the period (0 is always
    // a sound lower bound; use the unaware minimum for a tighter one).
    let unaware = coca_experiments::setup::unaware_reference(&s.cluster, s.cost, &s.trace, s.rec_total)
        .expect("unaware");
    let g_min = unaware.min_hourly_cost().min(g_star);

    let allowance_avg = (s.trace.total_offsite() + s.rec_total) / t as f64;
    for v in [s.characteristic_v(), s.characteristic_v() * 10.0] {
        let (_, avg_brown, max_q) = run(&s, v, t);
        let slack = neutrality_slack_bound(c_t, &[g_star], &[v], g_min, t);
        assert!(
            avg_brown <= allowance_avg + slack,
            "bound (19) violated at V={v}: brown {avg_brown} > allowance {allowance_avg} + slack {slack}"
        );
        // Queue-length bound (31).
        let qb = queue_length_bound(&consts, v, g_star, g_min, t);
        assert!(
            max_q <= qb,
            "queue bound (31) violated at V={v}: max q {max_q} > {qb}"
        );
    }
}

#[test]
fn v_tradeoff_is_monotone_in_the_large() {
    // Theorem 2's qualitative content: cost is non-increasing and brown
    // usage non-decreasing as V grows (checked on a geometric V grid with
    // small tolerance for solver noise).
    let s = setup();
    let v0 = s.characteristic_v();
    let t = s.trace.len();
    let mut last_cost = f64::INFINITY;
    let mut last_brown = 0.0;
    for mult in [0.01, 0.1, 1.0, 10.0, 100.0] {
        let (cost, brown, _) = run(&s, v0 * mult, t);
        assert!(
            cost <= last_cost * 1.02,
            "cost should trend down with V: {cost} after {last_cost}"
        );
        assert!(
            brown >= last_brown * 0.98,
            "brown energy should trend up with V: {brown} after {last_brown}"
        );
        last_cost = cost;
        last_brown = brown;
    }
}

#[test]
fn frame_resets_bound_each_frame_independently() {
    // With R > 1 frames the queue is reset; the per-frame deviation is then
    // bounded by the per-frame inequality (27): within each frame,
    // Σy − Σ(f + z) ≤ q(end-of-frame).
    let s = setup();
    let t = s.trace.len() / 4;
    let rec_per_slot = s.rec_total / s.trace.len() as f64;
    let cfg = CocaConfig {
        v: VSchedule::quarterly(
            s.characteristic_v() * 0.1,
            s.characteristic_v() * 0.3,
            s.characteristic_v(),
            s.characteristic_v() * 3.0,
        ),
        frame_length: t,
        horizon: t * 4,
        alpha: 1.0,
        rec_total: rec_per_slot * (t * 4) as f64,
    };
    let trace = s.trace.window(0, t * 4);
    let mut coca =
        CocaController::new(std::sync::Arc::clone(&s.cluster), s.cost, cfg, SymmetricSolver::new());
    let out = run_single(
        std::sync::Arc::clone(&s.cluster),
        &trace,
        s.cost,
        rec_per_slot * (t * 4) as f64,
        1.0,
        Box::new(&mut coca),
    )
    .expect("run");
    // Reconstruct per-frame totals and verify the telescoped inequality
    // using the recorded queue history (q at each decision epoch).
    for r in 0..4 {
        let lo = r * t;
        let hi = lo + t;
        let used: f64 = out.records[lo..hi].iter().map(|x| x.brown_energy).sum();
        let allowed: f64 = out.records[lo..hi]
            .iter()
            .map(|x| x.offsite + coca.config().alpha * rec_per_slot)
            .sum();
        // q at the last decision of the frame plus the final update bound:
        // conservative check with the max queue over the run.
        assert!(
            used - allowed <= coca.max_deficit() + 1e-6,
            "frame {r}: overage {} exceeds peak queue {}",
            used - allowed,
            coca.max_deficit()
        );
    }
}
