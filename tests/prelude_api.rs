//! The facade's prelude must be sufficient to assemble and run the full
//! COCA pipeline — this is the "downstream user" smoke test.

use std::sync::Arc;

use coca::prelude::*;

#[test]
fn prelude_covers_the_whole_pipeline() {
    // Build a fleet with the builder.
    let cluster = Arc::new(
        ClusterBuilder::new()
            .add_groups(ServerClass::amd_opteron_2380(), 4, 10)
            .build()
            .expect("cluster"),
    );
    assert_eq!(cluster.num_servers(), 40);

    // Generate an environment.
    let trace = TraceConfig {
        hours: 48,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 10.0,
        offsite_energy_kwh: 200.0,
        ..Default::default()
    }
    .generate();

    // Configure COCA.
    let cost = CostParams::default();
    let rec_total = 100.0;
    let cfg = CocaConfig {
        v: VSchedule::Constant(100.0),
        frame_length: 48,
        horizon: 48,
        alpha: 1.0,
        rec_total,
    };

    // Observability: one MetricsObserver watches both the engine and the
    // controller/solver, everything reachable from the prelude.
    let registry = Arc::new(MetricsRegistry::new());
    let observer = Arc::new(MetricsObserver::new(Arc::clone(&registry)));
    let mut solver = SymmetricSolver::new();
    solver.set_observer(Arc::clone(&observer) as _);
    let mut controller = CocaController::new(Arc::clone(&cluster), cost, cfg, solver);
    controller.set_observer(Arc::clone(&observer) as _);

    // Run through the builder → engine surface and inspect.
    let outcomes = EngineBuilder::new(Arc::clone(&cluster), cost)
        .rec_total(rec_total)
        .observer(Arc::clone(&observer) as _)
        .policy(Box::new(controller))
        .build(&trace)
        .expect("engine")
        .run_and_finish()
        .expect("run");
    let outcome: &SimOutcome = &outcomes[0];
    assert_eq!(outcome.len(), 48);
    assert!(outcome.avg_hourly_cost() > 0.0);

    // The observer saw the run; the snapshot round-trips through JSON.
    let snap: MetricsSnapshot = registry.snapshot();
    assert_eq!(snap.counter("engine_slots_total"), Some(48));
    assert_eq!(snap.counter("solver_solves_total"), Some(48));
    assert_eq!(snap.gauge("coca_deficit_queue_kwh").expect("gauge").trajectory.len(), 48);
    let back = MetricsSnapshot::from_json(&snap.to_json().expect("json")).expect("parse");
    assert_eq!(back, snap);

    // The baselines are reachable from the prelude too.
    let mut solver = SymmetricSolver::new();
    let opt = OfflineOpt::plan(&cluster, cost, &trace, 1e9, &mut solver).expect("opt");
    assert_eq!(opt.len(), 48);
    let _unaware = CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new());
    let _hp: PerfectHp<SymmetricSolver> =
        PerfectHp::new(Arc::clone(&cluster), cost, &trace, rec_total, 24).expect("hp");
}

#[test]
fn run_single_replaces_the_old_facade() {
    // run_single is the one-policy batch entry point; it must produce the
    // same numbers as a single-lane lockstep pass.
    let cluster = Arc::new(Cluster::homogeneous(2, 5));
    let trace = TraceConfig {
        hours: 12,
        peak_arrival_rate: 0.4 * cluster.max_capacity(),
        onsite_energy_kwh: 5.0,
        offsite_energy_kwh: 5.0,
        ..Default::default()
    }
    .generate();
    let cost = CostParams::default();
    let mut policy = CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new());
    let single = run_single(Arc::clone(&cluster), &trace, cost, 10.0, 1.0, Box::new(&mut policy))
        .expect("run_single");

    let lockstep = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        10.0,
        vec![Box::new(CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new()))
            as Box<dyn Policy>],
    )
    .expect("lockstep");
    assert_eq!(single, lockstep[0]);
}

#[test]
fn engine_api_reachable_from_prelude() {
    // The streaming engine surface: SimEngine, SlotSource, sinks,
    // run_lockstep, EngineState are all prelude items.
    let cluster = Arc::new(Cluster::homogeneous(2, 5));
    let trace = TraceConfig {
        hours: 12,
        peak_arrival_rate: 0.4 * cluster.max_capacity(),
        onsite_energy_kwh: 5.0,
        offsite_energy_kwh: 5.0,
        ..Default::default()
    }
    .generate();
    let cost = CostParams::default();
    let mut engine =
        SimEngine::new(Arc::clone(&cluster), &trace, cost, 10.0).expect("engine");
    engine.set_observer(Arc::new(NoopObserver));
    let _lane = engine.add_policy(Box::new(CarbonUnaware::new(
        Arc::clone(&cluster),
        cost,
        SymmetricSolver::new(),
    )));
    assert_eq!(engine.step().expect("step"), StepStatus::Advanced);
    let _slots = engine.run_to_end().expect("run");
    let state: EngineState = engine.checkpoint().expect("checkpoint");
    assert_eq!(state.lanes.len(), 1);
    let outcomes = engine.into_outcomes().expect("outcomes");
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].len(), 12);

    // run_lockstep + sinks are usable too.
    let again = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        10.0,
        vec![Box::new(CarbonUnaware::new(
            Arc::clone(&cluster),
            cost,
            SymmetricSolver::new(),
        )) as Box<dyn Policy>],
    )
    .expect("lockstep");
    assert_eq!(again[0].cost_series(), outcomes[0].cost_series());
    let _sink: Box<dyn RecordSink> = Box::new(VecSink::new());
    let _summary = SummarySink::new();
}

#[test]
fn push_api_reachable_from_prelude() {
    // The live-stream surface: push_source, PollSlot, ServiceConfig /
    // ServiceExit, PolicyTelemetry and DecisionContext are prelude items.
    let cluster = Arc::new(Cluster::homogeneous(2, 5));
    let trace = TraceConfig {
        hours: 6,
        peak_arrival_rate: 0.4 * cluster.max_capacity(),
        onsite_energy_kwh: 5.0,
        offsite_energy_kwh: 5.0,
        ..Default::default()
    }
    .generate();
    let cost = CostParams::default();

    let (handle, source): (PushHandle, PushSource) = push_source(8);
    for env in trace.slots() {
        handle.push(env).expect("push");
    }
    assert!(matches!(handle.push(trace.slots().next().unwrap()), Err(PushError::OutOfOrder { .. })));
    handle.close();

    let mut engine =
        SimEngine::new(Arc::clone(&cluster), source, cost, 10.0).expect("engine");
    engine.add_policy(Box::new(CarbonUnaware::new(
        Arc::clone(&cluster),
        cost,
        SymmetricSolver::new(),
    )));
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut checkpoints: Vec<EngineState> = Vec::new();
    let exit = engine
        .run_service(&ServiceConfig { checkpoint_every: Some(3), ..Default::default() }, &stop, |s| {
            checkpoints.push(s.clone());
            Ok(())
        })
        .expect("service");
    assert_eq!(exit, ServiceExit::Closed);
    assert!(!checkpoints.is_empty());
    let outcomes = engine.into_outcomes().expect("outcomes");
    assert_eq!(outcomes[0].len(), 6);

    // Telemetry + decision-context types are constructible downstream.
    let tele = PolicyTelemetry { deficit_kwh: 0.0, frame_pos: 0, v: 1.0 };
    let levels = [1usize];
    let loads = [0.5f64];
    let ctx = DecisionContext { levels: &levels, loads: &loads, telemetry: Some(tele) };
    assert_eq!(ctx.levels.len(), ctx.loads.len());
    let _closed: PollSlot = PollSlot::Closed;
}

#[test]
fn serve_wire_surface_reachable_from_prelude() {
    // The service's wire vocabulary — InMsg/OutMsg/DecisionMsg, SlotEnv,
    // ServeConfig/ServeReport, WireSink — is prelude-importable, and a
    // whole in-memory service run is drivable from it.
    let env = SlotEnv { t: 0, arrival_rate: 2.0, onsite: 0.5, price: 0.08, offsite: 0.25 };
    let line = InMsg::Slot(env).to_line();
    assert!(matches!(InMsg::parse(&line), Ok(InMsg::Slot(back)) if back == env));

    let msg = OutMsg::Decision(DecisionMsg {
        t: 0,
        policy: "coca".into(),
        levels: vec![1, 2],
        loads: vec![1.0, 1.0],
        servers_on: 10,
        total_cost: 3.5,
        brown_energy: 0.2,
        telemetry: Some(PolicyTelemetry { deficit_kwh: 0.1, frame_pos: 0, v: 100.0 }),
    });
    let parsed = OutMsg::parse(&msg.to_line()).expect("round-trip");
    assert_eq!(parsed, msg);

    // run_batch over an NDJSON stream, configured entirely through
    // prelude types.
    let cfg = ServeConfig {
        groups: 2,
        servers_per_group: 5,
        rec_total: 10.0,
        ..Default::default()
    };
    let trace = TraceConfig {
        hours: 6,
        peak_arrival_rate: 8.0,
        onsite_energy_kwh: 5.0,
        offsite_energy_kwh: 5.0,
        ..Default::default()
    }
    .generate();
    let mut ndjson = String::new();
    for env in trace.slots() {
        ndjson.push_str(&InMsg::Slot(env).to_line());
        ndjson.push('\n');
    }
    ndjson.push_str(&InMsg::End.to_line());
    let publisher = coca::serve::Publisher::new();
    let report: ServeReport = coca::serve::run_batch(
        &cfg,
        Box::new(std::io::Cursor::new(ndjson.into_bytes())),
        Arc::clone(&publisher),
        Arc::new(MetricsRegistry::new()),
    )
    .expect("batch service run");
    assert_eq!(report.slots, 6);
    assert_eq!(report.outcome.len(), 6);
    let _sink_ty = std::marker::PhantomData::<WireSink>;
}

#[test]
fn deficit_queue_and_gsd_options_exported() {
    let mut q = DeficitQueue::new(1.0, 100.0, 100);
    q.update(5.0, 1.0);
    assert!(q.len() > 0.0);
    let opts = GsdOptions::default();
    assert_eq!(opts.iterations, 500);
    let mut gsd = GsdSolver::new(opts);
    let stats: &SolveStats = gsd.stats();
    assert_eq!(stats.iterations, 0);
    gsd.set_observer(Arc::new(NoopObserver));
    // A policy observation can be constructed by library users.
    let obs = SlotObservation { t: 0, arrival_rate: 1.0, onsite: 0.0, price: 0.05 };
    assert_eq!(obs.t, 0);
    // Solver-level tracing vocabulary is deliberately *not* in the prelude;
    // it remains importable from the obs crate directly.
    assert_eq!(coca::obs::Phase::Solve.name(), "solve");
    assert!(!EngineObserver::timing_enabled(&NoopObserver));
}
