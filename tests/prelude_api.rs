//! The facade's prelude must be sufficient to assemble and run the full
//! COCA pipeline — this is the "downstream user" smoke test.

use std::sync::Arc;

use coca::prelude::*;

#[test]
fn prelude_covers_the_whole_pipeline() {
    // Build a fleet with the builder.
    let cluster = Arc::new(
        ClusterBuilder::new()
            .add_groups(ServerClass::amd_opteron_2380(), 4, 10)
            .build()
            .expect("cluster"),
    );
    assert_eq!(cluster.num_servers(), 40);

    // Generate an environment.
    let trace = TraceConfig {
        hours: 48,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 10.0,
        offsite_energy_kwh: 200.0,
        ..Default::default()
    }
    .generate();

    // Configure COCA.
    let cost = CostParams::default();
    let rec_total = 100.0;
    let cfg = CocaConfig {
        v: VSchedule::Constant(100.0),
        frame_length: 48,
        horizon: 48,
        alpha: 1.0,
        rec_total,
    };

    // Observability: one MetricsObserver watches both the engine and the
    // controller/solver, everything reachable from the prelude.
    let registry = Arc::new(MetricsRegistry::new());
    let observer = Arc::new(MetricsObserver::new(Arc::clone(&registry)));
    let mut solver = SymmetricSolver::new();
    solver.set_observer(Arc::clone(&observer) as _);
    let mut controller = CocaController::new(Arc::clone(&cluster), cost, cfg, solver);
    controller.set_observer(Arc::clone(&observer) as _);

    // Run through the builder → engine surface and inspect.
    let outcomes = EngineBuilder::new(Arc::clone(&cluster), cost)
        .rec_total(rec_total)
        .observer(Arc::clone(&observer) as _)
        .policy(Box::new(controller))
        .build(&trace)
        .expect("engine")
        .run_and_finish()
        .expect("run");
    let outcome: &SimOutcome = &outcomes[0];
    assert_eq!(outcome.len(), 48);
    assert!(outcome.avg_hourly_cost() > 0.0);

    // The observer saw the run; the snapshot round-trips through JSON.
    let snap: MetricsSnapshot = registry.snapshot();
    assert_eq!(snap.counter("engine_slots_total"), Some(48));
    assert_eq!(snap.counter("solver_solves_total"), Some(48));
    assert_eq!(snap.gauge("coca_deficit_queue_kwh").expect("gauge").trajectory.len(), 48);
    let back = MetricsSnapshot::from_json(&snap.to_json().expect("json")).expect("parse");
    assert_eq!(back, snap);

    // The baselines are reachable from the prelude too.
    let mut solver = SymmetricSolver::new();
    let opt = OfflineOpt::plan(&cluster, cost, &trace, 1e9, &mut solver).expect("opt");
    assert_eq!(opt.len(), 48);
    let _unaware = CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new());
    let _hp: PerfectHp<SymmetricSolver> =
        PerfectHp::new(Arc::clone(&cluster), cost, &trace, rec_total, 24).expect("hp");
}

#[test]
#[allow(deprecated)]
fn deprecated_slot_simulator_facade_still_works() {
    // SlotSimulator stays exported (deprecated) for one release; the facade
    // must keep producing the same numbers as a single-lane engine pass.
    let cluster = Arc::new(Cluster::homogeneous(2, 5));
    let trace = TraceConfig {
        hours: 12,
        peak_arrival_rate: 0.4 * cluster.max_capacity(),
        onsite_energy_kwh: 5.0,
        offsite_energy_kwh: 5.0,
        ..Default::default()
    }
    .generate();
    let cost = CostParams::default();
    let sim = SlotSimulator::new(&cluster, &trace, cost, 10.0);
    let mut policy = CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new());
    let legacy = sim.run(&mut policy).expect("facade run");

    let modern = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        10.0,
        vec![Box::new(CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new()))
            as Box<dyn Policy>],
    )
    .expect("lockstep");
    assert_eq!(legacy, modern[0]);
}

#[test]
fn engine_api_reachable_from_prelude() {
    // The streaming engine surface: SimEngine, SlotSource, sinks,
    // run_lockstep, EngineState are all prelude items.
    let cluster = Arc::new(Cluster::homogeneous(2, 5));
    let trace = TraceConfig {
        hours: 12,
        peak_arrival_rate: 0.4 * cluster.max_capacity(),
        onsite_energy_kwh: 5.0,
        offsite_energy_kwh: 5.0,
        ..Default::default()
    }
    .generate();
    let cost = CostParams::default();
    let mut engine =
        SimEngine::new(Arc::clone(&cluster), &trace, cost, 10.0).expect("engine");
    engine.set_observer(Arc::new(NoopObserver));
    let _lane = engine.add_policy(Box::new(CarbonUnaware::new(
        Arc::clone(&cluster),
        cost,
        SymmetricSolver::new(),
    )));
    assert_eq!(engine.step().expect("step"), StepStatus::Advanced);
    let _slots = engine.run_to_end().expect("run");
    let state: EngineState = engine.checkpoint().expect("checkpoint");
    assert_eq!(state.lanes.len(), 1);
    let outcomes = engine.into_outcomes().expect("outcomes");
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].len(), 12);

    // run_lockstep + sinks are usable too.
    let again = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        10.0,
        vec![Box::new(CarbonUnaware::new(
            Arc::clone(&cluster),
            cost,
            SymmetricSolver::new(),
        )) as Box<dyn Policy>],
    )
    .expect("lockstep");
    assert_eq!(again[0].cost_series(), outcomes[0].cost_series());
    let _sink: Box<dyn RecordSink> = Box::new(VecSink::new());
    let _summary = SummarySink::new();
}

#[test]
fn deficit_queue_and_gsd_options_exported() {
    let mut q = DeficitQueue::new(1.0, 100.0, 100);
    q.update(5.0, 1.0);
    assert!(q.len() > 0.0);
    let opts = GsdOptions::default();
    assert_eq!(opts.iterations, 500);
    let mut gsd = GsdSolver::new(opts);
    let stats: &SolveStats = gsd.stats();
    assert_eq!(stats.iterations, 0);
    gsd.set_observer(Arc::new(NoopObserver));
    // A policy observation can be constructed by library users.
    let obs = SlotObservation { t: 0, arrival_rate: 1.0, onsite: 0.0, price: 0.05 };
    assert_eq!(obs.t, 0);
    // Observer vocabulary is prelude-reachable.
    assert_eq!(Phase::Solve.name(), "solve");
    let ev = SolveEvent {
        solver: "gsd",
        iterations: 1,
        accepted: 1,
        cache_hits: 0,
        cache_misses: 1,
        bisection_evals: 4,
        candidate_batches: 1,
        batched_candidates: 5,
    };
    SolverObserver::on_solve(&NoopObserver, &ev);
    assert!(!EngineObserver::timing_enabled(&NoopObserver));
}
