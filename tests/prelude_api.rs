//! The facade's prelude must be sufficient to assemble and run the full
//! COCA pipeline — this is the "downstream user" smoke test.

use std::sync::Arc;

use coca::prelude::*;

#[test]
fn prelude_covers_the_whole_pipeline() {
    // Build a fleet with the builder.
    let cluster = Arc::new(
        ClusterBuilder::new()
            .add_groups(ServerClass::amd_opteron_2380(), 4, 10)
            .build()
            .expect("cluster"),
    );
    assert_eq!(cluster.num_servers(), 40);

    // Generate an environment.
    let trace = TraceConfig {
        hours: 48,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 10.0,
        offsite_energy_kwh: 200.0,
        ..Default::default()
    }
    .generate();

    // Configure COCA.
    let cost = CostParams::default();
    let rec_total = 100.0;
    let cfg = CocaConfig {
        v: coca::core::VSchedule::Constant(100.0),
        frame_length: 48,
        horizon: 48,
        alpha: 1.0,
        rec_total,
    };
    let mut controller = CocaController::new(
        Arc::clone(&cluster),
        cost,
        cfg,
        coca::core::symmetric::SymmetricSolver::new(),
    );

    // Run and inspect.
    let sim = SlotSimulator::new(&cluster, &trace, cost, rec_total);
    let outcome: SimOutcome = sim.run(&mut controller).expect("run");
    assert_eq!(outcome.len(), 48);
    assert!(outcome.avg_hourly_cost() > 0.0);

    // The baselines are reachable from the prelude too.
    let mut solver = coca::core::symmetric::SymmetricSolver::new();
    let opt = OfflineOpt::plan(&cluster, cost, &trace, 1e9, &mut solver).expect("opt");
    assert_eq!(opt.len(), 48);
    let _unaware = CarbonUnaware::new(
        Arc::clone(&cluster),
        cost,
        coca::core::symmetric::SymmetricSolver::new(),
    );
    let _hp: PerfectHp<coca::core::symmetric::SymmetricSolver> =
        PerfectHp::new(Arc::clone(&cluster), cost, &trace, rec_total, 24).expect("hp");
}

#[test]
fn engine_api_reachable_from_prelude() {
    // The streaming engine surface: SimEngine, SlotSource, sinks,
    // run_lockstep, EngineState are all prelude items.
    let cluster = Arc::new(Cluster::homogeneous(2, 5));
    let trace = TraceConfig {
        hours: 12,
        peak_arrival_rate: 0.4 * cluster.max_capacity(),
        onsite_energy_kwh: 5.0,
        offsite_energy_kwh: 5.0,
        ..Default::default()
    }
    .generate();
    let cost = CostParams::default();
    let mut engine =
        SimEngine::new(Arc::clone(&cluster), &trace, cost, 10.0).expect("engine");
    let _lane = engine.add_policy(Box::new(CarbonUnaware::new(
        Arc::clone(&cluster),
        cost,
        coca::core::symmetric::SymmetricSolver::new(),
    )));
    let _slots = engine.run_to_end().expect("run");
    let state: EngineState = engine.checkpoint().expect("checkpoint");
    assert_eq!(state.lanes.len(), 1);
    let outcomes = engine.into_outcomes().expect("outcomes");
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].len(), 12);

    // run_lockstep + sinks are usable too.
    let again = run_lockstep(
        Arc::clone(&cluster),
        &trace,
        cost,
        10.0,
        vec![Box::new(CarbonUnaware::new(
            Arc::clone(&cluster),
            cost,
            coca::core::symmetric::SymmetricSolver::new(),
        )) as Box<dyn Policy>],
    )
    .expect("lockstep");
    assert_eq!(again[0].cost_series(), outcomes[0].cost_series());
    let _sink: Box<dyn RecordSink> = Box::new(VecSink::new());
    let _summary = SummarySink::new();
}

#[test]
fn deficit_queue_and_gsd_options_exported() {
    let mut q = DeficitQueue::new(1.0, 100.0, 100);
    q.update(5.0, 1.0);
    assert!(q.len() > 0.0);
    let opts = GsdOptions::default();
    assert_eq!(opts.iterations, 500);
    // A policy observation can be constructed by library users.
    let obs = SlotObservation { t: 0, arrival_rate: 1.0, onsite: 0.0, price: 0.05 };
    assert_eq!(obs.t, 0);
}
