//! The facade's prelude must be sufficient to assemble and run the full
//! COCA pipeline — this is the "downstream user" smoke test.

use coca::prelude::*;

#[test]
fn prelude_covers_the_whole_pipeline() {
    // Build a fleet with the builder.
    let cluster = ClusterBuilder::new()
        .add_groups(ServerClass::amd_opteron_2380(), 4, 10)
        .build()
        .expect("cluster");
    assert_eq!(cluster.num_servers(), 40);

    // Generate an environment.
    let trace = TraceConfig {
        hours: 48,
        peak_arrival_rate: 0.5 * cluster.max_capacity(),
        onsite_energy_kwh: 10.0,
        offsite_energy_kwh: 200.0,
        ..Default::default()
    }
    .generate();

    // Configure COCA.
    let cost = CostParams::default();
    let rec_total = 100.0;
    let cfg = CocaConfig {
        v: coca::core::VSchedule::Constant(100.0),
        frame_length: 48,
        horizon: 48,
        alpha: 1.0,
        rec_total,
    };
    let mut controller = CocaController::new(
        &cluster,
        cost,
        cfg,
        coca::core::symmetric::SymmetricSolver::new(),
    );

    // Run and inspect.
    let sim = SlotSimulator::new(&cluster, &trace, cost, rec_total);
    let outcome: SimOutcome = sim.run(&mut controller).expect("run");
    assert_eq!(outcome.len(), 48);
    assert!(outcome.avg_hourly_cost() > 0.0);

    // The baselines are reachable from the prelude too.
    let mut solver = coca::core::symmetric::SymmetricSolver::new();
    let opt = OfflineOpt::plan(&cluster, cost, &trace, 1e9, &mut solver).expect("opt");
    assert_eq!(opt.len(), 48);
    let _unaware = CarbonUnaware::new(&cluster, cost, coca::core::symmetric::SymmetricSolver::new());
    let _hp: PerfectHp<'_, coca::core::symmetric::SymmetricSolver> =
        PerfectHp::new(&cluster, cost, &trace, rec_total, 24).expect("hp");
}

#[test]
fn deficit_queue_and_gsd_options_exported() {
    let mut q = DeficitQueue::new(1.0, 100.0, 100);
    q.update(5.0, 1.0);
    assert!(q.len() > 0.0);
    let opts = GsdOptions::default();
    assert_eq!(opts.iterations, 500);
    // A policy observation can be constructed by library users.
    let obs = SlotObservation { t: 0, arrival_rate: 1.0, onsite: 0.0, price: 0.05 };
    assert_eq!(obs.t, 0);
}
