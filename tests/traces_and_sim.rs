//! Integration tests for the trace/simulator substrate: CSV round-trips
//! through the facade, environment invariants under property testing, and
//! the event simulator vs the analytic queueing model.

use coca::dcsim::eventsim::{PsQueueSim, ServiceDist};
use coca::dcsim::queueing;
use coca::traces::{csv, EnvironmentTrace, TraceConfig, WorkloadKind};
use proptest::prelude::*;
use rand::SeedableRng;

#[test]
fn csv_roundtrip_through_facade() {
    let trace = TraceConfig {
        hours: 200,
        workload_kind: WorkloadKind::Msr,
        peak_arrival_rate: 1234.5,
        ..Default::default()
    }
    .generate();
    let mut buf = Vec::new();
    csv::write_trace(&trace, &mut buf).expect("write");
    let back = csv::read_trace(buf.as_slice()).expect("read");
    assert_eq!(back.len(), trace.len());
    for t in 0..trace.len() {
        assert!((back.workload[t] - trace.workload[t]).abs() < 1e-9);
        assert!((back.onsite[t] - trace.onsite[t]).abs() < 1e-9);
        assert!((back.offsite[t] - trace.offsite[t]).abs() < 1e-9);
        assert!((back.price[t] - trace.price[t]).abs() < 1e-12);
    }
}

#[test]
fn event_sim_validates_analytic_delay_model() {
    // The pillar of the slot simulator: d = λ/(x−λ) is what the event
    // simulator actually measures. One moderate-precision cell per service
    // distribution keeps this test CI-friendly; the example
    // `eventsim_validation` runs the full sweep.
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let lambda = 6.0;
    let expect_t = queueing::mean_response_time(lambda, 10.0).unwrap();
    let expect_n = queueing::delay_cost(lambda, 10.0).unwrap();
    for dist in [
        ServiceDist::Exponential { mean: 0.1 },
        ServiceDist::Deterministic { size: 0.1 },
        ServiceDist::bursty(0.1),
    ] {
        let stats = PsQueueSim::new(lambda, 1.0, dist).run(50_000, &mut rng);
        assert!(
            (stats.mean_response - expect_t).abs() / expect_t < 0.1,
            "{dist:?}: E[T] {} vs analytic {expect_t}",
            stats.mean_response
        );
        assert!(
            (stats.mean_jobs - expect_n).abs() / expect_n < 0.1,
            "{dist:?}: E[N] {} vs analytic {expect_n}",
            stats.mean_jobs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_traces_are_always_valid(
        hours in 1usize..600,
        peak in 1.0..1e7_f64,
        onsite in 0.0..1e6_f64,
        offsite in 0.0..1e6_f64,
        price in 0.001..2.0_f64,
        seed in 0u64..500,
        msr in proptest::bool::ANY,
    ) {
        let cfg = TraceConfig {
            hours,
            workload_kind: if msr { WorkloadKind::Msr } else { WorkloadKind::Fiu },
            peak_arrival_rate: peak,
            onsite_energy_kwh: onsite,
            onsite_solar_share: 0.6,
            offsite_energy_kwh: offsite,
            offsite_solar_share: 0.4,
            mean_price: price,
            seed,
        };
        let tr = cfg.generate();
        prop_assert!(tr.validate().is_ok(), "generated trace invalid: {:?}", tr.validate());
        prop_assert_eq!(tr.len(), hours);
        let max_w = tr.workload.iter().cloned().fold(0.0_f64, f64::max);
        prop_assert!(max_w <= peak * (1.0 + 1e-9), "workload exceeds configured peak");
        let sum_on: f64 = tr.onsite.iter().sum();
        prop_assert!((sum_on - onsite).abs() <= onsite * 1e-6 + 1e-6, "on-site energy target missed");
    }

    #[test]
    fn csv_roundtrip_random_traces(
        hours in 1usize..120,
        seed in 0u64..100,
    ) {
        let tr = TraceConfig { hours, seed, ..Default::default() }.generate();
        let mut buf = Vec::new();
        csv::write_trace(&tr, &mut buf).unwrap();
        let back = csv::read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), tr.len());
        for t in 0..tr.len() {
            prop_assert!((back.workload[t] - tr.workload[t]).abs() < 1e-9);
        }
    }

    #[test]
    fn window_and_scale_preserve_validity(
        hours in 10usize..200,
        a in 0usize..100,
        b in 0usize..250,
        factor in 0.0..3.0_f64,
    ) {
        let mut tr = TraceConfig { hours, ..Default::default() }.generate();
        let w = tr.window(a, b);
        prop_assert!(w.validate().is_ok());
        prop_assert!(w.len() <= hours);
        tr.scale_workload(factor);
        prop_assert!(tr.validate().is_ok());
    }
}

#[test]
fn environment_trace_manual_construction_validates() {
    let good = EnvironmentTrace {
        workload: vec![1.0, 2.0],
        onsite: vec![0.0, 0.5],
        offsite: vec![0.3, 0.0],
        price: vec![0.05, 0.06],
    };
    assert!(good.validate().is_ok());
    let bad = EnvironmentTrace { price: vec![0.05], ..good.clone() };
    assert!(bad.validate().is_err());
}
