//! Minimal CSV round-trip for environment traces.
//!
//! Users with the real FIU/MSR/CAISO data can export it to a four-column
//! CSV (`workload,onsite,offsite,price`, one row per hour, with header) and
//! load it here instead of using the synthetic generators. Hand-rolled to
//! stay inside the offline dependency set; the format is deliberately
//! trivial (no quoting — all fields are numbers).

use std::io::{BufRead, BufReader, Read, Write};

use crate::trace::EnvironmentTrace;

/// Header line written/expected by this codec.
pub const HEADER: &str = "workload,onsite,offsite,price";

/// Writes a trace as CSV.
pub fn write_trace<W: Write>(trace: &EnvironmentTrace, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{HEADER}")?;
    for t in 0..trace.len() {
        writeln!(
            out,
            "{},{},{},{}",
            trace.workload[t], trace.onsite[t], trace.offsite[t], trace.price[t]
        )?;
    }
    Ok(())
}

/// Reads a trace from CSV, validating shape and values.
pub fn read_trace<R: Read>(input: R) -> std::io::Result<EnvironmentTrace> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| bad_data("empty input"))??;
    if header.trim() != HEADER {
        return Err(bad_data(format!("unexpected header {header:?}, want {HEADER:?}")));
    }
    let mut trace = EnvironmentTrace {
        workload: Vec::new(),
        onsite: Vec::new(),
        offsite: Vec::new(),
        price: Vec::new(),
    };
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.split(',');
        let mut next_field = |name: &str| -> std::io::Result<f64> {
            let raw = fields
                .next()
                .ok_or_else(|| bad_data(format!("line {}: missing {name}", lineno + 2)))?;
            raw.trim()
                .parse::<f64>()
                .map_err(|e| bad_data(format!("line {}: bad {name} {raw:?}: {e}", lineno + 2)))
        };
        trace.workload.push(next_field("workload")?);
        trace.onsite.push(next_field("onsite")?);
        trace.offsite.push(next_field("offsite")?);
        trace.price.push(next_field("price")?);
        if fields.next().is_some() {
            return Err(bad_data(format!("line {}: too many fields", lineno + 2)));
        }
    }
    trace.validate().map_err(bad_data)?;
    Ok(trace)
}

fn bad_data<E: Into<Box<dyn std::error::Error + Send + Sync>>>(e: E) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;

    #[test]
    fn roundtrip_preserves_trace() {
        let tr = TraceConfig { hours: 100, ..Default::default() }.generate();
        let mut buf = Vec::new();
        write_trace(&tr, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.len(), tr.len());
        for t in 0..tr.len() {
            assert!((back.workload[t] - tr.workload[t]).abs() < 1e-9);
            assert!((back.price[t] - tr.price[t]).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_wrong_header() {
        let data = "a,b,c,d\n1,2,3,4\n";
        assert!(read_trace(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_missing_field() {
        let data = format!("{HEADER}\n1,2,3\n");
        assert!(read_trace(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_extra_field() {
        let data = format!("{HEADER}\n1,2,3,4,5\n");
        assert!(read_trace(data.as_bytes()).is_err());
    }

    #[test]
    fn rejects_negative_values_via_validate() {
        let data = format!("{HEADER}\n1,2,-3,4\n");
        assert!(read_trace(data.as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let data = format!("{HEADER}\n1,2,3,4\n\n5,6,7,8\n");
        let tr = read_trace(data.as_bytes()).unwrap();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.workload, vec![1.0, 5.0]);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_trace(&b""[..]).is_err());
    }
}
