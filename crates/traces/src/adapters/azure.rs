//! Reader for Azure-Public-Dataset-shaped VM CPU readings.
//!
//! Expected CSV shape (header required):
//!
//! ```text
//! timestamp,vm_id,min_cpu,max_cpu,avg_cpu
//! 0,vm-001,1.2,9.8,4.5
//! 300,vm-001,1.0,8.1,3.9
//! ```
//!
//! `timestamp` is seconds from trace start (the dataset samples every
//! 300 s), `avg_cpu` is the VM's average CPU over the reading window. The
//! adapter sums `avg_cpu` across all VMs per hourly bucket and divides by
//! the number of readings that landed in the bucket per VM-slot, yielding
//! a fleet-aggregate demand proxy in "CPU units"; callers rescale it to
//! req/s with [`super::normalize_to_peak`].

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

use super::{add_to_bucket, bad_data, parse_field, SLOT_SECS};

/// Header line expected by [`read_vm_cpu`].
pub const HEADER: &str = "timestamp,vm_id,min_cpu,max_cpu,avg_cpu";

/// Reads Azure-shaped VM CPU readings into an hourly fleet-demand series.
///
/// Per hour bucket the result is `Σ_vm mean(avg_cpu readings of that vm in
/// the hour)` — i.e. each VM contributes its mean utilization for the
/// hour, and VMs absent from an hour contribute nothing. Readings may
/// arrive in any order. Negative timestamps, non-finite or negative CPU
/// values, and malformed rows are rejected.
pub fn read_vm_cpu<R: Read>(input: R) -> std::io::Result<Vec<f64>> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| bad_data("empty input"))??;
    if header.trim() != HEADER {
        return Err(bad_data(format!("unexpected header {header:?}, want {HEADER:?}")));
    }
    // (vm, hour) → (sum of avg_cpu, reading count); vm ids are interned so
    // a year of 300 s readings doesn't clone the id string per row.
    let mut per_vm_hour: HashMap<(u32, usize), (f64, u32)> = HashMap::new();
    let mut vm_ids: HashMap<String, u32> = HashMap::new();
    let mut vm_names: Vec<String> = Vec::new();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 5 {
            return Err(bad_data(format!("line {lineno}: want 5 fields, got {}", fields.len())));
        }
        let ts = parse_field(fields[0], "timestamp", lineno)?;
        if ts < 0.0 {
            return Err(bad_data(format!("line {lineno}: negative timestamp {ts}")));
        }
        let avg_cpu = parse_field(fields[4], "avg_cpu", lineno)?;
        if !avg_cpu.is_finite() || avg_cpu < 0.0 {
            return Err(bad_data(format!("line {lineno}: bad avg_cpu {avg_cpu}")));
        }
        let vm = match vm_ids.entry(fields[1].trim().to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = vm_names.len() as u32;
                vm_names.push(e.key().clone());
                *e.insert(id)
            }
        };
        let hour = (ts / SLOT_SECS as f64).floor() as usize;
        let cell = per_vm_hour.entry((vm, hour)).or_insert((0.0, 0));
        cell.0 += avg_cpu;
        cell.1 += 1;
    }
    if per_vm_hour.is_empty() {
        return Err(bad_data("no readings"));
    }
    let mut series = Vec::new();
    // Per-bucket accumulation order is part of the output: f64 addition is
    // not associative, so iterating the map directly would leak hash order
    // into the series bytes run-to-run. Sorting by (hour, vm *name*) —
    // interned ids follow first-appearance order — also keeps the doc
    // contract that readings may arrive in any order, bit-exactly.
    let mut cells: Vec<((u32, usize), (f64, u32))> = per_vm_hour.into_iter().collect();
    cells.sort_unstable_by_key(|&((vm, hour), _)| (hour, vm_names[vm as usize].as_str()));
    for ((_, hour), (sum, count)) in cells {
        add_to_bucket(&mut series, (hour * SLOT_SECS as usize) as f64, sum / count as f64);
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_vm_means_per_hour() {
        // vm-a: two readings in hour 0 (mean 3.0); vm-b: one reading in
        // hour 0 (5.0) and one in hour 2 (7.0). Hour 1 is an empty gap.
        let data = format!(
            "{HEADER}\n0,vm-a,0,0,2.0\n300,vm-a,0,0,4.0\n600,vm-b,0,0,5.0\n7500,vm-b,0,0,7.0\n"
        );
        let s = read_vm_cpu(data.as_bytes()).unwrap();
        assert_eq!(s.len(), 3);
        assert!((s[0] - 8.0).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
        assert!((s[2] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn order_independent() {
        let fwd = format!("{HEADER}\n0,a,0,0,1.0\n3600,b,0,0,2.0\n");
        let rev = format!("{HEADER}\n3600,b,0,0,2.0\n0,a,0,0,1.0\n");
        assert_eq!(read_vm_cpu(fwd.as_bytes()).unwrap(), read_vm_cpu(rev.as_bytes()).unwrap());
    }

    #[test]
    fn accumulation_order_is_bit_exact_under_row_permutation() {
        // Three VMs share hour 0 with rounding-order-sensitive means: the
        // ulp at 1e16 is 2.0, so (1e16 + 1.0) + 1.0 == 1e16 while
        // (1.0 + 1.0) + 1e16 == 1e16 + 2. Any leak of arrival (or hash)
        // order into the per-bucket accumulation changes the output
        // *bits*. Every row permutation must produce the same bytes.
        let rows = ["0,a,0,0,10000000000000000.0", "60,b,0,0,1.0", "120,c,0,0,1.0"];
        let perms = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let baseline: Vec<u64> = {
            let data = format!("{HEADER}\n{}\n{}\n{}\n", rows[0], rows[1], rows[2]);
            read_vm_cpu(data.as_bytes()).unwrap().iter().map(|v| v.to_bits()).collect()
        };
        for p in perms {
            let data = format!("{HEADER}\n{}\n{}\n{}\n", rows[p[0]], rows[p[1]], rows[p[2]]);
            let bits: Vec<u64> =
                read_vm_cpu(data.as_bytes()).unwrap().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, baseline, "permutation {p:?} changed output bits");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_vm_cpu(&b""[..]).is_err(), "empty");
        assert!(read_vm_cpu(b"wrong,header\n".as_slice()).is_err(), "header");
        let short = format!("{HEADER}\n0,a,0,0\n");
        assert!(read_vm_cpu(short.as_bytes()).is_err(), "field count");
        let neg_ts = format!("{HEADER}\n-5,a,0,0,1.0\n");
        assert!(read_vm_cpu(neg_ts.as_bytes()).is_err(), "negative timestamp");
        let bad_cpu = format!("{HEADER}\n0,a,0,0,-1.0\n");
        assert!(read_vm_cpu(bad_cpu.as_bytes()).is_err(), "negative cpu");
        let only_header = format!("{HEADER}\n");
        assert!(read_vm_cpu(only_header.as_bytes()).is_err(), "no readings");
    }
}
