//! Reader for Google-cluster-data-shaped task-usage records.
//!
//! Expected CSV shape (header required):
//!
//! ```text
//! start_time,end_time,job_id,task_index,mean_cpu_usage
//! 600000000,900000000,6253771429,0,0.0251
//! ```
//!
//! `start_time`/`end_time` are **microseconds** from trace start (the
//! cluster-data convention); `mean_cpu_usage` is the task's mean CPU rate
//! over that window in normalized core units. Unlike the Azure point
//! samples, a usage record spans an interval, so its demand is spread
//! over every hourly bucket it overlaps, weighted by overlap fraction.

use std::io::{BufRead, BufReader, Read};

use super::{add_to_bucket, bad_data, parse_field, SLOT_SECS};

/// Header line expected by [`read_task_usage`].
pub const HEADER: &str = "start_time,end_time,job_id,task_index,mean_cpu_usage";

/// Microseconds per second (cluster-data timestamps are µs).
const MICROS: f64 = 1e6;

/// Reads Google-shaped task-usage records into an hourly fleet-demand
/// series: per bucket, `Σ_records mean_cpu_usage × overlap_fraction`,
/// where `overlap_fraction` is the share of the record's `[start, end)`
/// window falling in the bucket. Records may arrive in any order; empty
/// windows (`end ≤ start`), negative times and non-finite usage are
/// rejected.
pub fn read_task_usage<R: Read>(input: R) -> std::io::Result<Vec<f64>> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| bad_data("empty input"))??;
    if header.trim() != HEADER {
        return Err(bad_data(format!("unexpected header {header:?}, want {HEADER:?}")));
    }
    let mut series = Vec::new();
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 5 {
            return Err(bad_data(format!("line {lineno}: want 5 fields, got {}", fields.len())));
        }
        let start = parse_field(fields[0], "start_time", lineno)? / MICROS;
        let end = parse_field(fields[1], "end_time", lineno)? / MICROS;
        let usage = parse_field(fields[4], "mean_cpu_usage", lineno)?;
        if start < 0.0 || end <= start {
            return Err(bad_data(format!(
                "line {lineno}: bad window [{start} s, {end} s)"
            )));
        }
        if !usage.is_finite() || usage < 0.0 {
            return Err(bad_data(format!("line {lineno}: bad mean_cpu_usage {usage}")));
        }
        // Walk the hourly buckets the window overlaps.
        let span = end - start;
        let mut cursor = start;
        while cursor < end {
            let bucket_end = ((cursor / SLOT_SECS as f64).floor() + 1.0) * SLOT_SECS as f64;
            let seg_end = bucket_end.min(end);
            add_to_bucket(&mut series, cursor, usage * (seg_end - cursor) / span);
            cursor = seg_end;
        }
        rows += 1;
    }
    if rows == 0 {
        return Err(bad_data("no records"));
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreads_usage_by_overlap() {
        // One record spanning 30 min of hour 0 and 90 min of hours 1–2:
        // [1800 s, 9000 s) at usage 1.0 → 1/4 in hour 0, 1/2 in hour 1,
        // 1/4 in hour 2.
        let data = format!("{HEADER}\n1800000000,9000000000,1,0,1.0\n");
        let s = read_task_usage(data.as_bytes()).unwrap();
        assert_eq!(s.len(), 3);
        assert!((s[0] - 0.25).abs() < 1e-12);
        assert!((s[1] - 0.50).abs() < 1e-12);
        assert!((s[2] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn records_accumulate_across_tasks() {
        let data = format!(
            "{HEADER}\n0,3600000000,1,0,0.5\n0,3600000000,1,1,0.25\n3600000000,7200000000,2,0,1.0\n"
        );
        let s = read_task_usage(data.as_bytes()).unwrap();
        assert_eq!(s.len(), 2);
        assert!((s[0] - 0.75).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_task_usage(&b""[..]).is_err(), "empty");
        assert!(read_task_usage(b"x,y\n".as_slice()).is_err(), "header");
        let inverted = format!("{HEADER}\n900000000,600000000,1,0,0.1\n");
        assert!(read_task_usage(inverted.as_bytes()).is_err(), "inverted window");
        let zero_len = format!("{HEADER}\n600000000,600000000,1,0,0.1\n");
        assert!(read_task_usage(zero_len.as_bytes()).is_err(), "empty window");
        let nan = format!("{HEADER}\n0,600000000,1,0,NaN\n");
        assert!(read_task_usage(nan.as_bytes()).is_err(), "NaN usage");
        let only_header = format!("{HEADER}\n");
        assert!(read_task_usage(only_header.as_bytes()).is_err(), "no records");
    }
}
