//! Adapters from public cloud-trace exports to [`EnvironmentTrace`]s.
//!
//! The paper drives its evaluation with proprietary workload logs; two
//! widely-mirrored public substitutes are the Azure Public Dataset VM
//! telemetry and the Google cluster-data task-usage tables. These adapters
//! read CSV exports shaped like those datasets ([`azure`], [`google`]),
//! aggregate the per-VM / per-task readings into an hourly fleet-wide
//! demand series, and splice that series into a full environment (real
//! workload, synthetic renewables and prices) via [`splice_workload`].
//!
//! Both readers are hand-rolled line parsers like [`crate::csv`] — no
//! quoting, numeric fields only — so they stay inside the offline
//! dependency set. Rows must carry a header matching the documented shape;
//! anything else is rejected loudly rather than silently misparsed.

pub mod azure;
pub mod google;

use crate::trace::{EnvironmentTrace, TraceConfig};

/// Seconds per aggregation bucket (one slot = one hour everywhere in this
/// workspace).
pub const SLOT_SECS: u64 = 3600;

/// Rescales a raw demand series so its maximum equals `peak` (req/s),
/// preserving shape. A flat-zero series is returned unchanged — there is
/// no shape to preserve and scaling would divide by zero.
pub fn normalize_to_peak(series: &mut [f64], peak: f64) {
    assert!(peak.is_finite() && peak >= 0.0, "peak {peak} must be finite and non-negative");
    let max = series.iter().cloned().fold(0.0_f64, f64::max);
    if max > 0.0 {
        let k = peak / max;
        for v in series.iter_mut() {
            *v *= k;
        }
    }
}

/// Builds a full environment from a real hourly workload series: the
/// workload comes from the adapter, everything else (on-site/off-site
/// renewables, prices) is generated from `cfg` over the same horizon.
/// `cfg.hours`, `cfg.workload_kind` and `cfg.peak_arrival_rate` are
/// ignored — the series fixes the horizon, and callers rescale with
/// [`normalize_to_peak`] beforehand if they want the paper's peak.
pub fn splice_workload(workload: Vec<f64>, cfg: &TraceConfig) -> Result<EnvironmentTrace, String> {
    if workload.is_empty() {
        return Err("workload series is empty".into());
    }
    let synthetic = TraceConfig { hours: workload.len(), ..*cfg }.generate();
    let trace = EnvironmentTrace {
        workload,
        onsite: synthetic.onsite,
        offsite: synthetic.offsite,
        price: synthetic.price,
    };
    trace.validate()?;
    Ok(trace)
}

/// Accumulates `amount` into the bucket holding `sec`, growing the series
/// as needed. Shared by both readers.
fn add_to_bucket(buckets: &mut Vec<f64>, sec: f64, amount: f64) {
    let idx = (sec / SLOT_SECS as f64).floor() as usize;
    if buckets.len() <= idx {
        buckets.resize(idx + 1, 0.0);
    }
    buckets[idx] += amount;
}

fn bad_data<E: Into<Box<dyn std::error::Error + Send + Sync>>>(e: E) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

fn parse_field(raw: &str, name: &str, lineno: usize) -> std::io::Result<f64> {
    raw.trim()
        .parse::<f64>()
        .map_err(|e| bad_data(format!("line {lineno}: bad {name} {raw:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_rescales_preserving_shape() {
        let mut s = vec![1.0, 4.0, 2.0];
        normalize_to_peak(&mut s, 100.0);
        assert_eq!(s, vec![25.0, 100.0, 50.0]);
        let mut z = vec![0.0, 0.0];
        normalize_to_peak(&mut z, 100.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn splice_fixes_horizon_to_series() {
        let cfg = TraceConfig::default();
        let tr = splice_workload(vec![1.0; 48], &cfg).unwrap();
        assert_eq!(tr.len(), 48);
        assert_eq!(tr.workload, vec![1.0; 48]);
        assert!(tr.onsite.iter().any(|&v| v > 0.0));
        assert!(tr.price.iter().all(|&v| v > 0.0));
        assert!(splice_workload(vec![], &cfg).is_err());
    }

    #[test]
    fn buckets_grow_on_demand() {
        let mut b = Vec::new();
        add_to_bucket(&mut b, 0.0, 1.0);
        add_to_bucket(&mut b, 7200.0, 2.0);
        add_to_bucket(&mut b, 7260.0, 3.0);
        assert_eq!(b, vec![1.0, 0.0, 5.0]);
    }
}
