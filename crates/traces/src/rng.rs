//! Small stochastic-process helpers built on `rand`.
//!
//! The offline dependency set does not include `rand_distr`, so the few
//! distributions the generators need (Gaussian, AR(1), exponential gaps)
//! are implemented here directly.

use rand::Rng;

/// Draws a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws `Exp(rate)` (mean `1/rate`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// First-order autoregressive Gaussian process
/// `x_{t+1} = ρ·x_t + σ·√(1−ρ²)·ε_t`, stationary with unit-free marginal
/// standard deviation `σ`.
#[derive(Debug, Clone)]
pub struct Ar1 {
    rho: f64,
    sigma: f64,
    innovation_scale: f64,
    state: f64,
}

impl Ar1 {
    /// Creates the process at its stationary mean (0) with the given
    /// autocorrelation `rho ∈ [0, 1)` and marginal std `sigma ≥ 0`.
    pub fn new(rho: f64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { rho, sigma, innovation_scale: sigma * (1.0 - rho * rho).sqrt(), state: 0.0 }
    }

    /// Advances one step and returns the new value.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.state = self.rho * self.state + self.innovation_scale * standard_normal(rng);
        self.state
    }

    /// Current value without advancing.
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Marginal standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

/// Multiplicative spike process: rare events (probability `p_start` per
/// step) that jump to a random magnitude in `[1, 1 + max_boost]` and decay
/// geometrically back to 1.
#[derive(Debug, Clone)]
pub struct SpikeProcess {
    p_start: f64,
    max_boost: f64,
    decay: f64,
    level: f64,
}

impl SpikeProcess {
    /// Creates the process at its quiescent level (1.0).
    pub fn new(p_start: f64, max_boost: f64, decay: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_start));
        assert!(max_boost >= 0.0);
        assert!((0.0..1.0).contains(&decay));
        Self { p_start, max_boost, decay, level: 1.0 }
    }

    /// Advances one step, returning the multiplicative factor (≥ 1).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.p_start {
            let boost = 1.0 + rng.gen::<f64>() * self.max_boost;
            self.level = self.level.max(boost);
        } else {
            self.level = 1.0 + (self.level - 1.0) * self.decay;
        }
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng(2);
        let n = 100_000;
        let mean = (0..n).map(|_| exponential(&mut r, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ar1_is_stationary_with_target_sigma() {
        let mut r = rng(3);
        let mut p = Ar1::new(0.9, 2.0);
        // Burn in, then sample.
        for _ in 0..1000 {
            p.step(&mut r);
        }
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| p.step(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn ar1_autocorrelation_matches_rho() {
        let mut r = rng(4);
        let mut p = Ar1::new(0.8, 1.0);
        for _ in 0..1000 {
            p.step(&mut r);
        }
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| p.step(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let cov = samples
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        let rho_hat = cov / var;
        assert!((rho_hat - 0.8).abs() < 0.02, "rho_hat {rho_hat}");
    }

    #[test]
    fn spike_process_stays_at_one_without_events() {
        let mut r = rng(5);
        let mut s = SpikeProcess::new(0.0, 2.0, 0.5);
        for _ in 0..100 {
            assert_eq!(s.step(&mut r), 1.0);
        }
    }

    #[test]
    fn spike_process_decays_after_event() {
        let mut r = rng(6);
        let mut s = SpikeProcess::new(1.0, 1.0, 0.5);
        let v1 = s.step(&mut r);
        assert!(v1 > 1.0);
        let mut s2 = SpikeProcess { p_start: 0.0, ..s.clone() };
        let v2 = s2.step(&mut r);
        assert!(v2 < v1 || (v1 - 1.0) < 1e-12, "level decays: {v1} -> {v2}");
    }

    #[test]
    #[should_panic]
    fn ar1_rejects_bad_rho() {
        let _ = Ar1::new(1.5, 1.0);
    }
}
