//! # coca-traces — synthetic environment traces for the COCA reproduction
//!
//! The paper's evaluation (Sec. 5.1) drives the simulator with four
//! real-world hourly series for the year 2012 that we cannot redistribute:
//!
//! 1. the FIU server I/O workload log,
//! 2. the MSR Cambridge block-I/O trace (1 week, repeated with ±40 % noise),
//! 3. CAISO solar/wind renewable generation for Mountain View / California,
//! 4. CAISO hourly electricity prices.
//!
//! This crate synthesizes statistically faithful stand-ins (see `DESIGN.md`
//! §4 for the substitution argument): the generators reproduce the structure
//! that actually stresses the control problem — diurnal/weekly/seasonal
//! cycles, a late-July surge, workload spikes, solar daylight envelopes,
//! multi-day wind ramps, and heavy-tailed price spikes. Everything is
//! deterministic given a seed, so experiments are exactly reproducible.
//!
//! Real traces can be swapped in through the CSV round-trip in [`csv`].
//!
//! Units used throughout the workspace:
//! * one slot = one hour; a year = 8 760 slots,
//! * workload in requests/s,
//! * power in kW (slot energy in kWh is numerically identical),
//! * electricity price in $/kWh.

#![deny(missing_docs, unsafe_code)]

pub mod adapters;
pub mod csv;
pub mod price;
pub mod renewable;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod workload;

pub use trace::{EnvironmentTrace, SlotEnv, TraceConfig};
pub use workload::{WorkloadKind, WorkloadTrace};

/// Hours in the canonical budgeting period (one non-leap year).
pub const HOURS_PER_YEAR: usize = 8760;

/// Hours in a week.
pub const HOURS_PER_WEEK: usize = 168;

/// Hours in a day.
pub const HOURS_PER_DAY: usize = 24;
