//! Series statistics shared by generators, simulators and the experiment
//! harness (moving averages for Fig. 2(c)(d), cumulative averages for
//! Fig. 3, summary statistics for EXPERIMENTS.md).

/// Squashes an unbounded value into (0, 1) with a logistic curve centred at
/// zero; used to turn AR(1) processes into bounded physical factors.
#[inline]
pub fn squash01(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Trailing moving average with window `w` (paper Fig. 2(c)(d) uses a
/// 45-day = 1080-hour window). Entry `t` averages slots
/// `max(0, t+1−w) ..= t`, so early entries use a shorter prefix window.
pub fn moving_average(series: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for t in 0..series.len() {
        sum += series[t];
        if t >= w {
            sum -= series[t - w];
        }
        let len = (t + 1).min(w);
        out.push(sum / len as f64);
    }
    out
}

/// Cumulative (running) average: entry `t` is the mean of slots `0..=t`
/// (paper Fig. 3 footnote: "summing up all the values from time 0 to time t
/// and then dividing the sum by t + 1").
pub fn cumulative_average(series: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for (t, &v) in series.iter().enumerate() {
        sum += v;
        out.push(sum / (t + 1) as f64);
    }
    out
}

/// Basic summary of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Sum of the series.
    pub total: f64,
}

/// Computes a [`Summary`]; empty input yields all zeros.
pub fn summarize(series: &[f64]) -> Summary {
    if series.is_empty() {
        return Summary { mean: 0.0, min: 0.0, max: 0.0, std: 0.0, total: 0.0 };
    }
    let total: f64 = series.iter().sum();
    let mean = total / series.len() as f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut var = 0.0;
    for &v in series {
        min = min.min(v);
        max = max.max(v);
        var += (v - mean) * (v - mean);
    }
    var /= series.len() as f64;
    Summary { mean, min, max, std: var.sqrt(), total }
}

/// Pearson correlation between two equal-length series. Returns 0 for
/// degenerate (constant or empty) inputs.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_prefix_and_window() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        let m = moving_average(&s, 2);
        assert_eq!(m, vec![1.0, 1.5, 2.5, 3.5, 4.5]);
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let s = [3.0, 1.0, 4.0];
        assert_eq!(moving_average(&s, 1), s.to_vec());
    }

    #[test]
    fn moving_average_huge_window_is_cumulative() {
        let s = [2.0, 4.0, 6.0];
        assert_eq!(moving_average(&s, 100), cumulative_average(&s));
    }

    #[test]
    fn cumulative_average_matches_definition() {
        let s = [1.0, 3.0, 5.0];
        assert_eq!(cumulative_average(&s), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn summary_of_known_series() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let sum = summarize(&s);
        assert_eq!(sum.mean, 2.5);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 4.0);
        assert_eq!(sum.total, 10.0);
        assert!((sum.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let sum = summarize(&[]);
        assert_eq!(sum.mean, 0.0);
        assert_eq!(sum.total, 0.0);
    }

    #[test]
    fn correlation_limits() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let c = [3.0, 2.0, 1.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&a, &[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(correlation(&[], &[]), 0.0);
    }

    #[test]
    fn squash01_bounds() {
        assert!((squash01(0.0) - 0.5).abs() < 1e-12);
        assert!(squash01(50.0) > 0.999);
        assert!(squash01(-50.0) < 0.001);
    }

    #[test]
    #[should_panic]
    fn moving_average_zero_window_panics() {
        let _ = moving_average(&[1.0], 0);
    }
}
