//! Synthetic hourly electricity prices ($/kWh).
//!
//! Mirrors the structure of CAISO real-time hourly prices the paper uses:
//! a diurnal shape peaking in the late afternoon/evening, weekday/weekend
//! structure, mean-reverting noise, and occasional heavy-tailed price
//! spikes (scarcity events). Prices are floored above zero so the
//! boundedness assumption of the analysis (Sec. 3.2) holds.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::rng::Ar1;
use crate::HOURS_PER_DAY;

/// Configuration for the price generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceConfig {
    /// Mean price in $/kWh (CAISO 2012 hovered around $0.03–0.05/kWh
    /// wholesale; the paper does not disclose its scaling).
    pub mean_price: f64,
    /// Probability of a scarcity spike per hour.
    pub spike_prob: f64,
    /// Maximum spike multiplier.
    pub spike_max_mult: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PriceConfig {
    fn default() -> Self {
        Self { mean_price: 0.05, spike_prob: 0.004, spike_max_mult: 5.0, seed: 77 }
    }
}

/// Lower bound applied to every price (the grid never pays you to consume
/// in this model; negative CAISO prices exist but are rare and would only
/// make the control problem easier).
pub const PRICE_FLOOR: f64 = 0.005;

/// Generates `hours` hourly prices in $/kWh with mean ≈ `cfg.mean_price`.
pub fn generate(cfg: &PriceConfig, hours: usize) -> Vec<f64> {
    assert!(cfg.mean_price > 0.0, "mean price must be positive");
    assert!((0.0..=1.0).contains(&cfg.spike_prob));
    assert!(cfg.spike_max_mult >= 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x981C);
    let mut noise = Ar1::new(0.9, 0.15);
    let mut out = Vec::with_capacity(hours);
    for h in 0..hours {
        let hod = (h % HOURS_PER_DAY) as f64;
        let dow = (h / HOURS_PER_DAY) % 7;
        // Evening peak near 18:00, pre-dawn trough.
        let diurnal = 1.0 + 0.35 * ((hod - 18.0) / 24.0 * std::f64::consts::TAU).cos();
        let weekday = if dow == 0 || dow == 6 { 0.9 } else { 1.05 };
        let n = (1.0 + noise.step(&mut rng)).max(0.3);
        let spike = if rng.gen::<f64>() < cfg.spike_prob {
            1.0 + rng.gen::<f64>().powi(2) * (cfg.spike_max_mult - 1.0)
        } else {
            1.0
        };
        out.push((cfg.mean_price * diurnal * weekday * n * spike).max(PRICE_FLOOR));
    }
    // Rescale to hit the target mean exactly (spikes shift it slightly).
    let mean: f64 = out.iter().sum::<f64>() / hours.max(1) as f64;
    if mean > 0.0 {
        let k = cfg.mean_price / mean;
        for v in out.iter_mut() {
            *v = (*v * k).max(PRICE_FLOOR);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HOURS_PER_YEAR;

    #[test]
    fn mean_matches_target() {
        let p = generate(&PriceConfig::default(), HOURS_PER_YEAR);
        let mean = p.iter().sum::<f64>() / p.len() as f64;
        assert!((mean - 0.05).abs() < 0.002, "mean {mean}");
    }

    #[test]
    fn prices_are_positive_and_bounded() {
        let cfg = PriceConfig::default();
        let p = generate(&cfg, HOURS_PER_YEAR);
        for &v in &p {
            assert!(v >= PRICE_FLOOR);
            assert!(v < cfg.mean_price * 50.0, "price {v} unreasonably large");
        }
    }

    #[test]
    fn evening_peak_exists() {
        let p = generate(&PriceConfig { spike_prob: 0.0, ..Default::default() }, HOURS_PER_YEAR);
        let mut by_hour = [0.0; 24];
        for (h, &v) in p.iter().enumerate() {
            by_hour[h % 24] += v;
        }
        let evening: f64 = by_hour[17..20].iter().sum();
        let predawn: f64 = by_hour[4..7].iter().sum();
        assert!(evening > predawn * 1.2, "evening {evening} vs predawn {predawn}");
    }

    #[test]
    fn spikes_fatten_the_tail() {
        let calm = generate(
            &PriceConfig { spike_prob: 0.0, seed: 5, ..Default::default() },
            HOURS_PER_YEAR,
        );
        let spiky = generate(
            &PriceConfig { spike_prob: 0.02, seed: 5, ..Default::default() },
            HOURS_PER_YEAR,
        );
        let max_calm = calm.iter().cloned().fold(0.0_f64, f64::max);
        let max_spiky = spiky.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max_spiky > max_calm, "spikes raise the maximum");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&PriceConfig::default(), 720);
        let b = generate(&PriceConfig::default(), 720);
        assert_eq!(a, b);
        let c = generate(&PriceConfig { seed: 78, ..Default::default() }, 720);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic]
    fn rejects_non_positive_mean() {
        let _ = generate(&PriceConfig { mean_price: 0.0, ..Default::default() }, 10);
    }
}
