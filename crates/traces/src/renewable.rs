//! Synthetic renewable-generation traces (solar + wind).
//!
//! The paper scales CAISO hourly generation data so that on-site renewables
//! cover ≈20 % of the data center's energy. We synthesize physically
//! structured stand-ins:
//!
//! * **Solar** — clear-sky elevation envelope (seasonal daylength and
//!   amplitude) attenuated by an AR(1) cloud-cover process. Output is zero
//!   at night, which is exactly the intermittency that makes pure-solar
//!   energy budgeting hard.
//! * **Wind** — a slowly-varying synoptic AR(1) component (multi-day ramps)
//!   plus faster gusts, pushed through a cubic cut-in/rated power curve.
//!
//! Traces are generated in relative units and scaled to a target *annual
//! energy* (kWh), mirroring the paper's proportional scaling.

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::rng::Ar1;
use crate::HOURS_PER_DAY;

/// Mix and scale for a renewable supply series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenewableConfig {
    /// Fraction of annual energy coming from solar (the rest is wind).
    pub solar_share: f64,
    /// Target total energy over the generated horizon (kWh).
    pub annual_energy_kwh: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RenewableConfig {
    fn default() -> Self {
        Self { solar_share: 0.6, annual_energy_kwh: 1.0e6, seed: 2012 }
    }
}

/// Generates an hourly renewable power series (kW per slot) whose sum over
/// the horizon equals `cfg.annual_energy_kwh` (up to floating point).
pub fn generate(cfg: &RenewableConfig, hours: usize) -> Vec<f64> {
    assert!(
        (0.0..=1.0).contains(&cfg.solar_share),
        "solar_share must be in [0, 1], got {}",
        cfg.solar_share
    );
    assert!(cfg.annual_energy_kwh >= 0.0, "annual energy must be non-negative");
    let solar = solar_series(hours, cfg.seed);
    let wind = wind_series(hours, cfg.seed.wrapping_add(0x77));
    let solar_scaled = scale_to_total(solar, cfg.solar_share * cfg.annual_energy_kwh);
    let wind_scaled = scale_to_total(wind, (1.0 - cfg.solar_share) * cfg.annual_energy_kwh);
    solar_scaled.iter().zip(&wind_scaled).map(|(s, w)| s + w).collect()
}

/// Relative (unitless) solar output per hour.
pub fn solar_series(hours: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5014);
    let mut cloud = Ar1::new(0.92, 0.5);
    let mut out = Vec::with_capacity(hours);
    for h in 0..hours {
        let day = (h / HOURS_PER_DAY) as f64;
        let hour = (h % HOURS_PER_DAY) as f64;
        // Seasonal daylength: ~9.5 h in winter to ~14.5 h in summer at
        // Mountain View's latitude; day 172 ≈ summer solstice.
        let season = ((day - 172.0) / 365.0 * std::f64::consts::TAU).cos();
        let half_daylen = 0.5 * (12.0 + 2.5 * season);
        let noon = 12.0;
        let x = (hour - noon).abs();
        let clear_sky = if x < half_daylen {
            let elev = (std::f64::consts::FRAC_PI_2 * (1.0 - x / half_daylen)).sin();
            // Seasonal amplitude: winter sun is lower.
            elev * (0.75 + 0.25 * season)
        } else {
            0.0
        };
        // Cloud attenuation in [0.15, 1]: logistic squash of the AR(1).
        let c = 0.15 + 0.85 * crate::stats::squash01(cloud.step(&mut rng));
        out.push(clear_sky * c);
    }
    out
}

/// Relative (unitless) wind output per hour.
pub fn wind_series(hours: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x817D);
    // Synoptic systems persist for days (ρ per hour ≈ 0.985 → ~3-day decay).
    let mut synoptic = Ar1::new(0.985, 1.0);
    let mut gust = Ar1::new(0.6, 0.35);
    let mut out = Vec::with_capacity(hours);
    for h in 0..hours {
        let hour = (h % HOURS_PER_DAY) as f64;
        // Mild evening uptick typical of California wind.
        let diurnal = 0.1 * ((hour - 19.0) / 24.0 * std::f64::consts::TAU).cos();
        let speed_rel =
            (0.45 + 0.35 * crate::stats::squash01(synoptic.step(&mut rng)) + diurnal
                + 0.1 * gust.step(&mut rng))
            .clamp(0.0, 1.3);
        out.push(power_curve(speed_rel));
    }
    out
}

/// Normalized turbine power curve over relative wind speed: zero below
/// cut-in (0.15), cubic ramp to rated (0.85), flat above.
fn power_curve(speed_rel: f64) -> f64 {
    const CUT_IN: f64 = 0.15;
    const RATED: f64 = 0.85;
    if speed_rel <= CUT_IN {
        0.0
    } else if speed_rel >= RATED {
        1.0
    } else {
        let t = (speed_rel - CUT_IN) / (RATED - CUT_IN);
        t * t * t
    }
}

fn scale_to_total(mut series: Vec<f64>, target_total: f64) -> Vec<f64> {
    let total: f64 = series.iter().sum();
    if total > 0.0 && target_total > 0.0 {
        let k = target_total / total;
        for v in series.iter_mut() {
            *v *= k;
        }
    } else {
        for v in series.iter_mut() {
            *v = 0.0;
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HOURS_PER_YEAR;

    #[test]
    fn solar_is_zero_at_night() {
        let s = solar_series(HOURS_PER_YEAR, 1);
        for (h, &v) in s.iter().enumerate() {
            let hour = h % 24;
            if !(4..=20).contains(&hour) {
                assert_eq!(v, 0.0, "solar at hour {hour} should be dark");
            }
        }
    }

    #[test]
    fn solar_summer_beats_winter() {
        let s = solar_series(HOURS_PER_YEAR, 1);
        let day_energy = |d: usize| -> f64 { s[d * 24..(d + 1) * 24].iter().sum() };
        let summer: f64 = (150..210).map(day_energy).sum::<f64>() / 60.0;
        let winter: f64 =
            (0..30).map(day_energy).sum::<f64>() / 30.0 + (335..365).map(day_energy).sum::<f64>() / 30.0;
        assert!(summer > winter, "summer {summer} vs winter avg {}", winter / 2.0);
    }

    #[test]
    fn wind_blows_at_night_sometimes() {
        let w = wind_series(HOURS_PER_YEAR, 1);
        let night_total: f64 = w.iter().enumerate().filter(|(h, _)| h % 24 < 5).map(|(_, v)| v).sum();
        assert!(night_total > 0.0, "wind is not diurnally gated");
    }

    #[test]
    fn wind_has_multiday_persistence() {
        let w = wind_series(HOURS_PER_YEAR, 1);
        // Lag-24h autocorrelation should be clearly positive (synoptic ramps).
        let n = w.len() - 24;
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        let var: f64 = w.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w.len() as f64;
        let cov: f64 =
            (0..n).map(|i| (w[i] - mean) * (w[i + 24] - mean)).sum::<f64>() / n as f64;
        assert!(cov / var > 0.25, "lag-24 autocorr = {}", cov / var);
    }

    #[test]
    fn generate_hits_energy_target() {
        let cfg = RenewableConfig { solar_share: 0.6, annual_energy_kwh: 5.0e5, seed: 3 };
        let r = generate(&cfg, HOURS_PER_YEAR);
        let total: f64 = r.iter().sum();
        assert!((total - 5.0e5).abs() < 1.0, "total {total}");
        assert!(r.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pure_solar_and_pure_wind_mixes() {
        let solar_only =
            generate(&RenewableConfig { solar_share: 1.0, annual_energy_kwh: 1000.0, seed: 3 }, 240);
        let wind_only =
            generate(&RenewableConfig { solar_share: 0.0, annual_energy_kwh: 1000.0, seed: 3 }, 240);
        // Solar-only trace is zero at midnight; wind-only generally is not.
        assert_eq!(solar_only[0], 0.0);
        assert!(wind_only.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn zero_energy_target_gives_zero_series() {
        let r = generate(
            &RenewableConfig { solar_share: 0.5, annual_energy_kwh: 0.0, seed: 3 },
            100,
        );
        assert!(r.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn power_curve_shape() {
        assert_eq!(power_curve(0.0), 0.0);
        assert_eq!(power_curve(0.15), 0.0);
        assert_eq!(power_curve(0.85), 1.0);
        assert_eq!(power_curve(1.2), 1.0);
        let mid = power_curve(0.5);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&RenewableConfig::default(), 500);
        let b = generate(&RenewableConfig::default(), 500);
        assert_eq!(a, b);
    }
}
