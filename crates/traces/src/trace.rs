//! The combined environment trace: everything the data center observes.
//!
//! The paper calls "environment" the tuple of electricity price, on-site and
//! off-site renewable supplies, and workloads (Sec. 2). [`EnvironmentTrace`]
//! packages the four hourly series; [`SlotEnv`] is the per-slot view handed
//! to policies (note that the *off-site* supply `f(t)` is intentionally not
//! part of the observation COCA acts on — the deficit queue is updated with
//! it only after the slot, paper Sec. 4.1).

use serde::{Deserialize, Serialize};

use crate::price::{self, PriceConfig};
use crate::renewable::{self, RenewableConfig};
use crate::workload::{WorkloadKind, WorkloadTrace};
use crate::HOURS_PER_YEAR;

/// One slot of environment state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotEnv {
    /// Slot index `t`.
    pub t: usize,
    /// Total workload arrival rate λ(t) (req/s), revealed at slot start.
    pub arrival_rate: f64,
    /// On-site renewable supply r(t) (kW), revealed at slot start.
    pub onsite: f64,
    /// Electricity price w(t) ($/kWh), revealed at slot start.
    pub price: f64,
    /// Off-site renewable supply f(t) (kWh), realized only at slot end.
    pub offsite: f64,
}

/// Full environment over a budgeting period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentTrace {
    /// λ(t): workload arrival rate per slot (req/s).
    pub workload: Vec<f64>,
    /// r(t): on-site renewable power per slot (kW).
    pub onsite: Vec<f64>,
    /// f(t): off-site renewable energy per slot (kWh).
    pub offsite: Vec<f64>,
    /// w(t): electricity price per slot ($/kWh).
    pub price: Vec<f64>,
}

impl EnvironmentTrace {
    /// Number of slots J.
    pub fn len(&self) -> usize {
        self.workload.len()
    }

    /// True when the trace has no slots.
    pub fn is_empty(&self) -> bool {
        self.workload.is_empty()
    }

    /// Per-slot view.
    pub fn slot(&self, t: usize) -> SlotEnv {
        SlotEnv {
            t,
            arrival_rate: self.workload[t],
            onsite: self.onsite[t],
            price: self.price[t],
            offsite: self.offsite[t],
        }
    }

    /// Iterates over all slots in order.
    pub fn slots(&self) -> impl Iterator<Item = SlotEnv> + '_ {
        (0..self.len()).map(move |t| self.slot(t))
    }

    /// Total off-site renewable energy `Σ f(t)` (kWh).
    pub fn total_offsite(&self) -> f64 {
        self.offsite.iter().sum()
    }

    /// Checks that all four series have the same length and contain only
    /// finite, non-negative values.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.workload.len();
        for (name, s) in [
            ("onsite", &self.onsite),
            ("offsite", &self.offsite),
            ("price", &self.price),
        ] {
            if s.len() != n {
                return Err(format!("{name} has {} slots, workload has {n}", s.len()));
            }
        }
        for (name, s) in [
            ("workload", &self.workload),
            ("onsite", &self.onsite),
            ("offsite", &self.offsite),
            ("price", &self.price),
        ] {
            for (t, &v) in s.iter().enumerate() {
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("{name}[{t}] = {v} is not finite and non-negative"));
                }
            }
        }
        Ok(())
    }

    /// Returns a sub-trace covering slots `[start, end)`.
    pub fn window(&self, start: usize, end: usize) -> EnvironmentTrace {
        let end = end.min(self.len());
        let start = start.min(end);
        EnvironmentTrace {
            workload: self.workload[start..end].to_vec(),
            onsite: self.onsite[start..end].to_vec(),
            offsite: self.offsite[start..end].to_vec(),
            price: self.price[start..end].to_vec(),
        }
    }

    /// Applies a multiplicative factor to the workload series (used by the
    /// overestimation sensitivity study, paper Fig. 5(c)).
    pub fn scale_workload(&mut self, factor: f64) {
        assert!(factor >= 0.0);
        for v in self.workload.iter_mut() {
            *v *= factor;
        }
    }
}

/// Declarative recipe for a full synthetic environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of slots to generate (default: one year of hours).
    pub hours: usize,
    /// Workload generator.
    pub workload_kind: WorkloadKind,
    /// Peak workload arrival rate (req/s). Paper: 1.1e6.
    pub peak_arrival_rate: f64,
    /// On-site renewable target energy over the horizon (kWh).
    pub onsite_energy_kwh: f64,
    /// Solar share of the on-site mix.
    pub onsite_solar_share: f64,
    /// Off-site renewable target energy over the horizon (kWh).
    pub offsite_energy_kwh: f64,
    /// Solar share of the off-site mix.
    pub offsite_solar_share: f64,
    /// Mean electricity price ($/kWh).
    pub mean_price: f64,
    /// Master RNG seed; sub-generators derive independent streams.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            hours: HOURS_PER_YEAR,
            workload_kind: WorkloadKind::Fiu,
            peak_arrival_rate: 1.1e6,
            onsite_energy_kwh: 3.1e7,  // ≈20% of the paper's 1.55e5 MWh
            onsite_solar_share: 0.6,
            offsite_energy_kwh: 5.7e7, // 40% of the 92% budget (1.43e5 MWh)
            offsite_solar_share: 0.4,
            mean_price: 0.05,
            seed: 2012,
        }
    }
}

impl TraceConfig {
    /// Generates the full environment trace.
    pub fn generate(&self) -> EnvironmentTrace {
        let workload =
            WorkloadTrace::generate(self.workload_kind, self.hours, self.peak_arrival_rate, self.seed)
                .arrival_rates;
        let onsite = renewable::generate(
            &RenewableConfig {
                solar_share: self.onsite_solar_share,
                annual_energy_kwh: self.onsite_energy_kwh,
                seed: self.seed.wrapping_add(1),
            },
            self.hours,
        );
        let offsite = renewable::generate(
            &RenewableConfig {
                solar_share: self.offsite_solar_share,
                annual_energy_kwh: self.offsite_energy_kwh,
                seed: self.seed.wrapping_add(2),
            },
            self.hours,
        );
        let price = price::generate(
            &PriceConfig { mean_price: self.mean_price, seed: self.seed.wrapping_add(3), ..Default::default() },
            self.hours,
        );
        EnvironmentTrace { workload, onsite, offsite, price }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TraceConfig {
        TraceConfig { hours: 720, ..Default::default() }
    }

    #[test]
    fn generated_trace_is_valid() {
        let tr = small_cfg().generate();
        assert_eq!(tr.len(), 720);
        tr.validate().expect("valid trace");
    }

    #[test]
    fn energy_targets_respected() {
        let cfg = TraceConfig { hours: 8760, onsite_energy_kwh: 1.0e6, offsite_energy_kwh: 2.0e6, ..Default::default() };
        let tr = cfg.generate();
        assert!((tr.onsite.iter().sum::<f64>() - 1.0e6).abs() < 10.0);
        assert!((tr.total_offsite() - 2.0e6).abs() < 10.0);
    }

    #[test]
    fn slot_view_matches_series() {
        let tr = small_cfg().generate();
        let s = tr.slot(5);
        assert_eq!(s.t, 5);
        assert_eq!(s.arrival_rate, tr.workload[5]);
        assert_eq!(s.onsite, tr.onsite[5]);
        assert_eq!(s.price, tr.price[5]);
        assert_eq!(s.offsite, tr.offsite[5]);
        assert_eq!(tr.slots().count(), tr.len());
    }

    #[test]
    fn window_slices_all_series() {
        let tr = small_cfg().generate();
        let w = tr.window(10, 20);
        assert_eq!(w.len(), 10);
        assert_eq!(w.workload[0], tr.workload[10]);
        assert_eq!(w.price[9], tr.price[19]);
        // Out-of-range clamp.
        let w2 = tr.window(700, 10_000);
        assert_eq!(w2.len(), 20);
    }

    #[test]
    fn validate_catches_length_mismatch_and_negatives() {
        let mut tr = small_cfg().generate();
        tr.onsite.pop();
        assert!(tr.validate().is_err());
        let mut tr = small_cfg().generate();
        tr.price[3] = -0.1;
        assert!(tr.validate().is_err());
        let mut tr = small_cfg().generate();
        tr.workload[0] = f64::NAN;
        assert!(tr.validate().is_err());
    }

    #[test]
    fn scale_workload_multiplies() {
        let mut tr = small_cfg().generate();
        let before = tr.workload[7];
        tr.scale_workload(1.2);
        assert!((tr.workload[7] - before * 1.2).abs() < 1e-9);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = small_cfg().generate();
        let b = small_cfg().generate();
        assert_eq!(a, b);
        let c = TraceConfig { seed: 9, ..small_cfg() }.generate();
        assert_ne!(a, c);
    }

    #[test]
    fn serde_roundtrip_of_config() {
        let cfg = small_cfg();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: TraceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
