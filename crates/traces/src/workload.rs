//! Synthetic workload traces (paper Fig. 1).
//!
//! Two generators mirror the paper's two workloads:
//!
//! * **FIU** — a year of hourly arrival rates for a large public university:
//!   strong diurnal cycle, weekday/weekend structure, academic-calendar
//!   seasonality, the "significant increase around late July 2012 due to the
//!   summter activities" the paper highlights in Fig. 1(a), plus AR(1) noise
//!   and rare traffic spikes (the "unforeseeable traffic spikes" motivating
//!   the online approach).
//! * **MSR** — the paper's own recipe: a bursty one-week I/O shape repeated
//!   for a year with ±40 % uniform noise.
//!
//! Both produce a normalized series with maximum exactly 1.0 which is then
//! scaled to a configured peak arrival rate (1.1 M req/s in the paper ≈ 50 %
//! of the 216 K-server data center's full-speed capacity).

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::rng::{Ar1, SpikeProcess};
use crate::{HOURS_PER_DAY, HOURS_PER_WEEK};

/// Which synthetic workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Year-long university trace with late-July surge (paper Fig. 1(a)).
    Fiu,
    /// One-week MSR Cambridge shape repeated with ±40 % noise (Fig. 1(b)).
    Msr,
}

/// An hourly workload trace in requests/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// Arrival rate per hour slot (requests/s).
    pub arrival_rates: Vec<f64>,
    /// Peak the normalized series was scaled to.
    pub peak: f64,
    /// Generator that produced it.
    pub kind: WorkloadKind,
}

impl WorkloadTrace {
    /// Generates `hours` slots of the requested workload, scaled so the
    /// maximum arrival rate equals `peak` (req/s).
    ///
    /// ```
    /// use coca_traces::{WorkloadKind, WorkloadTrace};
    /// let w = WorkloadTrace::generate(WorkloadKind::Fiu, 48, 1.1e6, 2012);
    /// assert_eq!(w.len(), 48);
    /// assert!(w.arrival_rates.iter().all(|&v| v > 0.0 && v <= 1.1e6));
    /// ```
    pub fn generate(kind: WorkloadKind, hours: usize, peak: f64, seed: u64) -> Self {
        assert!(peak > 0.0, "peak must be positive");
        let normalized = match kind {
            WorkloadKind::Fiu => fiu_normalized(hours, seed),
            WorkloadKind::Msr => msr_normalized(hours, seed),
        };
        let arrival_rates = normalized.into_iter().map(|v| v * peak).collect();
        Self { arrival_rates, peak, kind }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.arrival_rates.len()
    }

    /// True when the trace has no slots.
    pub fn is_empty(&self) -> bool {
        self.arrival_rates.is_empty()
    }

    /// Normalized view (divided by the configured peak).
    pub fn normalized(&self) -> Vec<f64> {
        self.arrival_rates.iter().map(|v| v / self.peak).collect()
    }

    /// Mean arrival rate over the trace.
    pub fn mean(&self) -> f64 {
        if self.arrival_rates.is_empty() {
            0.0
        } else {
            self.arrival_rates.iter().sum::<f64>() / self.arrival_rates.len() as f64
        }
    }
}

/// Hour-of-day activity profile for an interactive service (peaks in the
/// afternoon, trough before dawn). Values in [0, 1].
fn diurnal_profile(hour_of_day: usize) -> f64 {
    // Two-harmonic fit: broad afternoon peak near 15:00, deep trough near 03:00.
    let peak_phase = 15.0 / HOURS_PER_DAY as f64 * std::f64::consts::TAU;
    let t = hour_of_day as f64 / HOURS_PER_DAY as f64 * std::f64::consts::TAU - peak_phase;
    let raw = 0.55 + 0.38 * t.cos() + 0.07 * (2.0 * t).cos();
    raw.clamp(0.05, 1.0)
}

/// Academic-calendar seasonal multiplier for the FIU trace, by day of year.
fn fiu_season(day_of_year: usize) -> f64 {
    let d = day_of_year % 365;
    match d {
        // Spring semester (mid-Jan through April): busy.
        14..=119 => 1.0,
        // Finals + early summer lull (May, June).
        120..=180 => 0.78,
        // Early July.
        181..=199 => 0.80,
        // Late-July surge (paper: "significant increase around late July").
        200..=216 => 1.35,
        // August ramp into fall semester.
        217..=242 => 1.05,
        // Fall semester: busiest.
        243..=340 => 1.08,
        // Winter break.
        341..=364 => 0.65,
        // Early January break.
        _ => 0.70,
    }
}

fn weekday_factor(hour: usize) -> f64 {
    let day_of_week = (hour / HOURS_PER_DAY) % 7;
    // Trace starts on a Sunday: days 0 and 6 are the weekend.
    if day_of_week == 0 || day_of_week == 6 {
        0.72
    } else {
        1.0
    }
}

fn fiu_normalized(hours: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF1F1_F1F1);
    let mut noise = Ar1::new(0.85, 0.06);
    let mut spikes = SpikeProcess::new(0.0015, 0.8, 0.6);
    let mut out = Vec::with_capacity(hours);
    for h in 0..hours {
        let day = h / HOURS_PER_DAY;
        let base = diurnal_profile(h % HOURS_PER_DAY) * fiu_season(day) * weekday_factor(h);
        let n = 1.0 + noise.step(&mut rng);
        let s = spikes.step(&mut rng);
        out.push((base * n.max(0.2) * s).max(0.01));
    }
    normalize_max(&mut out);
    out
}

/// One-week bursty I/O shape for the MSR trace: low background with
/// business-hours activity and intermittent heavy bursts.
fn msr_week_shape(seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x00AA_55AA);
    let mut shape = Vec::with_capacity(HOURS_PER_WEEK);
    let mut burst = SpikeProcess::new(0.06, 3.0, 0.45);
    for h in 0..HOURS_PER_WEEK {
        let dow = h / HOURS_PER_DAY;
        let business = if (1..=5).contains(&dow) { 1.0 } else { 0.55 };
        let base = 0.18 + 0.30 * diurnal_profile(h % HOURS_PER_DAY) * business;
        let b = burst.step(&mut rng);
        shape.push(base * b + 0.03 * rng.gen::<f64>());
    }
    shape
}

fn msr_normalized(hours: usize, seed: u64) -> Vec<f64> {
    let week = msr_week_shape(seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5A5A_5A5A);
    let mut out = Vec::with_capacity(hours);
    for h in 0..hours {
        let base = week[h % HOURS_PER_WEEK];
        // Paper: "repeat the trace for one year by adding random noises of up
        // to ±40%".
        let noise = 1.0 + rng.gen_range(-0.40..0.40);
        out.push((base * noise).max(0.005));
    }
    normalize_max(&mut out);
    out
}

fn normalize_max(series: &mut [f64]) {
    let max = series.iter().cloned().fold(0.0_f64, f64::max);
    if max > 0.0 {
        for v in series.iter_mut() {
            *v /= max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HOURS_PER_YEAR;

    #[test]
    fn fiu_year_has_unit_peak_and_positive_floor() {
        let w = WorkloadTrace::generate(WorkloadKind::Fiu, HOURS_PER_YEAR, 1.0, 7);
        assert_eq!(w.len(), HOURS_PER_YEAR);
        let max = w.arrival_rates.iter().cloned().fold(0.0_f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12, "peak normalized to 1, got {max}");
        assert!(w.arrival_rates.iter().all(|&v| v > 0.0), "arrival rates stay positive");
    }

    #[test]
    fn fiu_scales_to_requested_peak() {
        let w = WorkloadTrace::generate(WorkloadKind::Fiu, HOURS_PER_YEAR, 1.1e6, 7);
        let max = w.arrival_rates.iter().cloned().fold(0.0_f64, f64::max);
        assert!((max - 1.1e6).abs() < 1.0);
    }

    #[test]
    fn fiu_late_july_surge_visible() {
        let w = WorkloadTrace::generate(WorkloadKind::Fiu, HOURS_PER_YEAR, 1.0, 7);
        let day_mean = |d0: usize, d1: usize| -> f64 {
            let lo = d0 * 24;
            let hi = (d1 * 24).min(w.len());
            w.arrival_rates[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        };
        let late_july = day_mean(201, 215);
        let early_july = day_mean(182, 198);
        assert!(
            late_july > 1.25 * early_july,
            "late-July surge: {late_july:.3} vs early July {early_july:.3}"
        );
    }

    #[test]
    fn fiu_diurnal_cycle_present() {
        let w = WorkloadTrace::generate(WorkloadKind::Fiu, HOURS_PER_YEAR, 1.0, 7);
        // Average by hour-of-day: afternoon must exceed pre-dawn substantially.
        let mut by_hour = [0.0; 24];
        for (h, &v) in w.arrival_rates.iter().enumerate() {
            by_hour[h % 24] += v;
        }
        let afternoon = by_hour[14..18].iter().sum::<f64>();
        let predawn = by_hour[2..6].iter().sum::<f64>();
        assert!(afternoon > 1.8 * predawn, "diurnal contrast: {afternoon} vs {predawn}");
    }

    #[test]
    fn msr_year_repeats_week_with_noise() {
        let w = WorkloadTrace::generate(WorkloadKind::Msr, HOURS_PER_YEAR, 1.0, 3);
        assert_eq!(w.len(), HOURS_PER_YEAR);
        // Correlation between week k and week k+1 should be high (same base
        // shape) but not perfect (noise).
        let a = &w.arrival_rates[0..168];
        let b = &w.arrival_rates[168..336];
        let corr = correlation(a, b);
        assert!(corr > 0.4, "weekly shape repeats, corr = {corr}");
        assert!(corr < 0.999, "noise breaks exact repetition, corr = {corr}");
    }

    #[test]
    fn msr_week_trace_matches_paper_figure_window() {
        let w = WorkloadTrace::generate(WorkloadKind::Msr, HOURS_PER_WEEK, 1.0, 3);
        assert_eq!(w.len(), 168);
        let max = w.arrival_rates.iter().cloned().fold(0.0_f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let a = WorkloadTrace::generate(WorkloadKind::Fiu, 1000, 5.0, 42);
        let b = WorkloadTrace::generate(WorkloadKind::Fiu, 1000, 5.0, 42);
        assert_eq!(a, b);
        let c = WorkloadTrace::generate(WorkloadKind::Fiu, 1000, 5.0, 43);
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn mean_and_normalized_consistent() {
        let w = WorkloadTrace::generate(WorkloadKind::Msr, 500, 2.0, 9);
        let norm = w.normalized();
        let max = norm.iter().cloned().fold(0.0_f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(w.mean() > 0.0 && w.mean() < 2.0);
    }

    #[test]
    #[should_panic]
    fn zero_peak_rejected() {
        let _ = WorkloadTrace::generate(WorkloadKind::Fiu, 10, 0.0, 1);
    }

    fn correlation(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }
}
