//! Property-based tests for the scalar solvers: bisection against random
//! monotone functions, golden-section against grid scans, and budget duals
//! against analytically solvable quadratic slot families.

use coca_opt::bisect::{bisect_increasing, BisectOptions};
use coca_opt::dual::{solve_budget_dual, DualOptions};
use coca_opt::golden::golden_min;
use coca_opt::simplex::project_capped_simplex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bisection_finds_roots_of_monotone_cubics(
        root in -50.0..50.0_f64,
        scale in 0.01..10.0_f64,
    ) {
        // f(x) = scale·(x − root)³ + (x − root): strictly increasing.
        let f = |x: f64| {
            let d = x - root;
            scale * d * d * d + d
        };
        let x = bisect_increasing(-100.0, 100.0, f, BisectOptions::default()).unwrap();
        prop_assert!((x - root).abs() < 1e-6, "found {x}, expected {root}");
    }

    #[test]
    fn golden_section_matches_grid_scan(
        center in -10.0..10.0_f64,
        width in 0.1..5.0_f64,
        quartic in proptest::bool::ANY,
    ) {
        let f = move |x: f64| {
            let d = x - center;
            if quartic { d.powi(4) + 0.5 * d * d } else { d * d }
        };
        let r = golden_min(-20.0, 20.0, f, 1e-9, 300).unwrap();
        let grid_best = (0..40_000)
            .map(|i| -20.0 + 40.0 * i as f64 / 39_999.0)
            .map(f)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(r.value <= grid_best + 1e-6,
            "golden {} worse than grid {}", r.value, grid_best);
    }

    #[test]
    fn budget_dual_meets_random_budgets(
        targets in proptest::collection::vec(0.1..10.0_f64, 1..12),
        budget_frac in 0.0..1.2_f64,
    ) {
        // Quadratic slots: y*(μ) = max(aₜ − μ/2, 0).
        let total: f64 = targets.iter().sum();
        let budget = budget_frac * total;
        let out = solve_budget_dual(
            |t, mu| {
                let y = (targets[t] - mu / 2.0).max(0.0);
                ((y - targets[t]).powi(2), y)
            },
            targets.len(),
            budget,
            DualOptions::default(),
        )
        .unwrap();
        prop_assert!(out.total_usage <= budget * (1.0 + 1e-3) + 1e-9,
            "usage {} exceeds budget {budget}", out.total_usage);
        if budget_frac >= 1.0 {
            prop_assert_eq!(out.mu, 0.0, "slack budget needs no multiplier");
        }
    }

    #[test]
    fn simplex_projection_is_idempotent(
        y in proptest::collection::vec(-5.0..5.0_f64, 1..10),
        cap in 0.5..4.0_f64,
        target_frac in 0.0..1.0_f64,
    ) {
        let caps = vec![cap; y.len()];
        let target = target_frac * cap * y.len() as f64;
        let x = project_capped_simplex(&y, &caps, target).unwrap();
        let x2 = project_capped_simplex(&x, &caps, target).unwrap();
        for (a, b) in x.iter().zip(&x2) {
            prop_assert!((a - b).abs() < 1e-7, "projection not idempotent: {a} vs {b}");
        }
        let sum: f64 = x.iter().sum();
        prop_assert!((sum - target).abs() < 1e-6);
    }
}
