//! Runtime paper-invariant checker.
//!
//! The COCA reproduction makes quantitative claims that are easy to break
//! silently — a sign slip in the deficit recursion still *runs*, it just
//! stops being the paper. This module turns the paper-level invariants into
//! executable checks that the controller, the simulator, and every baseline
//! call at their natural seams:
//!
//! | check | paper anchor |
//! |---|---|
//! | carbon-deficit queue never negative | eq. 17 (`[·]⁺` clamp) |
//! | queue reset exactly at frame boundaries | Algorithm 1 lines 2–4 |
//! | load conservation `Σᵢ mᵢλᵢ = a(t)` | constraint (8) |
//! | speeds drawn from the discrete set `Sᵢ` | constraint (9) |
//! | water-filling KKT residual ≤ ε | eq. 16/18 three-regime analysis |
//! | Gibbs acceptance probability ∈ [0, 1] | Algorithm 2 lines 4–5 |
//!
//! # Modes
//!
//! * **Debug** (default): a violated invariant trips a `debug_assert!` —
//!   loud under `cargo test`, free in release binaries.
//! * **Strict**: a violated invariant panics unconditionally, release builds
//!   included. Enabled process-wide by setting the environment variable
//!   `COCA_STRICT_INVARIANTS=1` (or calling [`force_strict`] before first
//!   use); the `repro` experiment binary exposes it as `--strict`.
//!
//! Every check increments a global counter regardless of outcome, so a test
//! can assert that a scenario actually *exercised* the checks it claims to
//! (see [`counts`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::waterfill::LoadDistProblem;

/// The individual invariant checks, used to index [`counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Carbon-deficit queue length is finite and ≥ 0 (eq. 17).
    DeficitNonNegative,
    /// Queue was reset at the last frame boundary (Algorithm 1 lines 2–4).
    FrameReset,
    /// Dispatched load equals the arrival rate (constraint 8).
    LoadConservation,
    /// Chosen speed level indexes the discrete speed set (constraint 9).
    SpeedMembership,
    /// Water-filling solution satisfies the KKT conditions to tolerance.
    KktResidual,
    /// Gibbs acceptance probability lies in [0, 1] (Algorithm 2).
    AcceptanceProbability,
}

/// Number of distinct checks (length of the counter table).
const NUM_CHECKS: usize = 6;

/// Human-readable names, index-aligned with [`Check`].
const CHECK_NAMES: [&str; NUM_CHECKS] = [
    "deficit-nonnegative",
    "frame-reset",
    "load-conservation",
    "speed-membership",
    "kkt-residual",
    "acceptance-probability",
];

static COUNTS: [AtomicU64; NUM_CHECKS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// How many times each check has run in this process (any [`InvariantSet`],
/// pass or fail). Returns `(name, count)` pairs.
pub fn counts() -> [(&'static str, u64); NUM_CHECKS] {
    let mut out = [("", 0); NUM_CHECKS];
    for (i, slot) in out.iter_mut().enumerate() {
        // audit:atomic(statistical counter read; relaxed, no ordering with check outcomes)
        *slot = (CHECK_NAMES[i], COUNTS[i].load(Ordering::Relaxed));
    }
    out
}

/// A configured set of invariant checks.
///
/// Cheap to construct; most call sites use the process-wide [`global`]
/// instance so strictness is controlled in one place.
#[derive(Debug, Clone, Copy)]
pub struct InvariantSet {
    strict: bool,
    /// Relative tolerance for the floating-point checks.
    tol: f64,
}

impl InvariantSet {
    /// A checker in the given mode with the default tolerance (1e-6).
    pub const fn new(strict: bool) -> Self {
        Self { strict, tol: 1e-6 }
    }

    /// A strict checker: violations panic even in release builds.
    pub const fn strict() -> Self {
        Self::new(true)
    }

    /// True when violations panic unconditionally.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Records that `check` ran and reacts to the outcome per the mode.
    fn enforce(&self, check: Check, ok: bool, msg: impl FnOnce() -> String) {
        // audit:atomic(lossless tally; relaxed RMW, no cross-cell ordering needed)
        COUNTS[check as usize].fetch_add(1, Ordering::Relaxed);
        if ok {
            return;
        }
        if self.strict {
            // The whole point of strict mode: fail hard, release included.
            panic!("paper invariant violated [{:?}]: {}", check, msg());
        }
        debug_assert!(false, "paper invariant violated [{:?}]: {}", check, msg());
    }

    /// Eq. 17: the clamped deficit queue can never go negative (nor NaN).
    pub fn deficit_nonnegative(&self, q: f64) {
        self.enforce(Check::DeficitNonNegative, q.is_finite() && q >= 0.0, || {
            format!("carbon-deficit queue length q = {q}")
        });
    }

    /// Algorithm 1 lines 2–4: at a frame boundary (`slot % frame == 0`) the
    /// queue must have just been reset, and within a frame the slot-in-frame
    /// counter must agree with the number of updates since the reset.
    pub fn frame_reset(&self, slot: usize, frame_length: usize, updates_since_reset: usize) {
        let ok = frame_length > 0 && updates_since_reset == slot % frame_length;
        self.enforce(Check::FrameReset, ok, || {
            format!(
                "slot {slot}, frame length {frame_length}: queue saw \
                 {updates_since_reset} updates since reset, expected {}",
                if frame_length > 0 { slot % frame_length } else { 0 }
            )
        });
    }

    /// Constraint (8): the dispatched load `Σᵢ mᵢλᵢ` equals the arrival
    /// rate `a(t)` up to relative tolerance.
    pub fn load_conserved(&self, dispatched: f64, arrival: f64) {
        let scale = arrival.abs().max(1.0);
        let ok = dispatched.is_finite()
            && arrival.is_finite()
            && (dispatched - arrival).abs() <= self.tol * scale;
        self.enforce(Check::LoadConservation, ok, || {
            format!("dispatched load {dispatched} != arrival rate {arrival}")
        });
    }

    /// Constraint (9): the chosen speed level at `site` must index one of
    /// that site's `num_choices` discrete speeds.
    pub fn speed_in_set(&self, level: usize, num_choices: usize, site: usize) {
        self.enforce(Check::SpeedMembership, level < num_choices, || {
            format!("site {site}: level {level} outside speed set of size {num_choices}")
        });
    }

    /// Checks a full capacity-provisioning/load-distribution decision:
    /// every speed level indexes its site's discrete speed set (constraint
    /// 9) and the load shares conserve the arrival rate (constraint 8).
    pub fn decision(&self, levels: &[usize], loads: &[f64], choice_counts: &[usize], arrival: f64) {
        for (site, (&level, &count)) in levels.iter().zip(choice_counts).enumerate() {
            self.speed_in_set(level, count, site);
        }
        self.load_conserved(loads.iter().sum(), arrival);
    }

    /// Algorithm 2 lines 4–5: a Gibbs acceptance probability is a
    /// probability.
    pub fn acceptance_probability(&self, u: f64) {
        self.enforce(Check::AcceptanceProbability, (0.0..=1.0).contains(&u), || {
            format!("Gibbs acceptance probability u = {u}")
        });
    }

    /// Checks the KKT conditions of a water-filling solution via
    /// [`kkt_residual`]; the residual must not exceed `max(tol, 1e-5)`.
    pub fn kkt(&self, problem: &LoadDistProblem<'_>, lambdas: &[f64]) {
        let residual = kkt_residual(problem, lambdas);
        let eps = self.tol.max(1e-5);
        self.enforce(Check::KktResidual, residual <= eps, || {
            format!("water-filling KKT residual {residual} exceeds {eps}")
        });
    }
}

/// The process-wide checker. Strict iff `COCA_STRICT_INVARIANTS` is set to
/// `1`/`true` in the environment at first use (or [`force_strict`] was
/// called earlier).
pub fn global() -> &'static InvariantSet {
    GLOBAL.get_or_init(|| {
        let strict = std::env::var("COCA_STRICT_INVARIANTS")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        InvariantSet::new(strict)
    })
}

static GLOBAL: OnceLock<InvariantSet> = OnceLock::new();

/// Forces the [`global`] checker into strict mode. Must be called before the
/// first use of [`global`] (e.g. at the top of `main`); returns `false` if
/// the global checker was already initialized.
pub fn force_strict() -> bool {
    GLOBAL.set(InvariantSet::strict()).is_ok()
}

/// Normalized KKT residual of a load distribution for the water-filling
/// problem (module docs of [`crate::waterfill`]).
///
/// The objective has a kink where total power crosses the renewable supply
/// `r`, so optimality admits three certificates; the residual is the best
/// (smallest) among those whose side condition holds:
///
/// * power ≥ r: stationarity with the full energy weight `A` — all interior
///   coordinates share one marginal cost `A·cᵢ + W·Xᵢ/(Xᵢ−λᵢ)²`;
/// * power ≤ r: stationarity with energy weight 0;
/// * always: complementary slackness at the kink, `|power − r|` small (an
///   effective weight `μ ∈ [0, A]` exists by continuity).
///
/// All three are normalized to be scale-free. Returns `+∞` for non-finite
/// inputs.
pub fn kkt_residual(problem: &LoadDistProblem<'_>, lambdas: &[f64]) -> f64 {
    if lambdas.iter().any(|l| !l.is_finite()) {
        return f64::INFINITY;
    }
    let power = problem.power(lambdas);
    let r = problem.renewable;
    if !power.is_finite() {
        return f64::INFINITY;
    }
    let kink_scale = power.abs().max(r.abs()).max(1.0);
    let kink_residual = (power - r).abs() / kink_scale;

    // Stationarity: spread of marginal costs over interior coordinates.
    let spread = |a_eff: f64| -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (q, &l) in problem.queues.iter().zip(lambdas) {
            // Pinned coordinates (λᵢ ≈ 0 or λᵢ ≈ uᵢ) satisfy inequality
            // conditions instead; only interior ones must equalize.
            let interior = l > 1e-9 * q.util_cap && l < q.util_cap * (1.0 - 1e-9);
            if !interior {
                continue;
            }
            let gap = q.capacity - l;
            debug_assert!(gap > 0.0, "interior load is below util_cap < capacity");
            let marginal = a_eff * q.energy_slope + problem.delay_weight * q.capacity / (gap * gap);
            lo = lo.min(marginal);
            hi = hi.max(marginal);
        }
        if lo > hi {
            return 0.0; // no interior coordinates: nothing to equalize
        }
        (hi - lo) / hi.abs().max(lo.abs()).max(1.0)
    };

    let slack_tol = 1e-7 * kink_scale;
    let mut best = kink_residual;
    if power >= r - slack_tol {
        best = best.min(spread(problem.energy_weight));
    }
    if power <= r + slack_tol {
        best = best.min(spread(0.0));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waterfill::{solve, QueueSpec};

    fn lenient() -> InvariantSet {
        InvariantSet::new(false)
    }

    #[test]
    fn passing_checks_do_not_panic_and_are_counted() {
        let inv = lenient();
        let before = counts();
        inv.deficit_nonnegative(0.0);
        inv.deficit_nonnegative(3.5);
        inv.frame_reset(24, 24, 0);
        inv.frame_reset(25, 24, 1);
        inv.load_conserved(10.0, 10.0 + 1e-9);
        inv.speed_in_set(2, 5, 0);
        inv.acceptance_probability(0.0);
        inv.acceptance_probability(1.0);
        inv.acceptance_probability(0.5);
        let after = counts();
        for (i, ((name, a), (_, b))) in after.iter().zip(&before).enumerate() {
            if CHECK_NAMES[i] != "kkt-residual" {
                assert!(a > b, "check {name} not counted");
            }
        }
    }

    #[test]
    #[should_panic(expected = "DeficitNonNegative")]
    fn strict_mode_panics_on_negative_deficit() {
        InvariantSet::strict().deficit_nonnegative(-1e-9);
    }

    #[test]
    #[should_panic(expected = "FrameReset")]
    fn strict_mode_panics_on_missed_reset() {
        // Slot 24 with frame length 24 but 24 updates since reset: the
        // boundary reset was skipped.
        InvariantSet::strict().frame_reset(24, 24, 24);
    }

    #[test]
    #[should_panic(expected = "LoadConservation")]
    fn strict_mode_panics_on_dropped_load() {
        InvariantSet::strict().load_conserved(5.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "SpeedMembership")]
    fn strict_mode_panics_on_out_of_set_speed() {
        InvariantSet::strict().speed_in_set(5, 5, 3);
    }

    #[test]
    #[should_panic(expected = "AcceptanceProbability")]
    fn strict_mode_panics_on_bad_probability() {
        InvariantSet::strict().acceptance_probability(1.5);
    }

    #[test]
    fn kkt_residual_small_at_optimum_large_off_optimum() {
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 0.05),
            QueueSpec::single(14.0, 12.6, 0.30),
        ];
        let p = LoadDistProblem {
            queues: &qs,
            total_load: 11.0,
            energy_weight: 2.0,
            delay_weight: 1.0,
            base_power: 0.2,
            renewable: 0.0,
        };
        let sol = solve(&p).expect("solvable");
        let at_opt = kkt_residual(&p, &sol.lambdas);
        assert!(at_opt <= 1e-5, "optimal residual {at_opt}");
        // A skewed feasible point conserves load but violates stationarity.
        let skew = [2.0, (11.0 - 2.0) / 1.0];
        let off_opt = kkt_residual(&p, &skew);
        assert!(off_opt > 1e-3, "skewed residual {off_opt} should be large");
    }

    #[test]
    fn kkt_residual_accepts_kink_solutions() {
        // The kink instance from the waterfill tests: optimum pins power=r.
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 1.0),
            QueueSpec::single(10.0, 9.0, 3.0),
        ];
        let p = LoadDistProblem {
            queues: &qs,
            total_load: 10.0,
            energy_weight: 50.0,
            delay_weight: 1.0,
            base_power: 0.0,
            renewable: 16.0,
        };
        let sol = solve(&p).expect("solvable");
        let res = kkt_residual(&p, &sol.lambdas);
        assert!(res <= 1e-5, "kink residual {res}");
    }

    #[test]
    fn kkt_residual_infinite_on_nan() {
        let qs = vec![QueueSpec::single(10.0, 9.0, 0.1)];
        let p = LoadDistProblem {
            queues: &qs,
            total_load: 1.0,
            energy_weight: 1.0,
            delay_weight: 1.0,
            base_power: 0.0,
            renewable: 0.0,
        };
        assert!(kkt_residual(&p, &[f64::NAN]).is_infinite());
    }

    #[test]
    fn global_is_lenient_without_env() {
        // The test harness does not set COCA_STRICT_INVARIANTS; the global
        // checker must come up in debug mode (this would race with a test
        // that sets the variable, which is why the strict run lives in its
        // own integration-test binary).
        if std::env::var("COCA_STRICT_INVARIANTS").is_err() {
            assert!(!global().is_strict());
        }
    }
}
