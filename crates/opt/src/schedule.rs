//! Temperature schedules for the annealed Gibbs sampler.
//!
//! The paper (Sec. 4.2) advises starting with a small smoothing parameter δ
//! (high exploration) and increasing it over iterations so the chain
//! progressively concentrates on better solutions. These schedules capture
//! the common choices; all are deterministic functions of the iteration
//! index.

use serde::{Deserialize, Serialize};

/// Deterministic temperature (δ) schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TemperatureSchedule {
    /// Fixed δ for every iteration (the setting of the paper's Fig. 4).
    Constant(f64),
    /// Linear interpolation from `start` at iteration 0 to `end` at the last
    /// iteration.
    Linear {
        /// δ at the first iteration.
        start: f64,
        /// δ at the last iteration.
        end: f64,
    },
    /// Geometric growth `start · factor^k`, clamped to `max`.
    Geometric {
        /// δ at the first iteration.
        start: f64,
        /// Per-iteration multiplicative factor (> 1 anneals up).
        factor: f64,
        /// Upper clamp.
        max: f64,
    },
    /// Logarithmic annealing `scale · ln(2 + k)`, the classical
    /// convergence-guaranteeing schedule for simulated annealing.
    Logarithmic {
        /// Multiplicative scale.
        scale: f64,
    },
}

impl TemperatureSchedule {
    /// δ at iteration `k` out of `total` iterations.
    pub fn delta_at(&self, k: usize, total: usize) -> f64 {
        match *self {
            TemperatureSchedule::Constant(d) => d,
            TemperatureSchedule::Linear { start, end } => {
                if total <= 1 {
                    end
                } else {
                    let t = k as f64 / (total - 1) as f64;
                    start + t * (end - start)
                }
            }
            TemperatureSchedule::Geometric { start, factor, max } => {
                (start * factor.powi(k as i32)).min(max)
            }
            TemperatureSchedule::Logarithmic { scale } => scale * ((2 + k) as f64).ln(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = TemperatureSchedule::Constant(7.0);
        assert_eq!(s.delta_at(0, 100), 7.0);
        assert_eq!(s.delta_at(99, 100), 7.0);
    }

    #[test]
    fn linear_hits_endpoints() {
        let s = TemperatureSchedule::Linear { start: 1.0, end: 11.0 };
        assert_eq!(s.delta_at(0, 101), 1.0);
        assert_eq!(s.delta_at(100, 101), 11.0);
        assert!((s.delta_at(50, 101) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn linear_degenerate_total() {
        let s = TemperatureSchedule::Linear { start: 1.0, end: 5.0 };
        assert_eq!(s.delta_at(0, 1), 5.0);
    }

    #[test]
    fn geometric_clamps() {
        let s = TemperatureSchedule::Geometric { start: 1.0, factor: 10.0, max: 500.0 };
        assert_eq!(s.delta_at(0, 10), 1.0);
        assert_eq!(s.delta_at(1, 10), 10.0);
        assert_eq!(s.delta_at(5, 10), 500.0);
    }

    #[test]
    fn logarithmic_grows_slowly() {
        let s = TemperatureSchedule::Logarithmic { scale: 2.0 };
        assert!(s.delta_at(0, 10) > 0.0);
        assert!(s.delta_at(1000, 2000) > s.delta_at(10, 2000));
    }
}
