//! Euclidean projection onto the capped simplex
//! `{ x : Σᵢ xᵢ = s, 0 ≤ xᵢ ≤ uᵢ }`.
//!
//! Used by the projected-gradient fallback solver ([`crate::pgd`]) and
//! useful on its own for repairing slightly-infeasible load vectors coming
//! out of distributed iterations.

use crate::bisect::{bisect_increasing, BisectOptions};
use crate::{OptError, Result};

/// Projects `y` onto `{x : Σ xᵢ = target, 0 ≤ xᵢ ≤ caps[i]}` in Euclidean
/// norm. The projection has the closed form `xᵢ = clip(yᵢ − τ, 0, uᵢ)` for a
/// scalar shift τ found by bisection on the (monotone) total.
pub fn project_capped_simplex(y: &[f64], caps: &[f64], target: f64) -> Result<Vec<f64>> {
    if y.len() != caps.len() {
        return Err(OptError::InvalidInput(format!(
            "length mismatch: y has {}, caps has {}",
            y.len(),
            caps.len()
        )));
    }
    if !(target.is_finite() && target >= 0.0) {
        return Err(OptError::InvalidInput(format!("target must be ≥ 0, got {target}")));
    }
    for (&v, name) in y.iter().zip(std::iter::repeat("y")) {
        if !v.is_finite() {
            return Err(OptError::NonFinite(format!("{name} contains {v}")));
        }
    }
    let cap_sum: f64 = caps.iter().sum();
    for &u in caps {
        if !(u.is_finite() && u >= 0.0) {
            return Err(OptError::InvalidInput(format!("caps must be ≥ 0, got {u}")));
        }
    }
    if target > cap_sum * (1.0 + 1e-12) {
        return Err(OptError::Infeasible(format!("target {target} exceeds cap sum {cap_sum}")));
    }
    if target >= cap_sum {
        return Ok(caps.to_vec());
    }

    let total_at = |tau: f64| -> f64 {
        y.iter().zip(caps).map(|(&v, &u)| (v - tau).clamp(0.0, u)).sum()
    };
    // total_at is non-increasing in τ. Bracket: at τ = min(y) − max(cap) the
    // total is the cap sum (≥ target); at τ = max(y) the total is 0.
    let y_min = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let y_max = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let u_max = caps.iter().cloned().fold(0.0_f64, f64::max);
    let lo = y_min - u_max - 1.0;
    let hi = y_max + 1.0;
    let opts = BisectOptions { x_tol: 1e-14 * (1.0 + hi.abs()), f_tol: 1e-12 * (1.0 + target), max_iter: 200 };
    let tau = bisect_increasing(lo, hi, |t| target - total_at(t), opts)?;
    let mut x: Vec<f64> = y.iter().zip(caps).map(|(&v, &u)| (v - tau).clamp(0.0, u)).collect();

    // Exactness repair: spread residual over strictly-interior coordinates.
    let total: f64 = x.iter().sum();
    let slack = target - total;
    if slack.abs() > 0.0 {
        let interior_count = x
            .iter()
            .zip(caps)
            .filter(|(xi, u)| **xi > 0.0 && **xi < **u)
            .count();
        if interior_count > 0 {
            let per = slack / interior_count as f64;
            for (xi, &u) in x.iter_mut().zip(caps) {
                if *xi > 0.0 && *xi < u {
                    *xi = (*xi + per).clamp(0.0, u);
                }
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_feasible(x: &[f64], caps: &[f64], target: f64) {
        let sum: f64 = x.iter().sum();
        assert!((sum - target).abs() < 1e-8, "sum {sum} != target {target}");
        for (xi, u) in x.iter().zip(caps) {
            assert!(*xi >= -1e-12 && *xi <= u + 1e-12, "x={xi} outside [0, {u}]");
        }
    }

    #[test]
    fn projection_of_feasible_point_is_identity() {
        let y = vec![1.0, 2.0, 3.0];
        let caps = vec![5.0, 5.0, 5.0];
        let x = project_capped_simplex(&y, &caps, 6.0).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn projects_uniform_when_target_shrinks() {
        let y = vec![4.0, 4.0, 4.0];
        let caps = vec![10.0, 10.0, 10.0];
        let x = project_capped_simplex(&y, &caps, 6.0).unwrap();
        assert_feasible(&x, &caps, 6.0);
        for &v in &x {
            assert!((v - 2.0).abs() < 1e-8);
        }
    }

    #[test]
    fn caps_bind() {
        let y = vec![100.0, 0.0, 0.0];
        let caps = vec![1.0, 10.0, 10.0];
        let x = project_capped_simplex(&y, &caps, 5.0).unwrap();
        assert_feasible(&x, &caps, 5.0);
        assert!((x[0] - 1.0).abs() < 1e-8, "capped coordinate pinned: {x:?}");
        assert!((x[1] - x[2]).abs() < 1e-8, "symmetric remainder split: {x:?}");
    }

    #[test]
    fn target_equal_to_cap_sum_returns_caps() {
        let y = vec![0.0, 0.0];
        let caps = vec![2.0, 3.0];
        let x = project_capped_simplex(&y, &caps, 5.0).unwrap();
        assert_eq!(x, caps);
    }

    #[test]
    fn infeasible_target_rejected() {
        assert!(matches!(
            project_capped_simplex(&[0.0], &[1.0], 2.0),
            Err(OptError::Infeasible(_))
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(project_capped_simplex(&[0.0, 1.0], &[1.0], 0.5).is_err());
    }

    #[test]
    fn projection_minimizes_distance_vs_random_feasible_points() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let y = vec![3.0, -1.0, 0.5, 2.0];
        let caps = vec![2.0, 2.0, 2.0, 2.0];
        let target = 4.0;
        let x = project_capped_simplex(&y, &caps, target).unwrap();
        let dist = |a: &[f64]| -> f64 {
            a.iter().zip(&y).map(|(p, q)| (p - q) * (p - q)).sum()
        };
        let dx = dist(&x);
        // Sample random feasible points; none may beat the projection.
        for _ in 0..2000 {
            let mut raw: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..2.0)).collect();
            let s: f64 = raw.iter().sum();
            if s <= 0.0 {
                continue;
            }
            for v in raw.iter_mut() {
                *v *= target / s;
            }
            if raw.iter().zip(&caps).any(|(v, u)| v > u) {
                continue;
            }
            assert!(dist(&raw) + 1e-9 >= dx, "random feasible point beats projection");
        }
    }
}
