//! Golden-section search for unimodal scalar minimization.
//!
//! Used by calibration routines (e.g. choosing the cost-carbon parameter `V`
//! that exactly meets a target energy budget) where the objective is unimodal
//! but not differentiable in closed form.

use crate::{OptError, Result};

/// Inverse golden ratio, `(√5 − 1) / 2`.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Result of a golden-section minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct GoldenResult {
    /// Argument of the located minimum.
    pub x: f64,
    /// Function value at [`GoldenResult::x`].
    pub value: f64,
    /// Number of function evaluations performed.
    pub evals: usize,
}

/// Minimizes a unimodal function `f` on `[lo, hi]` to the requested argument
/// tolerance.
///
/// If `f` is not unimodal the search still terminates and returns a local
/// minimum within the bracket (this is the standard golden-section
/// guarantee).
pub fn golden_min<F: FnMut(f64) -> f64>(
    lo: f64,
    hi: f64,
    mut f: F,
    x_tol: f64,
    max_iter: usize,
) -> Result<GoldenResult> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(OptError::InvalidInput(format!("bad bracket [{lo}, {hi}]")));
    }
    let mut a = lo;
    let mut b = hi;
    let mut evals = 0;
    let mut eval = |x: f64, evals: &mut usize| -> Result<f64> {
        let v = f(x);
        *evals += 1;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(OptError::NonFinite(format!("f({x}) = {v}")))
        }
    };
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = eval(c, &mut evals)?;
    let mut fd = eval(d, &mut evals)?;
    for _ in 0..max_iter {
        if (b - a) <= x_tol {
            break;
        }
        if fc <= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = eval(c, &mut evals)?;
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = eval(d, &mut evals)?;
        }
    }
    let (x, value) = if fc <= fd { (c, fc) } else { (d, fd) };
    Ok(GoldenResult { x, value, evals })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_parabola() {
        let r = golden_min(-10.0, 10.0, |x| (x - 3.0) * (x - 3.0) + 1.0, 1e-8, 200).unwrap();
        assert!((r.x - 3.0).abs() < 1e-6);
        assert!((r.value - 1.0).abs() < 1e-10);
    }

    #[test]
    fn minimizes_asymmetric_unimodal() {
        // |x| + exp(x) is unimodal with minimum left of 0.
        let r = golden_min(-5.0, 5.0, |x| x.abs() + x.exp(), 1e-10, 300).unwrap();
        let grid_min = (-5000..5000)
            .map(|i| i as f64 / 1000.0)
            .map(|x| x.abs() + x.exp())
            .fold(f64::INFINITY, f64::min);
        assert!(r.value <= grid_min + 1e-6);
    }

    #[test]
    fn respects_bracket_endpoints() {
        // Monotone decreasing on the bracket: minimum at hi.
        let r = golden_min(0.0, 1.0, |x| -x, 1e-10, 200).unwrap();
        assert!((r.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_bracket_returns_point() {
        let r = golden_min(2.0, 2.0, |x| x * x, 1e-12, 50).unwrap();
        assert_eq!(r.x, 2.0);
    }

    #[test]
    fn rejects_reversed_bracket() {
        assert!(golden_min(1.0, 0.0, |x| x, 1e-9, 10).is_err());
    }

    #[test]
    fn propagates_non_finite() {
        assert!(matches!(
            golden_min(0.0, 1.0, |_| f64::INFINITY, 1e-9, 10),
            Err(OptError::NonFinite(_))
        ));
    }
}
