//! Monotone scalar root finding by bisection.
//!
//! Every Lagrange-multiplier search in the COCA system — the water-filling
//! multiplier ν, the power-cap multiplier μ, and the offline carbon-budget
//! multiplier — reduces to finding the root (or the crossing point) of a
//! monotone function of one variable. Bisection is the right tool: it is
//! derivative-free, unconditionally convergent on a bracketing interval, and
//! tolerant of the piecewise-smooth, clipped functions that arise from KKT
//! conditions with box constraints.

use crate::{OptError, Result};

/// Options controlling a bisection run.
#[derive(Debug, Clone, Copy)]
pub struct BisectOptions {
    /// Absolute tolerance on the argument interval width.
    pub x_tol: f64,
    /// Absolute tolerance on the function value; the search stops early when
    /// `|f(mid)| <= f_tol`.
    pub f_tol: f64,
    /// Maximum number of interval halvings.
    pub max_iter: usize,
}

impl Default for BisectOptions {
    fn default() -> Self {
        Self { x_tol: 1e-12, f_tol: 0.0, max_iter: 200 }
    }
}

/// Finds `x ∈ [lo, hi]` with `f(x) ≈ 0` for a function that is
/// **non-decreasing** on the interval.
///
/// Requirements: `f(lo) <= 0 <= f(hi)` (within floating point). If the
/// bracket is violated the nearer endpoint is returned, which is the correct
/// clamped solution for the multiplier searches in this crate (the KKT
/// multiplier saturates at a bound).
///
/// Returns the final midpoint.
pub fn bisect_increasing<F: FnMut(f64) -> f64>(
    mut lo: f64,
    mut hi: f64,
    mut f: F,
    opts: BisectOptions,
) -> Result<f64> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(OptError::InvalidInput(format!("bad bracket [{lo}, {hi}]")));
    }
    let flo = f(lo);
    if !flo.is_finite() {
        return Err(OptError::NonFinite(format!("f({lo}) = {flo}")));
    }
    if flo >= 0.0 {
        return Ok(lo);
    }
    let fhi = f(hi);
    if !fhi.is_finite() {
        return Err(OptError::NonFinite(format!("f({hi}) = {fhi}")));
    }
    if fhi <= 0.0 {
        return Ok(hi);
    }
    for _ in 0..opts.max_iter {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= opts.x_tol.max(f64::EPSILON * mid.abs()) {
            return Ok(mid);
        }
        let fm = f(mid);
        if !fm.is_finite() {
            return Err(OptError::NonFinite(format!("f({mid}) = {fm}")));
        }
        if fm.abs() <= opts.f_tol {
            return Ok(mid);
        }
        if fm < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Finds `x ∈ [lo, hi]` with `f(x) ≈ 0` for a **non-decreasing** function
/// by regula falsi with the Illinois modification: the secant through the
/// bracket endpoints proposes the next iterate, and a retained endpoint's
/// function value is halved whenever the same side survives two
/// iterations, which prevents the one-sided stalling of plain regula
/// falsi. The bracket never widens, so this is as safe as
/// [`bisect_increasing`], but it converges superlinearly on smooth roots —
/// typically several times fewer evaluations at the `f_tol` values the
/// water-filling solvers use. The incremental P3 engine uses it on its
/// warm-started searches; the cold reference solver keeps plain bisection.
///
/// Same contract as [`bisect_increasing`]: requires `f(lo) ≤ 0 ≤ f(hi)`;
/// if the bracket is violated the nearer endpoint is returned (the
/// clamped multiplier solution), and stopping uses the same
/// [`BisectOptions`] tolerances, so results agree with bisection to the
/// tolerance band.
pub fn illinois_increasing<F: FnMut(f64) -> f64>(
    lo: f64,
    hi: f64,
    mut f: F,
    opts: BisectOptions,
) -> Result<f64> {
    // Structured, allocation-free errors throughout: these searches are
    // reachable from `audit:hot-path` regions, where even an error-path
    // `format!` trips `hot-path-reach`. Formatting is deferred to
    // `Display`.
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(OptError::BadBracket { lo, hi, flo: f64::NAN, fhi: f64::NAN });
    }
    let flo = f(lo);
    if !flo.is_finite() {
        return Err(OptError::NonFiniteEval { x: lo, fx: flo });
    }
    if flo >= 0.0 {
        return Ok(lo);
    }
    let fhi = f(hi);
    if !fhi.is_finite() {
        return Err(OptError::NonFiniteEval { x: hi, fx: fhi });
    }
    if fhi <= 0.0 {
        return Ok(hi);
    }
    illinois_seeded(lo, hi, flo, fhi, f, opts)
}

/// [`illinois_increasing`] for a bracket whose endpoint values are already
/// known: runs the Illinois loop directly without re-evaluating `f(lo)` and
/// `f(hi)`.
///
/// The warm-started water-filling searches verify their warm bracket by
/// sign before trusting it — this entry point lets them hand those two
/// evaluations to the search instead of paying for them twice, which
/// matters when each evaluation is an O(#queue-types) pass on the
/// per-proposal hot path.
///
/// Requires `lo ≤ hi`, `flo = f(lo) ≤ 0`, and `fhi = f(hi) ≥ 0`; the
/// endpoints are returned immediately when their value already meets
/// `f_tol` (or is exactly zero via the sign conditions below).
pub fn illinois_seeded<F: FnMut(f64) -> f64>(
    mut lo: f64,
    mut hi: f64,
    mut flo: f64,
    mut fhi: f64,
    mut f: F,
    opts: BisectOptions,
) -> Result<f64> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi || !(flo <= 0.0 && fhi >= 0.0) {
        return Err(OptError::BadBracket { lo, hi, flo, fhi });
    }
    // Exact-zero seeds mean the endpoint IS the root even at f_tol = 0;
    // the compare is intended. audit:allow(float-eq)
    if flo.abs() <= opts.f_tol || flo == 0.0 {
        return Ok(lo);
    }
    // audit:allow(float-eq) same exact-zero endpoint case as above
    if fhi.abs() <= opts.f_tol || fhi == 0.0 {
        return Ok(hi);
    }
    // Which endpoint survived the previous iteration: -1 = lo, +1 = hi,
    // 0 = fresh bracket.
    let mut side = 0i8;
    for _ in 0..opts.max_iter {
        // Secant proposal, guarded against degenerate slopes; fall back to
        // the midpoint whenever the proposal leaves the open interval.
        let denom = fhi - flo;
        let mut x = if denom > 0.0 { (lo * fhi - hi * flo) / denom } else { 0.5 * (lo + hi) };
        if !(x > lo && x < hi) {
            x = 0.5 * (lo + hi);
        }
        if hi - lo <= opts.x_tol.max(f64::EPSILON * x.abs()) {
            return Ok(x);
        }
        let fx = f(x);
        if !fx.is_finite() {
            return Err(OptError::NonFiniteEval { x, fx });
        }
        if fx.abs() <= opts.f_tol {
            return Ok(x);
        }
        if fx < 0.0 {
            lo = x;
            flo = fx;
            if side == -1 {
                fhi *= 0.5; // Illinois: relax the stale endpoint
            }
            side = -1;
        } else {
            hi = x;
            fhi = fx;
            if side == 1 {
                flo *= 0.5;
            }
            side = 1;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Finds a root of a **non-increasing** function by negation.
pub fn bisect_decreasing<F: FnMut(f64) -> f64>(
    lo: f64,
    hi: f64,
    mut f: F,
    opts: BisectOptions,
) -> Result<f64> {
    bisect_increasing(lo, hi, |x| -f(x), opts)
}

/// Expands `hi` geometrically (doubling, starting from `start`) until
/// `f(hi) >= 0` or `max_doublings` is reached, then returns the bracketing
/// upper bound. Used when no a-priori upper bound on a multiplier is known.
///
/// `f` must be non-decreasing. Returns an error if no sign change is found,
/// carrying the final residual so callers can decide whether the constraint
/// simply saturates.
pub fn grow_upper_bracket<F: FnMut(f64) -> f64>(
    start: f64,
    mut f: F,
    max_doublings: usize,
) -> Result<f64> {
    if !(start.is_finite() && start > 0.0) {
        // Degenerate [start, start] bracket: the growth start left its
        // documented positive domain.
        return Err(OptError::BadBracket { lo: start, hi: start, flo: f64::NAN, fhi: f64::NAN });
    }
    let mut hi = start;
    for _ in 0..max_doublings {
        let v = f(hi);
        if !v.is_finite() {
            return Err(OptError::NonFiniteEval { x: hi, fx: v });
        }
        if v >= 0.0 {
            return Ok(hi);
        }
        hi *= 2.0;
    }
    Err(OptError::NoConvergence { iterations: max_doublings, residual: f(hi) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_linear_root() {
        let x = bisect_increasing(-10.0, 10.0, |x| 2.0 * x - 3.0, BisectOptions::default())
            .unwrap();
        assert!((x - 1.5).abs() < 1e-10);
    }

    #[test]
    fn clamps_when_root_below_bracket() {
        // f > 0 on the whole bracket: the clamped answer is lo.
        let x = bisect_increasing(5.0, 10.0, |x| x, BisectOptions::default()).unwrap();
        assert_eq!(x, 5.0);
    }

    #[test]
    fn clamps_when_root_above_bracket() {
        let x = bisect_increasing(-10.0, -5.0, |x| x, BisectOptions::default()).unwrap();
        assert_eq!(x, -5.0);
    }

    #[test]
    fn handles_piecewise_flat_regions() {
        // Clipped-linear function with a flat plateau exactly at zero:
        // any point of the plateau is acceptable.
        let f = |x: f64| (x - 1.0).clamp(-1.0, 1.0) + (x - 1.0).clamp(0.0, 0.0);
        let x = bisect_increasing(-5.0, 5.0, f, BisectOptions::default()).unwrap();
        assert!((x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn illinois_agrees_with_bisection_within_tolerance() {
        // Water-filling-shaped residual: sum of clipped concave terms.
        let f = |nu: f64| {
            let lam = |c: f64, w: f64| {
                let gap = nu - 0.1 * c;
                if gap <= w / c { 0.0 } else { (c - (w * c / gap).sqrt()).clamp(0.0, 0.95 * c) }
            };
            lam(40.0, 2.0) + lam(25.0, 2.0) + lam(60.0, 2.0) - 70.0
        };
        let opts = BisectOptions { x_tol: 0.0, f_tol: 70.0 * 1e-12, max_iter: 200 };
        let a = bisect_increasing(0.0, 100.0, f, opts).unwrap();
        let b = illinois_increasing(0.0, 100.0, f, opts).unwrap();
        // Both stop on the same |f| tolerance; the roots agree to the
        // implied argument band.
        assert!((a - b).abs() <= a.abs() * 1e-9 + 1e-9, "{a} vs {b}");
        assert!(f(b).abs() <= opts.f_tol);
    }

    #[test]
    fn illinois_converges_faster_than_bisection() {
        let count = std::cell::Cell::new(0u32);
        let opts = BisectOptions { x_tol: 0.0, f_tol: 1e-12, max_iter: 200 };
        let _ = illinois_increasing(
            0.0,
            100.0,
            |x| {
                count.set(count.get() + 1);
                (x - 3.7).powi(3) + (x - 3.7)
            },
            opts,
        )
        .unwrap();
        let illinois_evals = count.get();
        count.set(0);
        let _ = bisect_increasing(
            0.0,
            100.0,
            |x| {
                count.set(count.get() + 1);
                (x - 3.7).powi(3) + (x - 3.7)
            },
            opts,
        )
        .unwrap();
        assert!(
            illinois_evals * 2 < count.get(),
            "illinois {illinois_evals} evals vs bisection {}",
            count.get()
        );
    }

    #[test]
    fn illinois_clamps_and_rejects_like_bisection() {
        let opts = BisectOptions::default();
        assert_eq!(illinois_increasing(5.0, 10.0, |x| x, opts).unwrap(), 5.0);
        assert_eq!(illinois_increasing(-10.0, -5.0, |x| x, opts).unwrap(), -5.0);
        assert!(matches!(
            illinois_increasing(3.0, 1.0, |x| x, opts),
            Err(OptError::BadBracket { .. })
        ));
        assert!(matches!(
            illinois_increasing(-1.0, 1.0, |_| f64::NAN, opts),
            Err(OptError::NonFiniteEval { .. })
        ));
    }

    #[test]
    fn decreasing_variant() {
        let x = bisect_decreasing(0.0, 10.0, |x| 4.0 - x, BisectOptions::default()).unwrap();
        assert!((x - 4.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_invalid_bracket() {
        assert!(matches!(
            bisect_increasing(3.0, 1.0, |x| x, BisectOptions::default()),
            Err(OptError::InvalidInput(_))
        ));
        assert!(bisect_increasing(f64::NAN, 1.0, |x| x, BisectOptions::default()).is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        let r = bisect_increasing(-1.0, 1.0, |_| f64::NAN, BisectOptions::default());
        assert!(matches!(r, Err(OptError::NonFinite(_))));
    }

    #[test]
    fn grow_bracket_doubles_until_positive() {
        let hi = grow_upper_bracket(1.0, |x| x - 100.0, 60).unwrap();
        assert!(hi >= 100.0);
        assert!(hi <= 256.0);
    }

    #[test]
    fn grow_bracket_reports_saturation() {
        let r = grow_upper_bracket(1.0, |_| -1.0, 8);
        assert!(matches!(r, Err(OptError::NoConvergence { .. })));
    }

    #[test]
    fn tight_tolerance_converges_on_sqrt2() {
        let opts = BisectOptions { x_tol: 1e-14, f_tol: 0.0, max_iter: 500 };
        let x = bisect_increasing(0.0, 2.0, |x| x * x - 2.0, opts).unwrap();
        assert!((x - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
