//! Monotone scalar root finding by bisection.
//!
//! Every Lagrange-multiplier search in the COCA system — the water-filling
//! multiplier ν, the power-cap multiplier μ, and the offline carbon-budget
//! multiplier — reduces to finding the root (or the crossing point) of a
//! monotone function of one variable. Bisection is the right tool: it is
//! derivative-free, unconditionally convergent on a bracketing interval, and
//! tolerant of the piecewise-smooth, clipped functions that arise from KKT
//! conditions with box constraints.

use crate::{OptError, Result};

/// Options controlling a bisection run.
#[derive(Debug, Clone, Copy)]
pub struct BisectOptions {
    /// Absolute tolerance on the argument interval width.
    pub x_tol: f64,
    /// Absolute tolerance on the function value; the search stops early when
    /// `|f(mid)| <= f_tol`.
    pub f_tol: f64,
    /// Maximum number of interval halvings.
    pub max_iter: usize,
}

impl Default for BisectOptions {
    fn default() -> Self {
        Self { x_tol: 1e-12, f_tol: 0.0, max_iter: 200 }
    }
}

/// Finds `x ∈ [lo, hi]` with `f(x) ≈ 0` for a function that is
/// **non-decreasing** on the interval.
///
/// Requirements: `f(lo) <= 0 <= f(hi)` (within floating point). If the
/// bracket is violated the nearer endpoint is returned, which is the correct
/// clamped solution for the multiplier searches in this crate (the KKT
/// multiplier saturates at a bound).
///
/// Returns the final midpoint.
pub fn bisect_increasing<F: FnMut(f64) -> f64>(
    mut lo: f64,
    mut hi: f64,
    mut f: F,
    opts: BisectOptions,
) -> Result<f64> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(OptError::InvalidInput(format!("bad bracket [{lo}, {hi}]")));
    }
    let flo = f(lo);
    if !flo.is_finite() {
        return Err(OptError::NonFinite(format!("f({lo}) = {flo}")));
    }
    if flo >= 0.0 {
        return Ok(lo);
    }
    let fhi = f(hi);
    if !fhi.is_finite() {
        return Err(OptError::NonFinite(format!("f({hi}) = {fhi}")));
    }
    if fhi <= 0.0 {
        return Ok(hi);
    }
    for _ in 0..opts.max_iter {
        let mid = 0.5 * (lo + hi);
        if hi - lo <= opts.x_tol.max(f64::EPSILON * mid.abs()) {
            return Ok(mid);
        }
        let fm = f(mid);
        if !fm.is_finite() {
            return Err(OptError::NonFinite(format!("f({mid}) = {fm}")));
        }
        if fm.abs() <= opts.f_tol {
            return Ok(mid);
        }
        if fm < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Finds a root of a **non-increasing** function by negation.
pub fn bisect_decreasing<F: FnMut(f64) -> f64>(
    lo: f64,
    hi: f64,
    mut f: F,
    opts: BisectOptions,
) -> Result<f64> {
    bisect_increasing(lo, hi, |x| -f(x), opts)
}

/// Expands `hi` geometrically (doubling, starting from `start`) until
/// `f(hi) >= 0` or `max_doublings` is reached, then returns the bracketing
/// upper bound. Used when no a-priori upper bound on a multiplier is known.
///
/// `f` must be non-decreasing. Returns an error if no sign change is found,
/// carrying the final residual so callers can decide whether the constraint
/// simply saturates.
pub fn grow_upper_bracket<F: FnMut(f64) -> f64>(
    start: f64,
    mut f: F,
    max_doublings: usize,
) -> Result<f64> {
    if !(start.is_finite() && start > 0.0) {
        return Err(OptError::InvalidInput(format!("start must be positive, got {start}")));
    }
    let mut hi = start;
    for _ in 0..max_doublings {
        let v = f(hi);
        if !v.is_finite() {
            return Err(OptError::NonFinite(format!("f({hi}) = {v}")));
        }
        if v >= 0.0 {
            return Ok(hi);
        }
        hi *= 2.0;
    }
    Err(OptError::NoConvergence { iterations: max_doublings, residual: f(hi) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_linear_root() {
        let x = bisect_increasing(-10.0, 10.0, |x| 2.0 * x - 3.0, BisectOptions::default())
            .unwrap();
        assert!((x - 1.5).abs() < 1e-10);
    }

    #[test]
    fn clamps_when_root_below_bracket() {
        // f > 0 on the whole bracket: the clamped answer is lo.
        let x = bisect_increasing(5.0, 10.0, |x| x, BisectOptions::default()).unwrap();
        assert_eq!(x, 5.0);
    }

    #[test]
    fn clamps_when_root_above_bracket() {
        let x = bisect_increasing(-10.0, -5.0, |x| x, BisectOptions::default()).unwrap();
        assert_eq!(x, -5.0);
    }

    #[test]
    fn handles_piecewise_flat_regions() {
        // Clipped-linear function with a flat plateau exactly at zero:
        // any point of the plateau is acceptable.
        let f = |x: f64| (x - 1.0).clamp(-1.0, 1.0) + (x - 1.0).clamp(0.0, 0.0);
        let x = bisect_increasing(-5.0, 5.0, f, BisectOptions::default()).unwrap();
        assert!((x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decreasing_variant() {
        let x = bisect_decreasing(0.0, 10.0, |x| 4.0 - x, BisectOptions::default()).unwrap();
        assert!((x - 4.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_invalid_bracket() {
        assert!(matches!(
            bisect_increasing(3.0, 1.0, |x| x, BisectOptions::default()),
            Err(OptError::InvalidInput(_))
        ));
        assert!(bisect_increasing(f64::NAN, 1.0, |x| x, BisectOptions::default()).is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        let r = bisect_increasing(-1.0, 1.0, |_| f64::NAN, BisectOptions::default());
        assert!(matches!(r, Err(OptError::NonFinite(_))));
    }

    #[test]
    fn grow_bracket_doubles_until_positive() {
        let hi = grow_upper_bracket(1.0, |x| x - 100.0, 60).unwrap();
        assert!(hi >= 100.0);
        assert!(hi <= 256.0);
    }

    #[test]
    fn grow_bracket_reports_saturation() {
        let r = grow_upper_bracket(1.0, |_| -1.0, 8);
        assert!(matches!(r, Err(OptError::NoConvergence { .. })));
    }

    #[test]
    fn tight_tolerance_converges_on_sqrt2() {
        let opts = BisectOptions { x_tol: 1e-14, f_tol: 0.0, max_iter: 500 };
        let x = bisect_increasing(0.0, 2.0, |x| x * x - 2.0, opts).unwrap();
        assert!((x - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
