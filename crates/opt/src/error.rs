use std::fmt;

/// Errors produced by the optimization primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The requested problem has no feasible point (e.g. total load exceeds
    /// aggregate capped capacity).
    Infeasible(String),
    /// An input argument is out of its documented domain.
    InvalidInput(String),
    /// An iterative method exhausted its iteration budget without reaching
    /// the requested tolerance.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Best residual achieved.
        residual: f64,
    },
    /// A numerical operation produced a non-finite value.
    NonFinite(String),
    /// A bracketing argument violated its documented sign/ordering
    /// contract. Carries the raw endpoints (and their residuals, NaN when
    /// never evaluated) instead of a formatted message, so the root
    /// searches on solver hot paths can construct it without allocating;
    /// formatting happens lazily in `Display`, off the hot path.
    BadBracket {
        /// Lower endpoint (or the starting guess for bracket growth).
        lo: f64,
        /// Upper endpoint.
        hi: f64,
        /// `f(lo)` when known; NaN when the function was never evaluated.
        flo: f64,
        /// `f(hi)` when known; NaN when the function was never evaluated.
        fhi: f64,
    },
    /// A function evaluation produced a non-finite value at a known
    /// point. Allocation-free counterpart of [`OptError::NonFinite`] for
    /// the hot-path root searches.
    NonFiniteEval {
        /// Evaluation point.
        x: f64,
        /// The non-finite value `f(x)`.
        fx: f64,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Infeasible(msg) => write!(f, "infeasible problem: {msg}"),
            OptError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            OptError::NoConvergence { iterations, residual } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            OptError::NonFinite(msg) => write!(f, "non-finite value encountered: {msg}"),
            OptError::BadBracket { lo, hi, flo, fhi } => {
                if flo.is_nan() && fhi.is_nan() {
                    write!(f, "invalid bracket [{lo}, {hi}]")
                } else {
                    write!(f, "invalid bracket: f({lo}) = {flo}, f({hi}) = {fhi}")
                }
            }
            OptError::NonFiniteEval { x, fx } => {
                write!(f, "non-finite value encountered: f({x}) = {fx}")
            }
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = OptError::Infeasible("load 5 > capacity 3".into());
        assert!(e.to_string().contains("load 5 > capacity 3"));
        let e = OptError::NoConvergence { iterations: 7, residual: 1e-3 };
        assert!(e.to_string().contains('7'));
        let e = OptError::BadBracket { lo: 3.0, hi: 1.0, flo: f64::NAN, fhi: f64::NAN };
        assert_eq!(e.to_string(), "invalid bracket [3, 1]");
        let e = OptError::BadBracket { lo: 0.0, hi: 1.0, flo: 2.0, fhi: 5.0 };
        assert!(e.to_string().contains("f(0) = 2"));
        let e = OptError::NonFiniteEval { x: 2.0, fx: f64::INFINITY };
        assert!(e.to_string().contains("f(2) = inf"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptError>();
    }
}
