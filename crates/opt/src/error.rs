use std::fmt;

/// Errors produced by the optimization primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The requested problem has no feasible point (e.g. total load exceeds
    /// aggregate capped capacity).
    Infeasible(String),
    /// An input argument is out of its documented domain.
    InvalidInput(String),
    /// An iterative method exhausted its iteration budget without reaching
    /// the requested tolerance.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Best residual achieved.
        residual: f64,
    },
    /// A numerical operation produced a non-finite value.
    NonFinite(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Infeasible(msg) => write!(f, "infeasible problem: {msg}"),
            OptError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            OptError::NoConvergence { iterations, residual } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            OptError::NonFinite(msg) => write!(f, "non-finite value encountered: {msg}"),
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = OptError::Infeasible("load 5 > capacity 3".into());
        assert!(e.to_string().contains("load 5 > capacity 3"));
        let e = OptError::NoConvergence { iterations: 7, residual: 1e-3 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptError>();
    }
}
