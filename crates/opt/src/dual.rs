//! Lagrangian dual bisection for long-term budget constraints.
//!
//! The offline benchmarks of the paper (the optimal T-step lookahead family
//! **P2** and the full-horizon OPT of Fig. 5) minimize total cost subject to
//! a *coupling* energy-budget constraint `Σₜ y(t) ≤ budget`. Dualizing the
//! constraint with a multiplier μ ≥ 0 decouples the horizon into independent
//! per-slot problems
//!
//! ```text
//! min_decisions  g(t) + μ·y(t)
//! ```
//!
//! which have exactly the same shape as COCA's per-slot problem **P3** with
//! `q(t) = μ` and `V = 1` — so the same solvers apply. Total usage
//! `Σ y(t)` is non-increasing in μ, so the optimal multiplier is found by
//! bisection. For the continuous relaxation this is exact (strong duality);
//! for discrete speed sets the duality gap is small and shrinks with the
//! horizon length, which we quantify in the test-suite.

use crate::bisect::{bisect_increasing, grow_upper_bracket, BisectOptions};
use crate::{OptError, Result};

/// Result of a budget-dual solve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct DualOutcome {
    /// Optimal multiplier μ* (0 when the budget is slack at μ = 0).
    pub mu: f64,
    /// Total cost `Σ g(t)` at μ*.
    pub total_cost: f64,
    /// Total budgeted usage `Σ y(t)` at μ*.
    pub total_usage: f64,
    /// Number of full-horizon sweeps performed.
    pub sweeps: usize,
}

/// Options for [`solve_budget_dual`].
#[derive(Debug, Clone, Copy)]
pub struct DualOptions {
    /// Relative tolerance on budget attainment.
    pub budget_rel_tol: f64,
    /// Maximum bisection iterations.
    pub max_iter: usize,
    /// Maximum doublings when growing the initial μ bracket.
    pub max_doublings: usize,
}

impl Default for DualOptions {
    fn default() -> Self {
        Self { budget_rel_tol: 1e-6, max_iter: 80, max_doublings: 60 }
    }
}

/// Solves `min Σₜ cost(t)` s.t. `Σₜ usage(t) ≤ budget` by dual bisection.
///
/// `slot` maps `(t, μ)` to the per-slot `(cost, usage)` pair obtained by
/// minimizing `cost + μ·usage` over the slot's feasible decisions. It must
/// produce usage non-increasing in μ for fixed `t` (true for any exact slot
/// minimizer).
pub fn solve_budget_dual<F>(
    mut slot: F,
    num_slots: usize,
    budget: f64,
    opts: DualOptions,
) -> Result<DualOutcome>
where
    F: FnMut(usize, f64) -> (f64, f64),
{
    if num_slots == 0 {
        return Err(OptError::InvalidInput("horizon must have at least one slot".into()));
    }
    if !(budget.is_finite() && budget >= 0.0) {
        return Err(OptError::InvalidInput(format!("budget must be ≥ 0, got {budget}")));
    }
    let mut sweeps = 0usize;
    let mut sweep = |mu: f64, sweeps: &mut usize| -> (f64, f64) {
        *sweeps += 1;
        let mut cost = 0.0;
        let mut usage = 0.0;
        // Offline dual sweep: evaluates the full horizon per μ probe, by
        // design not a streaming simulation pass. audit:allow(slot-loop)
        for t in 0..num_slots {
            let (c, y) = slot(t, mu);
            cost += c;
            usage += y;
        }
        (cost, usage)
    };

    // μ = 0: if the unconstrained optimum already fits the budget we are done.
    let (c0, u0) = sweep(0.0, &mut sweeps);
    if u0 <= budget * (1.0 + opts.budget_rel_tol) {
        return Ok(DualOutcome { mu: 0.0, total_cost: c0, total_usage: u0, sweeps });
    }

    // Grow an upper bracket where usage drops to (or below) the budget.
    let mu_hi = grow_upper_bracket(
        1.0,
        |mu| {
            let (_, u) = sweep(mu, &mut sweeps);
            budget - u
        },
        opts.max_doublings,
    )
    .map_err(|e| match e {
        OptError::NoConvergence { iterations, residual } => OptError::Infeasible(format!(
            "budget unattainable even at extreme multiplier ({iterations} doublings, residual {residual:.3e}); \
             the mandatory static/processing power exceeds the budget"
        )),
        other => other,
    })?;

    let bis = BisectOptions {
        x_tol: 1e-12 * mu_hi.max(1.0),
        f_tol: budget.abs().max(1.0) * opts.budget_rel_tol,
        max_iter: opts.max_iter,
    };
    let mu = bisect_increasing(
        0.0,
        mu_hi,
        |mu| {
            let (_, u) = sweep(mu, &mut sweeps);
            budget - u
        },
        bis,
    )?;

    // Final sweep at the located multiplier; prefer the feasible side.
    let (c, u) = sweep(mu, &mut sweeps);
    if u <= budget * (1.0 + 10.0 * opts.budget_rel_tol) {
        return Ok(DualOutcome { mu, total_cost: c, total_usage: u, sweeps });
    }
    // Nudge up once if the midpoint landed on the infeasible side.
    let mu_up = mu * (1.0 + 1e-6) + 1e-12;
    let (c2, u2) = sweep(mu_up, &mut sweeps);
    Ok(DualOutcome { mu: mu_up, total_cost: c2, total_usage: u2, sweeps })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic toy slot: decision y ≥ 0, cost (y − a_t)². The slot
    /// minimizer of cost + μ·y is y = max(a_t − μ/2, 0).
    fn quad_slot(a: &[f64]) -> impl FnMut(usize, f64) -> (f64, f64) + '_ {
        move |t, mu| {
            let y = (a[t] - mu / 2.0).max(0.0);
            ((y - a[t]).powi(2), y)
        }
    }

    #[test]
    fn slack_budget_returns_unconstrained_optimum() {
        let a = [1.0, 2.0, 3.0];
        let out = solve_budget_dual(quad_slot(&a), 3, 100.0, DualOptions::default()).unwrap();
        assert_eq!(out.mu, 0.0);
        assert!(out.total_cost < 1e-12);
        assert!((out.total_usage - 6.0).abs() < 1e-12);
    }

    #[test]
    fn tight_budget_meets_constraint() {
        let a = [1.0, 2.0, 3.0];
        let budget = 3.0;
        let out = solve_budget_dual(quad_slot(&a), 3, budget, DualOptions::default()).unwrap();
        assert!(out.total_usage <= budget * (1.0 + 1e-4), "usage {}", out.total_usage);
        // KKT for this toy problem: y_t = max(a_t − μ/2, 0), Σ y = budget
        // → μ = 2(Σa − budget)/3 = 2 when all slots active.
        assert!((out.mu - 2.0).abs() < 1e-3, "mu = {}", out.mu);
        // Optimal cost = 3 · (μ/2)² = 3.
        assert!((out.total_cost - 3.0).abs() < 1e-3, "cost = {}", out.total_cost);
    }

    #[test]
    fn zero_budget_drives_usage_to_zero() {
        let a = [1.0, 1.5];
        let out = solve_budget_dual(quad_slot(&a), 2, 0.0, DualOptions::default()).unwrap();
        assert!(out.total_usage <= 1e-6);
    }

    #[test]
    fn unattainable_budget_is_reported() {
        // Usage is constant 5 regardless of μ: a mandatory floor.
        let out = solve_budget_dual(|_, _| (1.0, 5.0), 1, 2.0, DualOptions::default());
        assert!(matches!(out, Err(OptError::Infeasible(_))));
    }

    #[test]
    fn rejects_empty_horizon_and_bad_budget() {
        assert!(solve_budget_dual(|_, _| (0.0, 0.0), 0, 1.0, DualOptions::default()).is_err());
        assert!(solve_budget_dual(|_, _| (0.0, 0.0), 1, -1.0, DualOptions::default()).is_err());
        assert!(solve_budget_dual(|_, _| (0.0, 0.0), 1, f64::NAN, DualOptions::default()).is_err());
    }

    #[test]
    fn cost_increases_as_budget_tightens() {
        let a = [2.0, 2.0, 2.0, 2.0];
        let mut last_cost = -1.0;
        for budget in [8.0, 6.0, 4.0, 2.0, 1.0] {
            let out = solve_budget_dual(quad_slot(&a), 4, budget, DualOptions::default()).unwrap();
            assert!(out.total_cost >= last_cost - 1e-9, "monotone cost in budget");
            last_cost = out.total_cost;
        }
    }
}
