//! # coca-opt — optimization primitives for the COCA reproduction
//!
//! This crate implements the numerical machinery that the COCA controller
//! (Ren & He, SC'13) relies on:
//!
//! * [`bisect`] — monotone scalar root finding, the workhorse behind every
//!   Lagrange-multiplier search in the system.
//! * [`golden`] — golden-section minimization of unimodal scalar functions.
//! * [`waterfill`] — the exact inner **load-distribution** solver: given fixed
//!   server speeds, distributes the total arrival rate across servers to
//!   minimize `A·[power − r]⁺ + W·Σ λᵢ/(Xᵢ−λᵢ)` (the P3 objective for fixed
//!   speeds). Handles the `[·]⁺` kink exactly via a three-regime KKT analysis.
//! * [`gibbs`] — the annealed Gibbs sampler underlying GSD (Algorithm 2),
//!   generic over decision spaces and cost oracles.
//! * [`dual`] — Lagrangian dual bisection for long-term budget constraints,
//!   used by the offline benchmark OPT and the T-step lookahead policy.
//! * [`grid`] — exhaustive enumeration over small discrete spaces, used as a
//!   ground-truth oracle in tests.
//! * [`invariant`] — runtime paper-invariant checks (load conservation,
//!   KKT residual, Gibbs acceptance range, …) hooked from the solvers, the
//!   simulator, and every policy; re-exported as `coca_core::invariant`.
//! * [`simplex`] — projection onto the capped simplex, used by the
//!   projected-gradient fallback solver.
//! * [`pgd`] — projected-gradient descent fallback for the load-distribution
//!   problem, retained as an independent cross-check of the exact solver.
//! * [`schedule`] — temperature schedules for the annealer.
//!
//! All solvers are deterministic given their inputs (and an explicit RNG where
//! randomness is inherent), allocation-light, and panic-free on user input:
//! fallible operations return [`OptError`].

#![deny(missing_docs, unsafe_code)]

pub mod bisect;
pub mod dual;
pub mod gibbs;
pub mod golden;
pub mod grid;
pub mod invariant;
pub mod pgd;
pub mod schedule;
pub mod simplex;
pub mod waterfill;

mod error;

pub use error::OptError;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, OptError>;

/// Numerical tolerance used as a default by iterative solvers in this crate.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `max(x, 0.0)`, the `[·]⁺` operator from the paper (eq. 3, 10, 17).
///
/// Kept as a named function so call sites read like the math.
#[inline]
pub fn pos(x: f64) -> f64 {
    x.max(0.0)
}

/// Numerically robust logistic sigmoid `1 / (1 + e^{-t})`.
///
/// Avoids overflow for large `|t|`; used by the Gibbs acceptance rule.
#[inline]
pub fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_clamps_negative() {
        assert_eq!(pos(-3.5), 0.0);
        assert_eq!(pos(0.0), 0.0);
        assert_eq!(pos(2.25), 2.25);
    }

    #[test]
    fn sigmoid_symmetry() {
        for &t in &[0.0, 0.5, 3.0, 40.0, 1e3] {
            let a = sigmoid(t);
            let b = sigmoid(-t);
            assert!((a + b - 1.0).abs() < 1e-12, "sigmoid({t}) asymmetric");
        }
    }

    #[test]
    fn sigmoid_extremes_do_not_overflow() {
        assert_eq!(sigmoid(1e300), 1.0);
        assert_eq!(sigmoid(-1e300), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }
}
