//! Projected-gradient fallback solver for the load-distribution problem.
//!
//! This is an *independent* (slower, iterative) solver for the same convex
//! program handled exactly by [`crate::waterfill`]. It exists for two
//! reasons:
//!
//! 1. **Cross-validation** — the test suite checks that two very different
//!    algorithms agree, which guards against subtle KKT bookkeeping bugs in
//!    the closed-form solver.
//! 2. **Generality** — it accepts any differentiable convex delay model, not
//!    just M/G/1/PS, should a user plug in a custom cost.
//!
//! The `[power − r]⁺` kink is handled with a subgradient (0 at the kink),
//! which is sound for convex objectives under diminishing step sizes.

use crate::simplex::project_capped_simplex;
use crate::waterfill::LoadDistProblem;
use crate::Result;

/// Options for the projected-gradient solver.
#[derive(Debug, Clone, Copy)]
pub struct PgdOptions {
    /// Number of gradient iterations.
    pub iterations: usize,
    /// Initial step size; decays as `step / √(k+1)`.
    pub step: f64,
}

impl Default for PgdOptions {
    fn default() -> Self {
        Self { iterations: 4000, step: 0.5 }
    }
}

/// Minimizes the load-distribution objective by projected (sub)gradient
/// descent. Returns the per-queue loads.
pub fn solve_pgd(problem: &LoadDistProblem<'_>, opts: PgdOptions) -> Result<Vec<f64>> {
    problem.validate()?;
    // Multiplicity is an integer count stored as f64; the exact compare is
    // intended. audit:allow(float-eq)
    if problem.queues.iter().any(|q| q.multiplicity != 1.0) {
        return Err(crate::OptError::InvalidInput(
            "solve_pgd requires unit multiplicities; expand queue types first".into(),
        ));
    }
    let n = problem.queues.len();
    let caps: Vec<f64> = problem.queues.iter().map(|q| q.util_cap).collect();
    // Feasible start: proportional to caps.
    let cap_sum: f64 = caps.iter().sum();
    if problem.total_load > cap_sum * (1.0 + 1e-12) {
        return Err(crate::OptError::Infeasible(format!(
            "total load {} exceeds capped capacity {cap_sum}",
            problem.total_load
        )));
    }
    let mut x: Vec<f64> = caps.iter().map(|u| u / cap_sum * problem.total_load).collect();
    let mut best = x.clone();
    let mut best_val = problem.objective(&x);
    let mut grad = vec![0.0; n];

    for k in 0..opts.iterations {
        let power = problem.power(&x);
        let active = power > problem.renewable;
        for ((g, q), &xi) in grad.iter_mut().zip(problem.queues).zip(&x) {
            let denom = q.capacity - xi;
            let ddelay = q.capacity / (denom * denom);
            let denergy = if active { q.energy_slope } else { 0.0 };
            *g = problem.energy_weight * denergy + problem.delay_weight * ddelay;
        }
        // Normalize the gradient so the step size is scale-free.
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt().max(1e-12);
        let step = opts.step * problem.total_load.max(1.0) / (gnorm * ((k + 1) as f64).sqrt());
        let y: Vec<f64> = x.iter().zip(&grad).map(|(xi, g)| xi - step * g).collect();
        x = project_capped_simplex(&y, &caps, problem.total_load)?;
        // Keep strictly inside capacity (delay blows up at λᵢ = Xᵢ).
        for (xi, q) in x.iter_mut().zip(problem.queues) {
            *xi = xi.min(q.util_cap);
        }
        let val = problem.objective(&x);
        if val < best_val {
            best_val = val;
            best.copy_from_slice(&x);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waterfill::{solve, QueueSpec};

    fn agree(p: &LoadDistProblem<'_>, rel_tol: f64) {
        let exact = solve(p).unwrap();
        let approx = solve_pgd(p, PgdOptions::default()).unwrap();
        let v_exact = exact.objective;
        let v_pgd = p.objective(&approx);
        assert!(
            v_pgd <= v_exact * (1.0 + rel_tol) + 1e-9 && v_exact <= v_pgd * (1.0 + rel_tol) + 1e-9,
            "objective mismatch: exact {v_exact} vs pgd {v_pgd}"
        );
    }

    #[test]
    fn agrees_with_waterfill_heterogeneous() {
        let qs = vec![
            QueueSpec::single(8.0, 7.2, 0.3),
            QueueSpec::single(14.0, 12.6, 0.1),
            QueueSpec::single(11.0, 9.9, 0.2),
        ];
        let p = LoadDistProblem {
            queues: &qs,
            total_load: 17.0,
            energy_weight: 3.0,
            delay_weight: 1.5,
            base_power: 0.7,
            renewable: 1.0,
        };
        agree(&p, 1e-3);
    }

    #[test]
    fn agrees_with_waterfill_on_kink_instance() {
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 1.0),
            QueueSpec::single(10.0, 9.0, 3.0),
        ];
        let p = LoadDistProblem {
            queues: &qs,
            total_load: 10.0,
            energy_weight: 50.0,
            delay_weight: 1.0,
            base_power: 0.0,
            renewable: 16.0,
        };
        agree(&p, 5e-3);
    }

    #[test]
    fn infeasible_rejected() {
        let qs = vec![QueueSpec::single(2.0, 1.0, 0.1)];
        let p = LoadDistProblem {
            queues: &qs,
            total_load: 5.0,
            energy_weight: 1.0,
            delay_weight: 1.0,
            base_power: 0.0,
            renewable: 0.0,
        };
        assert!(solve_pgd(&p, PgdOptions::default()).is_err());
    }
}
