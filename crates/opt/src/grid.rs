//! Exhaustive enumeration over small product spaces.
//!
//! Used as a ground-truth oracle in tests (GSD vs exact optimum, Theorem 1
//! validation) and by the offline benchmark on tiny instances. The iterator
//! is lazy, so callers can enumerate spaces that are large-ish but still
//! tractable without materializing every state.

use crate::{OptError, Result};

/// Lazy iterator over all states of a product space with the given per-site
/// choice counts, in lexicographic order (site 0 is the most significant).
#[derive(Debug, Clone)]
pub struct CartesianIter {
    counts: Vec<usize>,
    state: Vec<usize>,
    done: bool,
}

impl CartesianIter {
    /// Creates the iterator. Any zero choice count yields an empty iterator.
    pub fn new(counts: &[usize]) -> Self {
        let done = counts.is_empty() || counts.contains(&0);
        Self { counts: counts.to_vec(), state: vec![0; counts.len()], done }
    }
}

impl Iterator for CartesianIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.state.clone();
        // Odometer increment from the least-significant (last) site.
        let mut i = self.state.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.state[i] += 1;
            if self.state[i] < self.counts[i] {
                break;
            }
            self.state[i] = 0;
        }
        Some(current)
    }
}

/// Materializes every state of the product space. Intended for small spaces.
pub fn cartesian_states(counts: &[usize]) -> Vec<Vec<usize>> {
    CartesianIter::new(counts).collect()
}

/// Exhaustively minimizes `cost` over the product space, returning the
/// argmin and its value. Errors if the space is empty or the cost is
/// non-finite anywhere.
pub fn argmin_exhaustive<C: FnMut(&[usize]) -> f64>(
    counts: &[usize],
    mut cost: C,
) -> Result<(Vec<usize>, f64)> {
    let mut best: Option<(Vec<usize>, f64)> = None;
    for state in CartesianIter::new(counts) {
        let c = cost(&state);
        if !c.is_finite() {
            return Err(OptError::NonFinite(format!("cost({state:?}) = {c}")));
        }
        match &best {
            Some((_, bc)) if *bc <= c => {}
            _ => best = Some((state, c)),
        }
    }
    best.ok_or_else(|| OptError::InvalidInput("empty state space".into()))
}

/// Number of states in the product space (saturating).
pub fn space_size(counts: &[usize]) -> usize {
    if counts.is_empty() {
        return 0;
    }
    counts.iter().fold(1usize, |acc, &c| acc.saturating_mul(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_states_once() {
        let states = cartesian_states(&[2, 3]);
        assert_eq!(states.len(), 6);
        let mut sorted = states.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "no duplicates");
        assert_eq!(states[0], vec![0, 0]);
        assert_eq!(states[5], vec![1, 2]);
    }

    #[test]
    fn lexicographic_order() {
        let states = cartesian_states(&[2, 2]);
        assert_eq!(states, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn empty_and_zero_spaces() {
        assert!(cartesian_states(&[]).is_empty());
        assert!(cartesian_states(&[3, 0, 2]).is_empty());
        assert_eq!(space_size(&[]), 0);
        assert_eq!(space_size(&[3, 0]), 0);
        assert_eq!(space_size(&[4, 5]), 20);
    }

    #[test]
    fn argmin_finds_unique_minimum() {
        let (state, value) =
            argmin_exhaustive(&[4, 4], |s| ((s[0] as f64 - 2.0).powi(2) + (s[1] as f64 - 1.0).powi(2)) + 1.0)
                .unwrap();
        assert_eq!(state, vec![2, 1]);
        assert_eq!(value, 1.0);
    }

    #[test]
    fn argmin_prefers_first_of_ties() {
        let (state, value) = argmin_exhaustive(&[2, 2], |_| 1.0).unwrap();
        assert_eq!(state, vec![0, 0]);
        assert_eq!(value, 1.0);
    }

    #[test]
    fn argmin_rejects_empty_space() {
        assert!(argmin_exhaustive(&[], |_| 1.0).is_err());
    }

    #[test]
    fn argmin_rejects_nan_cost() {
        assert!(matches!(
            argmin_exhaustive(&[2], |_| f64::NAN),
            Err(OptError::NonFinite(_))
        ));
    }

    #[test]
    fn single_site_space() {
        let states = cartesian_states(&[5]);
        assert_eq!(states.len(), 5);
        assert_eq!(states[4], vec![4]);
    }
}
