//! Annealed Gibbs-sampling optimizer over product discrete spaces.
//!
//! This is the engine behind **GSD** (paper Algorithm 2), kept generic: a
//! *state* is one discrete choice per site (server / server group), a *cost
//! oracle* maps states to strictly positive costs, and each iteration
//!
//! 1. picks a site uniformly at random and a uniformly random alternative
//!    choice for it (paper line 7),
//! 2. accepts the mutated state with probability
//!    `u = e^{δ/g_e} / (e^{δ/g_e} + e^{δ/g_*})` (paper lines 4–5), which is
//!    computed as `sigmoid(δ·(1/g_e − 1/g_*))` to avoid overflow.
//!
//! The induced Markov chain is irreducible and aperiodic with stationary law
//! `Ω(x) ∝ exp(δ/g(x))` (paper eq. 25, Theorem 1); as δ → ∞ the mass
//! concentrates on the global minimizers. [`gibbs_stationary`] computes the
//! exact stationary distribution on enumerable spaces, which the test-suite
//! compares against empirical visit frequencies.

use rand::Rng;

use crate::schedule::TemperatureSchedule;
use crate::{sigmoid, OptError, Result};

/// Options for a Gibbs-sampling run.
#[derive(Debug, Clone)]
pub struct GibbsOptions {
    /// Number of proposal iterations.
    pub iterations: usize,
    /// Temperature (δ) schedule.
    pub schedule: TemperatureSchedule,
    /// If set, the run stops early after this many consecutive iterations
    /// without improvement of the best cost.
    pub patience: Option<usize>,
    /// Record the kept-state cost after every iteration (paper Fig. 4).
    pub record_trace: bool,
}

impl Default for GibbsOptions {
    fn default() -> Self {
        Self {
            iterations: 500,
            schedule: TemperatureSchedule::Constant(1e6),
            patience: None,
            record_trace: false,
        }
    }
}

/// Outcome of a Gibbs-sampling run.
#[derive(Debug, Clone)]
#[must_use]
pub struct GibbsOutcome {
    /// Best state observed during the run.
    pub best_state: Vec<usize>,
    /// Cost of [`GibbsOutcome::best_state`].
    pub best_cost: f64,
    /// State kept by the chain when the run stopped.
    pub final_state: Vec<usize>,
    /// Cost of the kept state at the end.
    pub final_cost: f64,
    /// Iterations actually performed (≤ `options.iterations`).
    pub iterations_run: usize,
    /// Number of accepted proposals.
    pub accepted: usize,
    /// Kept-state cost after each iteration, if requested.
    pub trace: Vec<f64>,
}

/// Runs the annealed Gibbs sampler.
///
/// * `choice_counts[i]` — number of discrete choices at site `i` (must be
///   ≥ 1; single-choice sites are legal and never mutated).
/// * `initial` — starting state; each entry must index a valid choice.
/// * `cost` — strictly positive cost oracle. Returning a non-positive or
///   non-finite value aborts the run with an error (the acceptance rule
///   `δ/g` requires `g > 0`, paper Appendix A).
pub fn run_gibbs<C, R>(
    choice_counts: &[usize],
    initial: &[usize],
    mut cost: C,
    opts: &GibbsOptions,
    rng: &mut R,
) -> Result<GibbsOutcome>
where
    C: FnMut(&[usize]) -> f64,
    R: Rng + ?Sized,
{
    validate_state(choice_counts, initial)?;
    let mutable_sites: Vec<usize> =
        (0..choice_counts.len()).filter(|&i| choice_counts[i] > 1).collect();

    let mut kept = initial.to_vec();
    let mut kept_cost = eval_cost(&mut cost, &kept)?;
    let mut best = kept.clone();
    let mut best_cost = kept_cost;
    let mut accepted = 0;
    let mut stagnant = 0;
    let mut trace = Vec::with_capacity(if opts.record_trace { opts.iterations } else { 0 });
    let mut iterations_run = 0;

    for k in 0..opts.iterations {
        iterations_run = k + 1;
        if mutable_sites.is_empty() {
            break;
        }
        let delta = opts.schedule.delta_at(k, opts.iterations);
        let site = mutable_sites[rng.gen_range(0..mutable_sites.len())];
        let old_choice = kept[site];
        // Uniform proposal over the site's choices, including re-proposing
        // the current one (paper line 7: "randomly selects a processing
        // speed x'ᵢ ∈ Sᵢ"). Re-proposals are cheap no-ops.
        let proposal = rng.gen_range(0..choice_counts[site]);
        if proposal == old_choice {
            if opts.record_trace {
                trace.push(kept_cost);
            }
            continue;
        }
        kept[site] = proposal;
        let explored_cost = eval_cost(&mut cost, &kept)?;
        debug_assert!(
            explored_cost > 0.0 && kept_cost > 0.0,
            "eval_cost rejects non-positive objectives"
        );
        let u = sigmoid(delta * (1.0 / explored_cost - 1.0 / kept_cost));
        crate::invariant::global().acceptance_probability(u);
        if rng.gen::<f64>() < u {
            kept_cost = explored_cost;
            accepted += 1;
            if kept_cost < best_cost {
                best_cost = kept_cost;
                best.copy_from_slice(&kept);
                stagnant = 0;
            } else {
                stagnant += 1;
            }
        } else {
            kept[site] = old_choice;
            stagnant += 1;
        }
        if opts.record_trace {
            trace.push(kept_cost);
        }
        if let Some(p) = opts.patience {
            if stagnant >= p {
                break;
            }
        }
    }

    Ok(GibbsOutcome {
        best_state: best,
        best_cost,
        final_state: kept,
        final_cost: kept_cost,
        iterations_run,
        accepted,
        trace,
    })
}

/// Incremental cost oracle for the batched Gibbs driver.
///
/// Unlike the closure oracle of [`run_gibbs`] — which receives the full
/// mutated state and must internally diff it against its own copy — a
/// `CandidateOracle` holds the committed state itself and prices single-site
/// deviations directly. This is the contract the struct-of-arrays batched
/// kernel exposes (`SlotEvalContext::evaluate_candidate`): the candidate is
/// scored by delta-adjusting shared multiset aggregates, with no state
/// vector round-trip, no hash probe, and no restore pass on rejection.
///
/// Contract:
/// * [`current_cost`](CandidateOracle::current_cost) prices the committed
///   state; the driver calls it once, before the first iteration. The caller
///   must have synchronized the oracle to the chain's initial state.
/// * [`candidate_cost`](CandidateOracle::candidate_cost) prices the
///   committed state with `site` moved to `level`, **without** committing —
///   the committed state is unchanged when it returns.
/// * [`commit`](CandidateOracle::commit) makes `site = level` the committed
///   state; the driver calls it exactly on acceptance.
///
/// All costs must be strictly positive and finite, as in [`run_gibbs`].
pub trait CandidateOracle {
    /// Cost of the currently committed state.
    fn current_cost(&mut self) -> f64;
    /// Cost of the committed state with `site` moved to `level`, without
    /// committing the move.
    fn candidate_cost(&mut self, site: usize, level: usize) -> f64;
    /// Commit `site = level` into the oracle's state.
    fn commit(&mut self, site: usize, level: usize);
}

/// Runs the annealed Gibbs sampler against a [`CandidateOracle`].
///
/// Semantically identical to [`run_gibbs`] — same proposal law, same
/// acceptance rule, and the **same RNG consumption order** (site draw,
/// proposal draw, acceptance draw only for non-self proposals), so a batched
/// run with the same seed visits the same chain of states as the closure
/// driver whenever the two oracles agree on costs. The difference is purely
/// mechanical: rejected proposals never touch the committed state, so there
/// is no mutate/restore round-trip per iteration.
pub fn run_gibbs_batched<O, R>(
    choice_counts: &[usize],
    initial: &[usize],
    oracle: &mut O,
    opts: &GibbsOptions,
    rng: &mut R,
) -> Result<GibbsOutcome>
where
    O: CandidateOracle + ?Sized,
    R: Rng + ?Sized,
{
    validate_state(choice_counts, initial)?;
    let mutable_sites: Vec<usize> =
        (0..choice_counts.len()).filter(|&i| choice_counts[i] > 1).collect();

    let mut kept = initial.to_vec();
    let mut kept_cost = check_cost(oracle.current_cost(), "current state")?;
    let mut best = kept.clone();
    let mut best_cost = kept_cost;
    let mut accepted = 0;
    let mut stagnant = 0;
    let mut trace = Vec::with_capacity(if opts.record_trace { opts.iterations } else { 0 });
    let mut iterations_run = 0;

    for k in 0..opts.iterations {
        iterations_run = k + 1;
        if mutable_sites.is_empty() {
            break;
        }
        let delta = opts.schedule.delta_at(k, opts.iterations);
        let site = mutable_sites[rng.gen_range(0..mutable_sites.len())];
        let old_choice = kept[site];
        // Same proposal law as `run_gibbs`: uniform over the site's choices,
        // re-proposals included (and skipped without an acceptance draw).
        let proposal = rng.gen_range(0..choice_counts[site]);
        if proposal == old_choice {
            if opts.record_trace {
                trace.push(kept_cost);
            }
            continue;
        }
        let explored_cost = check_cost(oracle.candidate_cost(site, proposal), "candidate")?;
        debug_assert!(
            explored_cost > 0.0 && kept_cost > 0.0,
            "check_cost rejects non-positive objectives"
        );
        let u = sigmoid(delta * (1.0 / explored_cost - 1.0 / kept_cost));
        crate::invariant::global().acceptance_probability(u);
        if rng.gen::<f64>() < u {
            oracle.commit(site, proposal);
            kept[site] = proposal;
            kept_cost = explored_cost;
            accepted += 1;
            if kept_cost < best_cost {
                best_cost = kept_cost;
                best.copy_from_slice(&kept);
                stagnant = 0;
            } else {
                stagnant += 1;
            }
        } else {
            stagnant += 1;
        }
        if opts.record_trace {
            trace.push(kept_cost);
        }
        if let Some(p) = opts.patience {
            if stagnant >= p {
                break;
            }
        }
    }

    Ok(GibbsOutcome {
        best_state: best,
        best_cost,
        final_state: kept,
        final_cost: kept_cost,
        iterations_run,
        accepted,
        trace,
    })
}

fn validate_state(choice_counts: &[usize], state: &[usize]) -> Result<()> {
    if choice_counts.len() != state.len() {
        return Err(OptError::InvalidInput(format!(
            "state length {} != site count {}",
            state.len(),
            choice_counts.len()
        )));
    }
    for (i, (&c, &s)) in choice_counts.iter().zip(state).enumerate() {
        if c == 0 {
            return Err(OptError::InvalidInput(format!("site {i} has zero choices")));
        }
        if s >= c {
            return Err(OptError::InvalidInput(format!(
                "state[{i}] = {s} out of range for {c} choices"
            )));
        }
    }
    Ok(())
}

fn eval_cost<C: FnMut(&[usize]) -> f64>(cost: &mut C, state: &[usize]) -> Result<f64> {
    let g = cost(state);
    if !g.is_finite() {
        return Err(OptError::NonFinite(format!("cost({state:?}) = {g}")));
    }
    if g <= 0.0 {
        return Err(OptError::InvalidInput(format!(
            "Gibbs cost must be strictly positive (got {g}); shift the objective if needed"
        )));
    }
    Ok(g)
}

fn check_cost(g: f64, what: &str) -> Result<f64> {
    if !g.is_finite() {
        return Err(OptError::NonFinite(format!("batched oracle cost of {what} = {g}")));
    }
    if g <= 0.0 {
        return Err(OptError::InvalidInput(format!(
            "Gibbs cost must be strictly positive (got {g} for {what}); shift the objective if needed"
        )));
    }
    Ok(g)
}

/// Exact stationary distribution `Ω(x) ∝ exp(δ/g(x))` of the GSD chain
/// (paper eq. 25) over the full enumerated state space. Intended for small
/// spaces (tests, Theorem-1 validation); cost of enumeration is the product
/// of the choice counts.
pub fn gibbs_stationary<C: FnMut(&[usize]) -> f64>(
    choice_counts: &[usize],
    mut cost: C,
    delta: f64,
) -> Result<Vec<(Vec<usize>, f64)>> {
    let states: Vec<Vec<usize>> = crate::grid::cartesian_states(choice_counts);
    // Stabilize the exponentials by factoring out the maximum exponent.
    let mut exponents = Vec::with_capacity(states.len());
    for s in &states {
        let g = eval_cost(&mut cost, s)?;
        debug_assert!(g > 0.0, "eval_cost rejects non-positive objectives");
        exponents.push(delta / g);
    }
    let m = exponents.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = exponents.iter().map(|e| (e - m).exp()).collect();
    let z: f64 = weights.iter().sum();
    // The maximum exponent contributes exp(0) = 1, so z ≥ 1 > 0.
    debug_assert!(z >= 1.0, "normalizer bounded below by the max-exponent term");
    Ok(states.into_iter().zip(weights.into_iter().map(|w| w / z)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Two sites × {0,1,2} with a unique global optimum at (2, 1).
    fn toy_cost(state: &[usize]) -> f64 {
        let table = [[9.0, 7.0, 8.0], [6.0, 5.0, 7.5], [4.0, 1.0, 3.0]];
        table[state[0]][state[1]]
    }

    #[test]
    fn finds_global_optimum_with_high_delta() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let opts = GibbsOptions {
            iterations: 3000,
            schedule: TemperatureSchedule::Constant(200.0),
            patience: None,
            record_trace: false,
        };
        let out = run_gibbs(&[3, 3], &[0, 0], toy_cost, &opts, &mut rng).unwrap();
        assert_eq!(out.best_state, vec![2, 1]);
        assert_eq!(out.best_cost, 1.0);
    }

    #[test]
    fn higher_delta_concentrates_stationary_mass_on_optimum() {
        let lo = gibbs_stationary(&[3, 3], toy_cost, 5.0).unwrap();
        let hi = gibbs_stationary(&[3, 3], toy_cost, 100.0).unwrap();
        let mass = |dist: &[(Vec<usize>, f64)]| {
            dist.iter().find(|(s, _)| s == &vec![2, 1]).map(|(_, p)| *p).unwrap()
        };
        assert!(mass(&hi) > mass(&lo), "mass should grow with δ");
        assert!(mass(&hi) > 0.999, "δ=100 with g*=1 should be nearly deterministic");
    }

    #[test]
    fn stationary_distribution_sums_to_one() {
        let dist = gibbs_stationary(&[3, 3], toy_cost, 10.0).unwrap();
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(dist.len(), 9);
    }

    #[test]
    fn empirical_visits_match_gibbs_law() {
        // Run a long chain at moderate δ and compare visit frequencies of the
        // kept state with the closed-form stationary distribution.
        let delta = 8.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let opts = GibbsOptions {
            iterations: 200_000,
            schedule: TemperatureSchedule::Constant(delta),
            patience: None,
            record_trace: false,
        };
        // Count visits through the cost oracle trace of kept states: easier
        // to re-run the chain manually here.
        let mut counts = std::collections::HashMap::<Vec<usize>, usize>::new();
        let mut kept = vec![0usize, 0usize];
        let mut kept_cost = toy_cost(&kept);
        for _ in 0..opts.iterations {
            let site = rng.gen_range(0..2usize);
            let proposal = rng.gen_range(0..3usize);
            let old = kept[site];
            if proposal != old {
                kept[site] = proposal;
                let c = toy_cost(&kept);
                let u = crate::sigmoid(delta * (1.0 / c - 1.0 / kept_cost));
                if rng.gen::<f64>() < u {
                    kept_cost = c;
                } else {
                    kept[site] = old;
                }
            }
            *counts.entry(kept.clone()).or_default() += 1;
        }
        let dist = gibbs_stationary(&[3, 3], toy_cost, delta).unwrap();
        for (state, p) in dist {
            let emp = *counts.get(&state).unwrap_or(&0) as f64 / opts.iterations as f64;
            assert!(
                (emp - p).abs() < 0.02,
                "state {state:?}: empirical {emp:.4} vs stationary {p:.4}"
            );
        }
    }

    #[test]
    fn patience_stops_early() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let opts = GibbsOptions {
            iterations: 100_000,
            schedule: TemperatureSchedule::Constant(1e9),
            patience: Some(50),
            record_trace: false,
        };
        let out = run_gibbs(&[3, 3], &[0, 0], toy_cost, &opts, &mut rng).unwrap();
        assert!(out.iterations_run < 100_000, "patience should truncate the run");
        assert_eq!(out.best_state, vec![2, 1]);
    }

    #[test]
    fn trace_records_kept_cost() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let opts = GibbsOptions {
            iterations: 100,
            schedule: TemperatureSchedule::Constant(50.0),
            patience: None,
            record_trace: true,
        };
        let out = run_gibbs(&[3, 3], &[0, 0], toy_cost, &opts, &mut rng).unwrap();
        assert_eq!(out.trace.len(), 100);
        assert_eq!(*out.trace.last().unwrap(), out.final_cost);
    }

    /// Table-backed [`CandidateOracle`] over the same toy cost surface.
    struct ToyOracle {
        state: Vec<usize>,
        evals: usize,
    }

    impl CandidateOracle for ToyOracle {
        fn current_cost(&mut self) -> f64 {
            toy_cost(&self.state)
        }
        fn candidate_cost(&mut self, site: usize, level: usize) -> f64 {
            self.evals += 1;
            let old = self.state[site];
            self.state[site] = level;
            let c = toy_cost(&self.state);
            self.state[site] = old;
            c
        }
        fn commit(&mut self, site: usize, level: usize) {
            self.state[site] = level;
        }
    }

    #[test]
    fn batched_driver_replays_the_closure_chain() {
        // Same seed + agreeing oracles ⇒ the batched driver must consume the
        // RNG identically and visit the exact same chain of states.
        for seed in [7u64, 11, 123] {
            let opts = GibbsOptions {
                iterations: 2000,
                schedule: TemperatureSchedule::Constant(25.0),
                patience: None,
                record_trace: true,
            };
            let mut rng_a = rand::rngs::StdRng::seed_from_u64(seed);
            let scalar = run_gibbs(&[3, 3], &[0, 0], toy_cost, &opts, &mut rng_a).unwrap();
            let mut rng_b = rand::rngs::StdRng::seed_from_u64(seed);
            let mut oracle = ToyOracle { state: vec![0, 0], evals: 0 };
            let batched =
                run_gibbs_batched(&[3, 3], &[0, 0], &mut oracle, &opts, &mut rng_b).unwrap();
            assert_eq!(batched.final_state, scalar.final_state);
            assert_eq!(batched.best_state, scalar.best_state);
            assert_eq!(batched.best_cost, scalar.best_cost);
            assert_eq!(batched.accepted, scalar.accepted);
            assert_eq!(batched.trace, scalar.trace);
            assert_eq!(oracle.state, batched.final_state, "commits track the kept state");
            assert!(oracle.evals <= opts.iterations, "one candidate eval per proposal at most");
        }
    }

    #[test]
    fn batched_driver_rejects_non_positive_candidate() {
        struct BadOracle;
        impl CandidateOracle for BadOracle {
            fn current_cost(&mut self) -> f64 {
                1.0
            }
            fn candidate_cost(&mut self, _site: usize, _level: usize) -> f64 {
                -2.0
            }
            fn commit(&mut self, _site: usize, _level: usize) {}
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let opts = GibbsOptions { iterations: 50, ..GibbsOptions::default() };
        let r = run_gibbs_batched(&[4], &[0], &mut BadOracle, &opts, &mut rng);
        assert!(matches!(r, Err(OptError::InvalidInput(_))));
    }

    #[test]
    fn single_choice_sites_never_mutate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let opts = GibbsOptions::default();
        let out = run_gibbs(&[1, 1], &[0, 0], |_| 2.0, &opts, &mut rng).unwrap();
        assert_eq!(out.final_state, vec![0, 0]);
        assert_eq!(out.accepted, 0);
    }

    #[test]
    fn rejects_invalid_initial_state() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let r = run_gibbs(&[2], &[5], |_| 1.0, &GibbsOptions::default(), &mut rng);
        assert!(matches!(r, Err(OptError::InvalidInput(_))));
    }

    #[test]
    fn rejects_non_positive_cost() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let r = run_gibbs(&[2], &[0], |_| 0.0, &GibbsOptions::default(), &mut rng);
        assert!(matches!(r, Err(OptError::InvalidInput(_))));
    }

    #[test]
    fn acceptance_probability_prefers_lower_cost() {
        // u for an improving move must exceed 1/2; for a worsening move be
        // below 1/2 (this is the sign convention of the paper's rule).
        let delta = 10.0;
        let improving = crate::sigmoid(delta * (1.0 / 1.0 - 1.0 / 2.0));
        let worsening = crate::sigmoid(delta * (1.0 / 2.0 - 1.0 / 1.0));
        assert!(improving > 0.5 && worsening < 0.5);
        assert!((improving + worsening - 1.0).abs() < 1e-12);
    }
}
