//! Exact load-distribution solver (the continuous inner problem of **P3**).
//!
//! For a *fixed* speed vector, the COCA per-slot problem (paper eq. 16 / 18)
//! reduces to distributing the total arrival rate `λ` across `n` queue
//! *types*, where type `i` stands for `mᵢ ≥ 1` identical queues:
//!
//! ```text
//! minimize   A·[ P₀ + Σᵢ mᵢ·cᵢ·λᵢ − r ]⁺  +  W·Σᵢ mᵢ·λᵢ/(Xᵢ − λᵢ)
//! subject to Σᵢ mᵢ·λᵢ = λ,   0 ≤ λᵢ ≤ uᵢ  (uᵢ = γ·Xᵢ < Xᵢ)
//! ```
//!
//! `λᵢ` is the load of *each* queue of type `i` — by symmetry and strict
//! convexity of the delay term, identical queues carry identical load at
//! the optimum, so collapsing them loses nothing and turns a 200-group
//! data center into a handful of types (one per server class × speed
//! level). `A = V·w(t) + q(t)` is the electricity weight, `W = V·β` the
//! delay weight, `cᵢ` the marginal power per unit load (paper eq. 1:
//! `p_{i,c}(xᵢ)/xᵢ`), `P₀` the static power of active servers, `r` the
//! on-site renewable supply (paper eq. 3).
//!
//! The objective is convex with a kink where total power crosses `r`.
//! We solve it **exactly** with a three-regime KKT analysis:
//!
//! 1. *Electricity-active*: replace `[·]⁺` by the identity. The KKT
//!    condition `A·cᵢ + W·Xᵢ/(Xᵢ−λᵢ)² = ν` yields a closed-form `λᵢ(ν)`
//!    clipped to `[0, uᵢ]` (multiplicities cancel in the stationarity
//!    condition); bisection on ν enforces `Σ mᵢλᵢ = λ` (classic
//!    water-filling). If the resulting power is ≥ r, this candidate is
//!    globally optimal (the relaxed objective lower-bounds the true one and
//!    they agree there).
//! 2. *Renewable-slack*: set `A = 0` (delay-only water-filling). If the
//!    resulting power is ≤ r, it is globally optimal by the same argument.
//! 3. *Boundary*: otherwise the optimum pins total power to exactly `r`; a
//!    second bisection on an effective energy weight `μ ∈ [0, A]` finds it
//!    (power is non-increasing in μ).
//!
//! Degenerate delay weight `W = 0` turns the problem into a linear program
//! solved greedily by ascending marginal energy cost.

use crate::bisect::{
    bisect_increasing, grow_upper_bracket, illinois_increasing, illinois_seeded, BisectOptions,
};
use crate::{pos, OptError, Result};

/// One M/G/1/PS queue type: `multiplicity` identical queues (servers, or
/// pooled homogeneous server groups) as seen by the solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSpec {
    /// Service capacity `Xᵢ` of **each** queue of this type (requests/s).
    /// Must be positive; fully idle (speed-zero) servers must be filtered
    /// out by the caller.
    pub capacity: f64,
    /// Utilization cap `uᵢ = γ·Xᵢ`, strictly below `capacity` so the delay
    /// cost stays finite (paper constraint 7).
    pub util_cap: f64,
    /// Marginal power per unit of load, `cᵢ = p_{i,c}(xᵢ)/xᵢ` (kW per
    /// req/s), per queue.
    pub energy_slope: f64,
    /// Number of identical queues this type stands for (≥ 1; need not be an
    /// integer, though it always is in practice).
    pub multiplicity: f64,
}

impl QueueSpec {
    /// Single queue (multiplicity 1).
    pub fn single(capacity: f64, util_cap: f64, energy_slope: f64) -> Self {
        Self { capacity, util_cap, energy_slope, multiplicity: 1.0 }
    }

    /// Validates the invariants documented on the fields.
    pub fn validate(&self) -> Result<()> {
        if !(self.capacity.is_finite() && self.capacity > 0.0) {
            return Err(OptError::InvalidInput(format!(
                "capacity must be positive, got {}",
                self.capacity
            )));
        }
        if !(self.util_cap.is_finite() && self.util_cap > 0.0 && self.util_cap < self.capacity) {
            return Err(OptError::InvalidInput(format!(
                "util_cap must lie in (0, capacity={}), got {}",
                self.capacity, self.util_cap
            )));
        }
        if !(self.energy_slope.is_finite() && self.energy_slope >= 0.0) {
            return Err(OptError::InvalidInput(format!(
                "energy_slope must be non-negative, got {}",
                self.energy_slope
            )));
        }
        if !(self.multiplicity.is_finite() && self.multiplicity >= 1.0) {
            return Err(OptError::InvalidInput(format!(
                "multiplicity must be ≥ 1, got {}",
                self.multiplicity
            )));
        }
        Ok(())
    }
}

/// Full problem instance for the load-distribution solver.
#[derive(Debug, Clone)]
pub struct LoadDistProblem<'a> {
    /// Active queue types (speed-zero servers excluded).
    pub queues: &'a [QueueSpec],
    /// Total arrival rate `λ` to distribute across all queues.
    pub total_load: f64,
    /// Electricity weight `A = V·w + q ≥ 0`.
    pub energy_weight: f64,
    /// Delay weight `W = V·β ≥ 0`.
    pub delay_weight: f64,
    /// Static power of all active servers, `P₀ ≥ 0`.
    pub base_power: f64,
    /// On-site renewable supply `r ≥ 0`.
    pub renewable: f64,
}

/// Solution of the load-distribution problem.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct LoadDistSolution {
    /// Per-queue arrival rates `λᵢ` — the load of **each** queue of type `i`
    /// (same order as the input types). Total dispatched load is
    /// `Σ mᵢ·λᵢ`.
    pub lambdas: Vec<f64>,
    /// Objective value `A·[power − r]⁺ + W·Σ mᵢ dᵢ`.
    pub objective: f64,
    /// Total power `P₀ + Σ mᵢ cᵢ λᵢ`.
    pub power: f64,
    /// Total (unweighted) delay cost `Σ mᵢ λᵢ/(Xᵢ − λᵢ)`.
    pub delay: f64,
    /// Water level ν of the winning KKT regime, when the solution came out
    /// of a bisection (`None` on the closed-form paths: zero load,
    /// saturated caps, and the `W = 0` greedy fill). Exposed so warm-started
    /// re-solves can seed their bracket from it and so differential tests
    /// can compare incremental against cold water levels.
    pub water_level: Option<f64>,
}

/// Relative slack used when classifying which side of the `[·]⁺` kink a
/// candidate falls on.
const KINK_TOL: f64 = 1e-9;

impl LoadDistProblem<'_> {
    /// Validates the whole problem instance.
    pub fn validate(&self) -> Result<()> {
        for q in self.queues {
            q.validate()?;
        }
        for (name, v) in [
            ("total_load", self.total_load),
            ("energy_weight", self.energy_weight),
            ("delay_weight", self.delay_weight),
            ("base_power", self.base_power),
            ("renewable", self.renewable),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(OptError::InvalidInput(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// Aggregate utilization-capped capacity `Σ mᵢ uᵢ`.
    pub fn capped_capacity(&self) -> f64 {
        self.queues.iter().map(|q| q.multiplicity * q.util_cap).sum()
    }

    /// Total dispatched load `Σ mᵢ λᵢ` for per-queue loads `lambdas`.
    pub fn dispatched(&self, lambdas: &[f64]) -> f64 {
        self.queues.iter().zip(lambdas).map(|(q, &l)| q.multiplicity * l).sum()
    }

    /// Total power for a given distribution.
    pub fn power(&self, lambdas: &[f64]) -> f64 {
        self.base_power
            + self
                .queues
                .iter()
                .zip(lambdas)
                .map(|(q, &l)| q.multiplicity * q.energy_slope * l)
                .sum::<f64>()
    }

    /// Total unweighted delay cost `Σ mᵢ λᵢ/(Xᵢ − λᵢ)` for a distribution.
    pub fn delay(&self, lambdas: &[f64]) -> f64 {
        self.queues
            .iter()
            .zip(lambdas)
            .map(|(q, &l)| if l <= 0.0 { 0.0 } else { q.multiplicity * l / (q.capacity - l) })
            .sum()
    }

    /// True (kinked) objective value for a distribution.
    pub fn objective(&self, lambdas: &[f64]) -> f64 {
        self.energy_weight * pos(self.power(lambdas) - self.renewable)
            + self.delay_weight * self.delay(lambdas)
    }

    fn solution_from(&self, lambdas: Vec<f64>, water_level: Option<f64>) -> LoadDistSolution {
        let power = self.power(&lambdas);
        let delay = self.delay(&lambdas);
        let objective = self.energy_weight * pos(power - self.renewable) + self.delay_weight * delay;
        LoadDistSolution { lambdas, objective, power, delay, water_level }
    }
}

/// Solves the load-distribution problem exactly. See the module docs for the
/// three-regime strategy.
///
/// ```
/// use coca_opt::waterfill::{solve, LoadDistProblem, QueueSpec};
/// // Two identical queues: by symmetry the load splits evenly.
/// let queues = vec![QueueSpec::single(10.0, 9.0, 0.1); 2];
/// let sol = solve(&LoadDistProblem {
///     queues: &queues,
///     total_load: 8.0,
///     energy_weight: 1.0,
///     delay_weight: 1.0,
///     base_power: 0.0,
///     renewable: 0.0,
/// }).unwrap();
/// assert!((sol.lambdas[0] - 4.0).abs() < 1e-6);
/// assert!((sol.lambdas[1] - 4.0).abs() < 1e-6);
/// ```
pub fn solve(problem: &LoadDistProblem<'_>) -> Result<LoadDistSolution> {
    let sol = solve_unchecked(problem)?;
    // Paper-invariant hooks: constraint (8) conservation and the KKT
    // certificate of the three-regime analysis (free in release builds
    // unless strict mode is on).
    let inv = crate::invariant::global();
    inv.load_conserved(problem.dispatched(&sol.lambdas), problem.total_load);
    inv.kkt(problem, &sol.lambdas);
    Ok(sol)
}

fn solve_unchecked(problem: &LoadDistProblem<'_>) -> Result<LoadDistSolution> {
    problem.validate()?;
    let n = problem.queues.len();
    let lam = problem.total_load;
    // validate() guarantees lam >= 0, so `<=` is the exact-zero test.
    if lam <= 0.0 {
        return Ok(problem.solution_from(vec![0.0; n], None));
    }
    if n == 0 {
        return Err(OptError::Infeasible("positive load but no active queues".into()));
    }
    let cap = problem.capped_capacity();
    if lam > cap * (1.0 + 1e-12) {
        return Err(OptError::Infeasible(format!(
            "total load {lam} exceeds capped capacity {cap}"
        )));
    }
    // Saturated case: every queue pinned at (a uniform fraction of) its cap.
    if lam >= cap * (1.0 - 1e-12) {
        let lambdas = problem.queues.iter().map(|q| q.util_cap * (lam / cap)).collect();
        return Ok(problem.solution_from(lambdas, None));
    }

    // validate() guarantees the weight is non-negative.
    if problem.delay_weight <= 0.0 {
        return solve_linear_greedy(problem);
    }

    // Regime 1: electricity-active (penalty weight = A everywhere).
    let (cand_active, nu_active) = solve_linear_penalty(problem, problem.energy_weight)?;
    let p_active = problem.power(&cand_active);
    let r = problem.renewable;
    if p_active >= r * (1.0 - KINK_TOL) || problem.energy_weight <= 0.0 {
        return Ok(problem.solution_from(cand_active, Some(nu_active)));
    }

    // Regime 2: renewable-slack (penalty weight = 0).
    let (cand_slack, nu_slack) = solve_linear_penalty(problem, 0.0)?;
    let p_slack = problem.power(&cand_slack);
    if p_slack <= r * (1.0 + KINK_TOL) {
        return Ok(problem.solution_from(cand_slack, Some(nu_slack)));
    }

    // Regime 3: optimum sits on the kink (total power = r). Power is
    // non-increasing in the effective energy weight μ; bisect μ ∈ [0, A].
    // The f_tol must be tight: at the kink the objective depends
    // first-order on the stopping power gap (error ≈ A·|power − r|), so a
    // loose tolerance here leaks straight into the objective and breaks the
    // 1e-9 cold-vs-incremental differential guarantee. The interval guard
    // in the search caps the extra iterations near machine precision.
    let opts = BisectOptions { x_tol: 0.0, f_tol: r.abs().max(1.0) * 1e-13, max_iter: 200 };
    let mu = bisect_increasing(
        0.0,
        problem.energy_weight,
        |mu| {
            // increasing in μ: r − power(μ) (power decreases with μ)
            match solve_linear_penalty(problem, mu) {
                Ok((l, _)) => r - problem.power(&l),
                Err(_) => f64::NAN,
            }
        },
        opts,
    )?;
    let (cand_kink, nu_kink) = solve_linear_penalty(problem, mu)?;

    // Defensive: the regime analysis is exact in theory; numerically we pick
    // the best of the three candidates under the true objective.
    let mut best: Option<(Vec<f64>, f64, f64)> = None;
    for (cand, nu) in [(cand_active, nu_active), (cand_slack, nu_slack), (cand_kink, nu_kink)] {
        let obj = problem.objective(&cand);
        if !obj.is_finite() {
            return Err(OptError::NonFinite(format!(
                "candidate objective {obj} in water-filling regime selection"
            )));
        }
        if best.as_ref().is_none_or(|(_, _, b)| obj < *b) {
            best = Some((cand, nu, obj));
        }
    }
    let (best, nu, _) = best.ok_or_else(|| {
        OptError::Infeasible("no water-filling candidate produced".into())
    })?;
    Ok(problem.solution_from(best, Some(nu)))
}

/// Solves the load-distribution problem with an additional **peak-power
/// constraint** `P₀ + Σ mᵢcᵢλᵢ ≤ power_cap` (the paper's Sec. 3.1 remark
/// that "additional constraints, such as peak power … can also be
/// incorporated").
///
/// If the unconstrained optimum already satisfies the cap it is returned
/// unchanged; otherwise the optimum pins total power to the cap, found by
/// bisecting an effective energy weight (power is non-increasing in it).
/// Errors with [`OptError::Infeasible`] when even the power-minimal
/// distribution exceeds the cap.
pub fn solve_with_power_cap(
    problem: &LoadDistProblem<'_>,
    power_cap: f64,
) -> Result<LoadDistSolution> {
    if !(power_cap.is_finite() && power_cap >= 0.0) {
        return Err(OptError::InvalidInput(format!("power_cap must be ≥ 0, got {power_cap}")));
    }
    let unconstrained = solve(problem)?;
    if unconstrained.power <= power_cap * (1.0 + 1e-12) {
        return Ok(unconstrained);
    }
    // Power floor: the power-minimal feasible dispatch is the W = 0 greedy
    // fill by ascending energy slope (computed exactly — the water-filling
    // with an extreme energy weight would lose the slope differences to
    // floating-point cancellation).
    let floor_problem = LoadDistProblem {
        queues: problem.queues,
        total_load: problem.total_load,
        energy_weight: 1.0,
        delay_weight: 0.0,
        base_power: problem.base_power,
        renewable: problem.renewable,
    };
    let floor_sol = solve(&floor_problem)?;
    let floor_power = problem.power(&floor_sol.lambdas);
    if floor_power > power_cap * (1.0 + 1e-9) {
        return Err(OptError::Infeasible(format!(
            "power floor {floor_power} exceeds cap {power_cap}"
        )));
    }
    // validate() guarantees the weight is non-negative.
    if problem.delay_weight <= 0.0 {
        return Ok(problem.solution_from(floor_sol.lambdas, None));
    }
    // Bisect the effective weight so that power == cap. Power is
    // non-increasing in a_eff, so (power_cap − power(a_eff)) is increasing.
    let lo = problem.energy_weight;
    let power_at = |a: f64| -> f64 {
        match solve_linear_penalty(problem, a) {
            Ok((l, _)) => problem.power(&l),
            Err(_) => f64::NAN,
        }
    };
    let hi = match grow_upper_bracket(lo.max(1.0) * 2.0, |a| power_cap - power_at(a), 80) {
        Ok(hi) => hi,
        // The bracket may fail to close when the cap sits within a whisker
        // of the floor (the required multiplier is astronomically large);
        // the θ-blend below still produces the exact boundary point.
        Err(_) => lo.max(1.0) * 2.0_f64.powi(80),
    };
    let opts = BisectOptions { x_tol: 0.0, f_tol: power_cap.max(1.0) * 1e-10, max_iter: 200 };
    let a_star = bisect_increasing(lo, hi, |a| power_cap - power_at(a), opts)?;
    let (lambdas, nu_star) = solve_linear_penalty(problem, a_star)?;
    let sol = problem.solution_from(lambdas, Some(nu_star));
    if sol.power <= power_cap * (1.0 + 1e-9) {
        return Ok(sol);
    }
    // Feasibility repair: power is affine in λ⃗ and the feasible set is
    // convex, so the blend θ·floor + (1−θ)·current with
    // θ = (P_cur − cap)/(P_cur − P_floor) lands exactly on the cap while
    // staying feasible (and near-optimal: the objective is convex, both
    // endpoints bracket the optimum's active face).
    let theta = ((sol.power - power_cap) / (sol.power - floor_power)).clamp(0.0, 1.0);
    let blended: Vec<f64> = sol
        .lambdas
        .iter()
        .zip(&floor_sol.lambdas)
        .map(|(a, b)| (1.0 - theta) * a + theta * b)
        .collect();
    Ok(problem.solution_from(blended, None))
}

// The helpers below sit on the per-proposal delta-update path of the GSD
// engines (via `WarmWaterfill`): they must stay allocation-free.
// audit:hot-path: begin

/// Closed-form per-queue load at water level `nu` for a fixed linear energy
/// weight `a_eff` — the KKT stationarity condition
/// `λᵢ(ν) = clip(Xᵢ − √(W·Xᵢ/(ν − a_eff·cᵢ)), 0, uᵢ)`. Shared verbatim by
/// the cold and the warm-started solver so the two paths are bit-identical
/// at equal water levels.
#[inline]
fn lambda_at(q: &QueueSpec, nu: f64, a_eff: f64, w: f64) -> f64 {
    debug_assert!(q.capacity > 0.0, "validated at entry");
    let gap = nu - a_eff * q.energy_slope;
    if gap <= w / q.capacity {
        // marginal cost at λᵢ=0 already exceeds the water level
        0.0
    } else {
        (q.capacity - (w * q.capacity / gap).sqrt()).clamp(0.0, q.util_cap)
    }
}

/// Aggregate load and its ν-derivative in one pass, writing each row's
/// clipped load (exactly [`lambda_at`]'s value) into `out`. For an interior
/// row, λᵢ = Xᵢ − √(W·Xᵢ/gap) gives dλᵢ/dν = (Xᵢ − λᵢ)/(2·gap); rows
/// clipped at 0 or uᵢ contribute zero slope. The slope reuses the √ already
/// computed for the load, so a Newton evaluation costs the same as a plain
/// one, and the caller can use the rows of the accepting evaluation as the
/// final loads without another pass.
fn total_slope_into(
    queues: &[QueueSpec],
    nu: f64,
    a_eff: f64,
    w: f64,
    out: &mut Vec<f64>,
) -> (f64, f64) {
    out.clear();
    let mut total = 0.0;
    let mut slope = 0.0;
    debug_assert!(queues.iter().all(|q| q.capacity > 0.0), "validated at entry");
    for q in queues {
        let gap = nu - a_eff * q.energy_slope;
        if gap <= w / q.capacity {
            out.push(0.0);
            continue;
        }
        debug_assert!(gap > 0.0, "positive by the branch above");
        // gap > W/Xᵢ implies √(W·Xᵢ/gap) < Xᵢ, so the unclipped load is
        // strictly positive here.
        let root = (w * q.capacity / gap).sqrt();
        let l = q.capacity - root;
        if l >= q.util_cap {
            out.push(q.util_cap);
            total += q.multiplicity * q.util_cap;
        } else {
            out.push(l);
            total += q.multiplicity * l;
            slope += q.multiplicity * root / (2.0 * gap);
        }
    }
    (total, slope)
}

/// Removes the residual bisection error by rescaling the interior
/// coordinates (those strictly between the bounds absorb the slack).
fn rescale_interior(lambdas: &mut [f64], queues: &[QueueSpec], lam: f64) {
    let total: f64 = lambdas.iter().zip(queues).map(|(l, q)| l * q.multiplicity).sum();
    let slack = lam - total;
    if slack.abs() > 0.0 {
        let interior: f64 = lambdas
            .iter()
            .zip(queues)
            .filter(|(l, q)| **l > 0.0 && **l < q.util_cap)
            .map(|(l, q)| *l * q.multiplicity)
            .sum();
        if interior > 0.0 {
            for (l, q) in lambdas.iter_mut().zip(queues) {
                if *l > 0.0 && *l < q.util_cap {
                    *l = (*l + (slack / interior) * *l).clamp(0.0, q.util_cap);
                }
            }
        } else if slack > 0.0 {
            // All active coordinates are pinned; spread the remainder over
            // queues with headroom (rare: only when bisection stopped early).
            distribute_remainder(lambdas, queues, slack);
        }
    }
}

// audit:hot-path: end

/// Lower bisection bracket: the smallest marginal cost at zero load. The
/// aggregate load is exactly zero at this water level, so it always sits
/// weakly below the root.
fn nu_lower_bound(queues: &[QueueSpec], a_eff: f64, w: f64) -> f64 {
    debug_assert!(queues.iter().all(|q| q.capacity > 0.0), "validated at entry");
    queues
        .iter()
        .map(|q| a_eff * q.energy_slope + w / q.capacity)
        .fold(f64::INFINITY, f64::min)
}

/// Shared bisection tolerances for the water-level search (identical for
/// the cold and warm paths — warm starting changes the bracket, never the
/// stopping rule, so the two agree to bisection tolerance).
fn nu_bisect_options(lam: f64) -> BisectOptions {
    BisectOptions { x_tol: 0.0, f_tol: lam * 1e-12, max_iter: 200 }
}

/// Water-filling for the smooth relaxation with a fixed linear energy weight
/// `a_eff` (the `[·]⁺` replaced by identity):
/// `min Σ mᵢ(a_eff·cᵢ·λᵢ + W·λᵢ/(Xᵢ−λᵢ))` s.t. `Σ mᵢλᵢ = λ`, `0 ≤ λᵢ ≤ uᵢ`.
///
/// The per-queue load [`lambda_at`] is non-decreasing in the multiplier ν,
/// so the coupling constraint is met by bisection. Returns the loads and
/// the water level ν they were generated from.
fn solve_linear_penalty(problem: &LoadDistProblem<'_>, a_eff: f64) -> Result<(Vec<f64>, f64)> {
    let w = problem.delay_weight;
    let lam = problem.total_load;
    let queues = problem.queues;

    let total_of = |nu: f64| -> f64 {
        queues.iter().map(|q| q.multiplicity * lambda_at(q, nu, a_eff, w)).sum()
    };

    let nu_lo = nu_lower_bound(queues, a_eff, w);
    // Upper bracket: grow until the water level covers the demand.
    let start = (nu_lo.abs().max(1.0)) * 2.0;
    let nu_hi = grow_upper_bracket(start, |nu| total_of(nu) - lam, 200)?;

    let nu = bisect_increasing(nu_lo, nu_hi, |nu| total_of(nu) - lam, nu_bisect_options(lam))?;
    let mut lambdas: Vec<f64> = queues.iter().map(|q| lambda_at(q, nu, a_eff, w)).collect();
    rescale_interior(&mut lambdas, queues, lam);
    Ok((lambdas, nu))
}

/// Relative half-width of the warm bisection bracket seeded from the
/// previous water level. A single-group flip in a ~200-group fleet moves ν
/// by far less than this; a miss only costs the two sign-check evaluations
/// before the cold fallback. Public so the distributed GSD coordinator
/// applies the identical warm-bracket/fallback rule.
pub const WARM_BRACKET_SPAN: f64 = 0.05;

/// Scalar outcome of a [`WarmWaterfill::solve`]. The per-queue loads stay
/// in the solver's scratch buffer — read them via
/// [`WarmWaterfill::lambdas`] — so the hot loop never allocates a result
/// vector.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct WarmOutcome {
    /// Objective value `A·[power − r]⁺ + W·Σ mᵢ dᵢ`.
    pub objective: f64,
    /// Total power `P₀ + Σ mᵢ cᵢ λᵢ`.
    pub power: f64,
    /// Total (unweighted) delay cost.
    pub delay: f64,
    /// Water level ν of the winning regime (`None` on closed-form paths:
    /// zero load, saturated caps, `W = 0` greedy).
    pub water_level: Option<f64>,
}

/// Warm-started, allocation-free re-solver for *streams* of nearby
/// load-distribution problems — the per-proposal cost oracle of the GSD
/// engines, where each Gibbs proposal flips one group's speed level and the
/// optimal water level drifts only slightly.
///
/// Differences from the cold [`solve`]:
///
/// * **Warm brackets.** The previous water level ν (one slot per penalty
///   regime) and boundary weight μ seed the next bisection bracket
///   (±[`WARM_BRACKET_SPAN`] relative). Because [`bisect_increasing`]
///   clamps to an endpoint when the root lies outside the bracket, a warm
///   bracket is only used after verifying `f(lo) ≤ 0 ≤ f(hi)`; on a miss
///   the solver falls back to the cold bracket
///   (`nu_lower_bound` + [`grow_upper_bracket`]).
/// * **Scratch buffers.** Per-queue loads live in reusable buffers; the
///   steady-state solve performs no heap allocation.
///
/// Both searches run [`illinois_increasing`] with the *same stopping
/// tolerances* as the cold path's bisections, so results agree with
/// [`solve`] to the stopping-tolerance band (≤ 1e-9 relative on the
/// objective — pinned by the differential property test in `coca-core`),
/// and the paper-invariant hooks (load conservation + KKT residual) fire on
/// every warm solve exactly as they do in [`solve`].
#[derive(Debug, Default)]
pub struct WarmWaterfill {
    /// Previous water level of the electricity-active regime (`a_eff = A`).
    nu_active: Option<f64>,
    /// Previous water level of the renewable-slack regime (`a_eff = 0`).
    nu_slack: Option<f64>,
    /// Previous water level seen inside the kink μ-search trials.
    nu_kink: Option<f64>,
    /// Previous boundary weight μ* of the kink regime.
    mu: Option<f64>,
    /// Per-queue loads of the winning candidate after [`Self::solve`].
    lambdas: Vec<f64>,
    /// Candidate buffer for the regime comparison (swapped, never cloned).
    scratch: Vec<f64>,
    /// Water-level function evaluations spent in the most recent solve
    /// (each one is an O(queues) pass; the cold path spends roughly
    /// 50–250 of these per regime, the warm path a handful).
    pub last_evals: u64,
}

impl WarmWaterfill {
    /// Fresh solver with no warm-start state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all warm brackets (e.g. when the slot parameters change so the
    /// previous water level is no longer informative).
    pub fn reset(&mut self) {
        self.nu_active = None;
        self.nu_slack = None;
        self.nu_kink = None;
        self.mu = None;
        self.last_evals = 0;
    }

    /// Per-queue loads of the most recent [`Self::solve`] (same order as
    /// the input queue types).
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Solves the load-distribution problem, reusing warm-start state from
    /// the previous call. Fires the same paper-invariant hooks as the cold
    /// [`solve`].
    ///
    /// # Errors
    /// Same contract as [`solve`]: invalid input, infeasible load, or a
    /// bisection that fails to converge.
    pub fn solve(&mut self, problem: &LoadDistProblem<'_>) -> Result<WarmOutcome> {
        self.last_evals = 0;
        let out = self.solve_inner(problem)?;
        let inv = crate::invariant::global();
        inv.load_conserved(problem.dispatched(&self.lambdas), problem.total_load);
        inv.kkt(problem, &self.lambdas);
        Ok(out)
    }

    /// Scalar summary of the loads currently held in `self.lambdas`.
    fn outcome_of(&self, problem: &LoadDistProblem<'_>, water_level: Option<f64>) -> WarmOutcome {
        self.outcome_with_power(problem, problem.power(&self.lambdas), water_level)
    }

    /// [`Self::outcome_of`] when the caller already computed the facility
    /// power of `self.lambdas` — skips one O(n) pass on the hot path.
    fn outcome_with_power(
        &self,
        problem: &LoadDistProblem<'_>,
        power: f64,
        water_level: Option<f64>,
    ) -> WarmOutcome {
        let delay = problem.delay(&self.lambdas);
        let objective =
            problem.energy_weight * pos(power - problem.renewable) + problem.delay_weight * delay;
        WarmOutcome { objective, power, delay, water_level }
    }

    /// Mirrors [`solve_unchecked`] branch for branch; only the bracket
    /// seeding and the buffer management differ.
    fn solve_inner(&mut self, problem: &LoadDistProblem<'_>) -> Result<WarmOutcome> {
        problem.validate()?;
        let n = problem.queues.len();
        let lam = problem.total_load;
        self.lambdas.clear();
        self.lambdas.resize(n, 0.0);
        // validate() guarantees lam >= 0, so `<=` is the exact-zero test.
        if lam <= 0.0 {
            return Ok(self.outcome_of(problem, None));
        }
        if n == 0 {
            return Err(OptError::Infeasible("positive load but no active queues".into()));
        }
        let cap = problem.capped_capacity();
        if lam > cap * (1.0 + 1e-12) {
            return Err(OptError::Infeasible(format!(
                "total load {lam} exceeds capped capacity {cap}"
            )));
        }
        // Saturated case: every queue pinned at (a fraction of) its cap.
        if lam >= cap * (1.0 - 1e-12) {
            for (l, q) in self.lambdas.iter_mut().zip(problem.queues) {
                *l = q.util_cap * (lam / cap);
            }
            return Ok(self.outcome_of(problem, None));
        }
        // W = 0 degenerates to the greedy LP; it needs a sort permutation,
        // so delegate to the cold path (the per-slot oracle always has
        // W = V·β > 0, so this never runs inside the proposal loop).
        if problem.delay_weight <= 0.0 {
            let sol = solve_linear_greedy(problem)?;
            self.lambdas.copy_from_slice(&sol.lambdas);
            return Ok(WarmOutcome {
                objective: sol.objective,
                power: sol.power,
                delay: sol.delay,
                water_level: None,
            });
        }

        let r = problem.renewable;

        // Regime 1: electricity-active (penalty weight = A everywhere).
        let nu_active = self.penalty_into_scratch(problem, problem.energy_weight, self.nu_active)?;
        self.nu_active = Some(nu_active);
        std::mem::swap(&mut self.lambdas, &mut self.scratch);
        let p_active = problem.power(&self.lambdas);
        if p_active >= r * (1.0 - KINK_TOL) || problem.energy_weight <= 0.0 {
            return Ok(self.outcome_with_power(problem, p_active, Some(nu_active)));
        }
        let mut best_obj = problem.objective(&self.lambdas);
        let mut best_nu = nu_active;

        // Regime 2: renewable-slack (penalty weight = 0).
        let nu_slack = self.penalty_into_scratch(problem, 0.0, self.nu_slack)?;
        self.nu_slack = Some(nu_slack);
        let p_slack = problem.power(&self.scratch);
        if p_slack <= r * (1.0 + KINK_TOL) {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            return Ok(self.outcome_with_power(problem, p_slack, Some(nu_slack)));
        }
        let obj_slack = problem.objective(&self.scratch);
        if obj_slack < best_obj {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            best_obj = obj_slack;
            best_nu = nu_slack;
        }

        // Regime 3: the optimum pins total power to r; bisect the effective
        // energy weight μ ∈ [0, A] exactly as the cold path does, but seed
        // the bracket from the previous μ*.
        let mu = self.bisect_mu(problem)?;
        self.mu = Some(mu);
        let nu_kink = self.penalty_into_scratch(problem, mu, self.nu_kink)?;
        self.nu_kink = Some(nu_kink);
        let obj_kink = problem.objective(&self.scratch);
        if !best_obj.is_finite() || !obj_kink.is_finite() {
            return Err(OptError::NonFinite(format!(
                "candidate objectives {best_obj}/{obj_kink} in warm regime selection"
            )));
        }
        if obj_kink < best_obj {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            best_nu = nu_kink;
        }
        Ok(self.outcome_of(problem, Some(best_nu)))
    }

    /// Kink-regime μ-search: `g(μ) = r − power(μ)` is increasing in μ. The
    /// bracket is seeded from the previous μ* (±[`WARM_BRACKET_SPAN`]·A),
    /// sign-verified, and widened back to the cold `[0, A]` on a miss.
    fn bisect_mu(&mut self, problem: &LoadDistProblem<'_>) -> Result<f64> {
        let r = problem.renewable;
        let a = problem.energy_weight;
        // Same tight f_tol as the cold regime-3 search: kink objectives are
        // first-order sensitive to the stopping power gap.
        let opts = BisectOptions { x_tol: 0.0, f_tol: r.abs().max(1.0) * 1e-13, max_iter: 200 };
        let power_gap = |this: &mut Self, mu: f64| -> f64 {
            match this.penalty_into_scratch(problem, mu, this.nu_kink) {
                Ok(nu) => {
                    this.nu_kink = Some(nu);
                    r - problem.power(&this.scratch)
                }
                Err(_) => f64::NAN,
            }
        };
        // Each power_gap evaluation is a full inner ν-solve, so the warm
        // bracket hands its verification values to the seeded search and a
        // sign miss shrinks to the known-good side of `[0, A]` (the kink
        // regime guarantees g(0) < 0 < g(A)) instead of restarting cold.
        if let Some(prev) = self.mu {
            if prev.is_finite() {
                let half = WARM_BRACKET_SPAN * a;
                let wlo = (prev - half).max(0.0);
                let whi = (prev + half).min(a);
                if wlo < whi {
                    let glo = power_gap(self, wlo);
                    if glo.is_finite() {
                        if glo > 0.0 {
                            let g0 = power_gap(self, 0.0);
                            if g0.is_finite() && g0 <= 0.0 {
                                return illinois_seeded(
                                    0.0,
                                    wlo,
                                    g0,
                                    glo,
                                    |mu| power_gap(self, mu),
                                    opts,
                                );
                            }
                        } else {
                            let ghi = power_gap(self, whi);
                            if ghi.is_finite() && ghi >= 0.0 {
                                return illinois_seeded(
                                    wlo,
                                    whi,
                                    glo,
                                    ghi,
                                    |mu| power_gap(self, mu),
                                    opts,
                                );
                            }
                            if ghi.is_finite() && whi < a {
                                let ga = power_gap(self, a);
                                if ga.is_finite() && ga >= 0.0 {
                                    return illinois_seeded(
                                        whi,
                                        a,
                                        ghi,
                                        ga,
                                        |mu| power_gap(self, mu),
                                        opts,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        illinois_increasing(0.0, a, |mu| power_gap(self, mu), opts)
    }

    /// Warm-bracketed [`solve_linear_penalty`]: same water-level search and
    /// interior rescale, but the loads land in `self.scratch` and the
    /// bracket is seeded from `warm` when the sign check passes.
    fn penalty_into_scratch(
        &mut self,
        problem: &LoadDistProblem<'_>,
        a_eff: f64,
        warm: Option<f64>,
    ) -> Result<f64> {
        let w = problem.delay_weight;
        let lam = problem.total_load;
        let queues = problem.queues;
        let evals = std::cell::Cell::new(0u64);

        // audit:hot-path: begin
        let total_of = |nu: f64| -> f64 {
            evals.set(evals.get() + 1);
            queues.iter().map(|q| q.multiplicity * lambda_at(q, nu, a_eff, w)).sum()
        };
        let nu_lo = nu_lower_bound(queues, a_eff, w);
        let opts = nu_bisect_options(lam);
        // Newton from the previous slot's water level: `g` is piecewise
        // concave and increasing, so from a warm start the iteration
        // typically lands within `f_tol` in 2–3 evaluations — the stopping
        // rule is the same `|g| ≤ f_tol` as the bracketed search, so the
        // answer agrees with it (and with cold bisection) to tolerance.
        // Each evaluation writes the row loads into `self.scratch`, so the
        // accepting iteration IS the final fill — no extra O(n) pass.
        // Activation kinks can make Newton oscillate; any sign of trouble
        // (flat slope, leaving the domain, iteration cap) falls through to
        // the sign-safe bracketed search below.
        if let Some(prev) = warm {
            if prev.is_finite() && prev > nu_lo {
                let mut nu = prev;
                for _ in 0..8 {
                    evals.set(evals.get() + 1);
                    let (total, slope) =
                        total_slope_into(queues, nu, a_eff, w, &mut self.scratch);
                    let g = total - lam;
                    if !g.is_finite() {
                        break;
                    }
                    if g.abs() <= opts.f_tol {
                        rescale_interior(&mut self.scratch, queues, lam);
                        self.last_evals += evals.get();
                        return Ok(nu);
                    }
                    if slope.is_nan() || slope <= 0.0 {
                        break;
                    }
                    let next = nu - g / slope;
                    if !next.is_finite() || next <= nu_lo {
                        break;
                    }
                    nu = next;
                }
            }
        }
        // Warm bracket `prev·(1 ± span)`, sign-verified before use
        // (`bisect_increasing`/Illinois clamp to an endpoint on a violated
        // bracket, so an unverified bracket would silently return a wrong
        // level). Every verification evaluation is handed to
        // [`illinois_seeded`] instead of being recomputed, and a miss keeps
        // the sign information: a root below the warm bracket is bracketed
        // by `[nu_lo, lo]` for free (aggregate load is exactly zero at
        // `nu_lo`, so `f(nu_lo) = −λ`), a root above it grows upward from
        // `hi` instead of restarting cold.
        let nu = 'search: {
            if let Some(prev) = warm {
                // The root always sits above nu_lo (aggregate load is zero
                // there), so a previous level at or below it cannot bracket.
                if prev.is_finite() && prev > nu_lo {
                    let lo = (prev * (1.0 - WARM_BRACKET_SPAN)).max(nu_lo);
                    let hi = prev * (1.0 + WARM_BRACKET_SPAN);
                    let glo = total_of(lo) - lam;
                    if !glo.is_finite() {
                        // Terminal error path, never taken per-proposal. audit:allow(hot-alloc)
                        return Err(OptError::NonFinite(format!("f({lo}) = {glo}")));
                    }
                    if glo > 0.0 {
                        break 'search illinois_seeded(
                            nu_lo,
                            lo,
                            -lam,
                            glo,
                            |nu| total_of(nu) - lam,
                            opts,
                        )?;
                    }
                    let ghi = total_of(hi) - lam;
                    if !ghi.is_finite() {
                        // Terminal error path, never taken per-proposal. audit:allow(hot-alloc)
                        return Err(OptError::NonFinite(format!("f({hi}) = {ghi}")));
                    }
                    if ghi >= 0.0 {
                        break 'search illinois_seeded(
                            lo,
                            hi,
                            glo,
                            ghi,
                            |nu| total_of(nu) - lam,
                            opts,
                        )?;
                    }
                    let nu_hi = grow_upper_bracket(hi * 2.0, |nu| total_of(nu) - lam, 200)?;
                    break 'search illinois_seeded(
                        hi,
                        nu_hi,
                        ghi,
                        total_of(nu_hi) - lam,
                        |nu| total_of(nu) - lam,
                        opts,
                    )?;
                }
            }
            // Cold path (no usable previous level): grow the upper bracket
            // by doubling, exactly like `solve_linear_penalty`.
            let start = (nu_lo.abs().max(1.0)) * 2.0;
            let nu_hi = grow_upper_bracket(start, |nu| total_of(nu) - lam, 200)?;
            illinois_increasing(nu_lo, nu_hi, |nu| total_of(nu) - lam, opts)?
        };

        self.scratch.clear();
        for q in queues {
            self.scratch.push(lambda_at(q, nu, a_eff, w));
        }
        rescale_interior(&mut self.scratch, queues, lam);
        // audit:hot-path: end
        self.last_evals += evals.get();
        Ok(nu)
    }
}

// ---------------------------------------------------------------------------
// Struct-of-arrays batched kernel (ROADMAP item 3)
// ---------------------------------------------------------------------------

/// Fixed lane width of the chunked SoA kernels: rows are processed in
/// `[f64; LANE_WIDTH]` blocks with a scalar tail. Eight doubles span one
/// AVX-512 register (two AVX2 / four NEON), which is the portable-SIMD
/// sweet spot on stable Rust — wide enough that LLVM autovectorizes the
/// branch-free row math, narrow enough that the tail stays cheap for the
/// collapsed type multisets (≤ 16 rows at paper scale).
pub const LANE_WIDTH: usize = 8;

/// Struct-of-arrays twin of a `[QueueSpec]` slice, plus a static-power lane:
/// each queue type is a row across five parallel `f64` lanes
/// (capacity / util_cap / energy_slope / static_power / multiplicity).
///
/// Two properties distinguish it from the AoS `QueueSpec` layout:
///
/// * **Vector shape.** The water-filling residual `g(ν)` touches one lane
///   per operand, so the chunked kernels below stream contiguous doubles —
///   the autovectorizable form the scalar `lambda_at` loop is not.
/// * **Retractable rows.** `multiplicity` may be **zero**: a row whose type
///   is currently unused stays in place (keeping row indices stable across
///   Gibbs flips, so a candidate evaluation is a ±1.0 multiplicity delta,
///   not a compaction) and is arithmetically inert — every aggregate weighs
///   it by `m = 0`.
///
/// Rows are validated once at construction ([`Self::validate`]); the solver
/// does not re-validate per solve. Callers mutating lanes afterwards must
/// preserve the row invariants.
#[derive(Debug, Default, Clone)]
pub struct QueueBank {
    /// Service capacity `Xᵢ` lane (per queue of the type).
    capacity: Vec<f64>,
    /// Utilization cap `uᵢ = γ·Xᵢ` lane.
    util_cap: Vec<f64>,
    /// Marginal power `cᵢ` lane (kW per req/s, per queue).
    energy_slope: Vec<f64>,
    /// Static power lane (kW per queue of the type, PUE-scaled).
    static_power: Vec<f64>,
    /// Queue count lane `mᵢ ≥ 0` (0 = retracted row).
    multiplicity: Vec<f64>,
}

impl QueueBank {
    /// Empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows (including retracted `m = 0` rows).
    pub fn len(&self) -> usize {
        self.capacity.len()
    }

    /// True when the bank holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.capacity.is_empty()
    }

    /// Removes all rows (lane capacity is retained).
    pub fn clear(&mut self) {
        self.capacity.clear();
        self.util_cap.clear();
        self.energy_slope.clear();
        self.static_power.clear();
        self.multiplicity.clear();
    }

    /// Appends one queue-type row; returns its row index.
    pub fn push_type(
        &mut self,
        capacity: f64,
        util_cap: f64,
        energy_slope: f64,
        static_power: f64,
        multiplicity: f64,
    ) -> usize {
        self.capacity.push(capacity);
        self.util_cap.push(util_cap);
        self.energy_slope.push(energy_slope);
        self.static_power.push(static_power);
        self.multiplicity.push(multiplicity);
        self.capacity.len() - 1
    }

    /// Capacity `Xᵢ` of row `row`.
    pub fn capacity_of(&self, row: usize) -> f64 {
        self.capacity[row]
    }

    /// Utilization cap `uᵢ` of row `row`.
    pub fn util_cap_of(&self, row: usize) -> f64 {
        self.util_cap[row]
    }

    /// Energy slope `cᵢ` of row `row`.
    pub fn energy_slope_of(&self, row: usize) -> f64 {
        self.energy_slope[row]
    }

    /// Static power of row `row` (per queue).
    pub fn static_power_of(&self, row: usize) -> f64 {
        self.static_power[row]
    }

    /// Current multiplicity `mᵢ` of row `row`.
    pub fn multiplicity_of(&self, row: usize) -> f64 {
        self.multiplicity[row]
    }

    /// Sets row `row`'s multiplicity. Integer-valued deltas are exact in
    /// `f64`, so repeated `±1.0` adjustments never drift.
    pub fn set_multiplicity(&mut self, row: usize, m: f64) {
        self.multiplicity[row] = m;
    }

    /// Adds `dm` to row `row`'s multiplicity (the Gibbs-flip delta path).
    pub fn add_multiplicity(&mut self, row: usize, dm: f64) {
        self.multiplicity[row] += dm;
    }

    /// Aggregate `(Σ mᵢ·uᵢ, Σ mᵢ·staticᵢ)` — the capped capacity and base
    /// power of the current multiset. O(rows); callers on the candidate
    /// path maintain these incrementally via per-row deltas instead.
    pub fn aggregates(&self) -> (f64, f64) {
        let mut cap = 0.0;
        let mut base = 0.0;
        for ((&m, &u), &s) in self.multiplicity.iter().zip(&self.util_cap).zip(&self.static_power) {
            cap += m * u;
            base += m * s;
        }
        (cap, base)
    }

    /// Validates every row's invariants (same rules as
    /// [`QueueSpec::validate`], except `multiplicity ≥ 0` — zero marks a
    /// retracted row). Run once at construction; the batched solver relies
    /// on it instead of re-validating per solve.
    pub fn validate(&self) -> Result<()> {
        for row in 0..self.len() {
            let spec = QueueSpec {
                capacity: self.capacity[row],
                util_cap: self.util_cap[row],
                energy_slope: self.energy_slope[row],
                multiplicity: 1.0,
            };
            spec.validate()?;
            let (s, m) = (self.static_power[row], self.multiplicity[row]);
            if !(s.is_finite() && s >= 0.0) {
                return Err(OptError::InvalidInput(format!(
                    "static_power must be non-negative, got {s} at row {row}"
                )));
            }
            if !(m.is_finite() && m >= 0.0) {
                return Err(OptError::InvalidInput(format!(
                    "multiplicity must be ≥ 0, got {m} at row {row}"
                )));
            }
        }
        Ok(())
    }
}

/// Load-distribution problem over a [`QueueBank`] — the SoA counterpart of
/// [`LoadDistProblem`]. `base_power` is passed in (the incremental engine
/// maintains it by delta) rather than derived from the static-power lane,
/// mirroring how the AoS problem carries `P₀` separately.
#[derive(Debug, Clone, Copy)]
pub struct BankProblem<'a> {
    /// Queue-type rows (retracted `m = 0` rows allowed and inert).
    pub bank: &'a QueueBank,
    /// Total arrival rate `λ` to distribute.
    pub total_load: f64,
    /// Electricity weight `A = V·w + q ≥ 0`.
    pub energy_weight: f64,
    /// Delay weight `W = V·β ≥ 0`.
    pub delay_weight: f64,
    /// Static power of all active servers, `P₀ ≥ 0`.
    pub base_power: f64,
    /// Aggregate utilization-capped capacity `Σ mᵢ·uᵢ` of the rows as
    /// currently set. Caller-maintained by delta, exactly like
    /// `base_power` — the solver trusts it for the feasibility and
    /// saturation tests instead of re-walking the lanes on every solve
    /// (the incremental engine prices hundreds of candidates per batch
    /// against one bank). [`QueueBank::aggregates`] is the ground-truth
    /// recompute; `validate` debug-asserts agreement.
    pub capped_capacity: f64,
    /// On-site renewable supply `r ≥ 0`.
    pub renewable: f64,
}

impl BankProblem<'_> {
    /// Validates the scalar fields. Bank rows are validated once at
    /// construction via [`QueueBank::validate`] (debug-asserted here), not
    /// per solve — that is the SoA path's contract.
    pub fn validate(&self) -> Result<()> {
        debug_assert!(self.bank.validate().is_ok(), "bank rows must be validated at build");
        debug_assert!(
            {
                let lanes = self.bank.aggregates().0;
                (self.capped_capacity - lanes).abs() <= 1e-6 * lanes.abs().max(1.0)
            },
            "capped_capacity {} out of sync with the bank lanes ({})",
            self.capped_capacity,
            self.bank.aggregates().0
        );
        for (name, v) in [
            ("total_load", self.total_load),
            ("energy_weight", self.energy_weight),
            ("delay_weight", self.delay_weight),
            ("base_power", self.base_power),
            ("capped_capacity", self.capped_capacity),
            ("renewable", self.renewable),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(OptError::InvalidInput(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// Total dispatched load `Σ mᵢ·λᵢ`.
    pub fn dispatched(&self, lambdas: &[f64]) -> f64 {
        bank_dispatched(self.bank, lambdas)
    }

    /// Total power `P₀ + Σ mᵢ·cᵢ·λᵢ`.
    pub fn power(&self, lambdas: &[f64]) -> f64 {
        bank_power(self.bank, self.base_power, lambdas)
    }

    /// Total unweighted delay cost `Σ mᵢ·λᵢ/(Xᵢ − λᵢ)`.
    pub fn delay(&self, lambdas: &[f64]) -> f64 {
        bank_delay(self.bank, lambdas)
    }

    /// True (kinked) objective value for a distribution.
    pub fn objective(&self, lambdas: &[f64]) -> f64 {
        self.energy_weight * pos(self.power(lambdas) - self.renewable)
            + self.delay_weight * self.delay(lambdas)
    }
}

// The bank kernels below are the data-parallel counterparts of `lambda_at`,
// `total_slope_into` and `rescale_interior`: every per-row branch is turned
// into a select so the `[f64; LANE_WIDTH]` chunks autovectorize, and all
// results land in caller-provided slices. They run once per water-level
// evaluation inside the batched Gibbs candidate sweep and must stay
// allocation-free.
// audit:hot-path: begin

/// Branch-free twin of [`lambda_at`]: identical arithmetic, with the
/// activation branch expressed as a select (`safe_gap` keeps the inactive
/// lanes' division well-defined) so lanes stay independent.
#[inline(always)]
fn bank_row_load(x: f64, u: f64, c: f64, nu: f64, a_eff: f64, wox: f64, wx: f64) -> f64 {
    let gap = nu - a_eff * c;
    // The activity branch stays a branch on purpose: which rows are active
    // is stable across the Newton/bisection evaluations of one solve, so
    // the predictor is essentially free, while a branch-free mask form
    // costs extra multiplies per lane (measured slower — the chunked
    // callers end up scalar either way under the no-unsafe constraint).
    if gap > wox {
        debug_assert!(gap > 0.0, "active rows have gap > W/x > 0");
        (x - (wx / gap).sqrt()).clamp(0.0, u)
    } else {
        0.0
    }
}

/// Row load **and** ν-slope, mirroring the per-row math of
/// [`total_slope_into`] (the unclipped load is written when interior, the
/// cap when saturated, zero when inactive; only interior rows carry slope).
///
/// This is the Newton workhorse — it runs once per row per water-level
/// evaluation — so the gap division is hoisted into a single reciprocal
/// shared by the load and the slope (one divide per row instead of three).
/// The reciprocal form differs from the divide form by ≲ 1 ulp, far inside
/// every stopping tolerance and the ≤ 1e-9 differential band.
#[inline(always)]
fn bank_row_load_slope(x: f64, u: f64, c: f64, nu: f64, a_eff: f64, wox: f64, wx: f64) -> (f64, f64) {
    let gap = nu - a_eff * c;
    // Same stable-branch rationale as `bank_row_load` (see there).
    if gap <= wox {
        return (0.0, 0.0);
    }
    debug_assert!(gap > 0.0, "active rows have gap > W/x > 0");
    let inv_gap = 1.0 / gap;
    let root = (wx * inv_gap).sqrt();
    let raw = x - root;
    if raw < u { (raw, 0.5 * root * inv_gap) } else { (u, 0.0) }
}

/// Chunked aggregate load `Σ mᵢ·λᵢ(ν)` — the water-filling residual's
/// workhorse, evaluating every row in `[f64; LANE_WIDTH]` blocks with a
/// scalar tail. Lane accumulators change the summation *order* relative to
/// the scalar path, so totals agree to rounding (≪ the 1e-12·λ stopping
/// tolerance), not bit-for-bit.
fn bank_total_at(bank: &QueueBank, nu: f64, a_eff: f64, wox: &[f64], wx: &[f64]) -> f64 {
    let n = bank.capacity.len();
    let xs = &bank.capacity[..n];
    let us = &bank.util_cap[..n];
    let cs = &bank.energy_slope[..n];
    let ms = &bank.multiplicity[..n];
    let (wox, wx) = (&wox[..n], &wx[..n]);
    let mut acc = [0.0_f64; LANE_WIDTH];
    let split = n - n % LANE_WIDTH;
    for base in (0..split).step_by(LANE_WIDTH) {
        for (j, a) in acc.iter_mut().enumerate() {
            let k = base + j;
            *a += ms[k] * bank_row_load(xs[k], us[k], cs[k], nu, a_eff, wox[k], wx[k]);
        }
    }
    let mut total = acc.iter().sum::<f64>();
    for k in split..n {
        total += ms[k] * bank_row_load(xs[k], us[k], cs[k], nu, a_eff, wox[k], wx[k]);
    }
    total
}

/// Chunked aggregate load and ν-slope in one pass, writing each row's load
/// into `out` (the batched counterpart of [`total_slope_into`]; the
/// accepting Newton evaluation doubles as the final fill).
fn bank_total_slope_into(
    bank: &QueueBank,
    nu: f64,
    a_eff: f64,
    wox: &[f64],
    wx: &[f64],
    out: &mut [f64],
) -> (f64, f64) {
    let n = bank.capacity.len();
    let xs = &bank.capacity[..n];
    let us = &bank.util_cap[..n];
    let cs = &bank.energy_slope[..n];
    let ms = &bank.multiplicity[..n];
    let (wox, wx) = (&wox[..n], &wx[..n]);
    // Re-slicing `out` (not just asserting) removes the bounds-check panic
    // path from the chunk loop, which would otherwise block vectorization.
    let out = &mut out[..n];
    let mut acc_t = [0.0_f64; LANE_WIDTH];
    let mut acc_s = [0.0_f64; LANE_WIDTH];
    let split = n - n % LANE_WIDTH;
    // Per-lane accumulators fix the summation tree (stable totals however
    // the compiler unrolls the chunk), and the re-sliced inputs keep the
    // body free of bounds checks.
    for base in (0..split).step_by(LANE_WIDTH) {
        for (j, (t, s)) in acc_t.iter_mut().zip(acc_s.iter_mut()).enumerate() {
            let k = base + j;
            let (l, ds) = bank_row_load_slope(xs[k], us[k], cs[k], nu, a_eff, wox[k], wx[k]);
            out[k] = l;
            *t += ms[k] * l;
            *s += ms[k] * ds;
        }
    }
    let mut total = acc_t.iter().sum::<f64>();
    let mut slope = acc_s.iter().sum::<f64>();
    for k in split..n {
        let (l, ds) = bank_row_load_slope(xs[k], us[k], cs[k], nu, a_eff, wox[k], wx[k]);
        out[k] = l;
        total += ms[k] * l;
        slope += ms[k] * ds;
    }
    (total, slope)
}

/// Writes every row's clipped load at water level `nu` into `out` (the
/// batched [`lambda_at`] fill pass).
fn bank_fill_into(bank: &QueueBank, nu: f64, a_eff: f64, wox: &[f64], wx: &[f64], out: &mut [f64]) {
    let n = bank.capacity.len();
    debug_assert_eq!(out.len(), n, "out must be pre-sized to the bank");
    for (((((o, &x), &u), &c), &ox), &px) in out
        .iter_mut()
        .zip(&bank.capacity)
        .zip(&bank.util_cap)
        .zip(&bank.energy_slope)
        .zip(wox)
        .zip(wx)
    {
        *o = bank_row_load(x, u, c, nu, a_eff, ox, px);
    }
}

/// Total dispatched load `Σ mᵢ·λᵢ`.
fn bank_dispatched(bank: &QueueBank, lambdas: &[f64]) -> f64 {
    lambdas.iter().zip(&bank.multiplicity).map(|(&l, &m)| m * l).sum()
}

/// Total power `base + Σ mᵢ·cᵢ·λᵢ`.
fn bank_power(bank: &QueueBank, base_power: f64, lambdas: &[f64]) -> f64 {
    let mut p = base_power;
    for ((&l, &m), &c) in lambdas.iter().zip(&bank.multiplicity).zip(&bank.energy_slope) {
        p += m * c * l;
    }
    p
}

/// [`bank_power`] and [`bank_delay`] in one pass — the regime selection
/// always consumes both (the kink test needs the power, the objective the
/// delay), so the separate walks would just re-stream the same lanes.
fn bank_power_delay(bank: &QueueBank, base_power: f64, lambdas: &[f64]) -> (f64, f64) {
    let mut p = base_power;
    let mut d = 0.0;
    for (((&l, &m), &c), &x) in lambdas
        .iter()
        .zip(&bank.multiplicity)
        .zip(&bank.energy_slope)
        .zip(&bank.capacity)
    {
        p += m * c * l;
        d += if l > 0.0 { m * l / (x - l) } else { 0.0 };
    }
    (p, d)
}

/// Total unweighted delay cost `Σ mᵢ·λᵢ/(Xᵢ − λᵢ)` (zero-load rows and
/// retracted rows contribute nothing).
fn bank_delay(bank: &QueueBank, lambdas: &[f64]) -> f64 {
    let mut d = 0.0;
    for ((&l, &m), &x) in lambdas.iter().zip(&bank.multiplicity).zip(&bank.capacity) {
        d += if l > 0.0 { m * l / (x - l) } else { 0.0 };
    }
    d
}

/// Lower bisection bracket over the *live* rows (retracted `m = 0` rows
/// must not pull the bracket — their marginal cost is meaningless).
fn bank_nu_lower_bound(bank: &QueueBank, a_eff: f64, wox: &[f64]) -> f64 {
    let mut lo = f64::INFINITY;
    for ((&m, &c), &ox) in bank.multiplicity.iter().zip(&bank.energy_slope).zip(wox) {
        let t = if m > 0.0 { a_eff * c + ox } else { f64::INFINITY };
        lo = lo.min(t);
    }
    lo
}

/// Batched [`rescale_interior`]: interior rows absorb the bisection slack
/// in proportion to their load. Retracted rows carry zero weight, so they
/// neither contribute to nor consume the slack.
fn bank_rescale_interior(lambdas: &mut [f64], bank: &QueueBank, lam: f64) {
    // One fused pass for the dispatched total and the interior mass — the
    // slack test needs both, and separate walks would re-stream the lanes.
    let mut total = 0.0;
    let mut interior = 0.0;
    for ((&l, &u), &m) in lambdas.iter().zip(&bank.util_cap).zip(&bank.multiplicity) {
        total += m * l;
        if l > 0.0 && l < u {
            interior += m * l;
        }
    }
    let slack = lam - total;
    if slack.abs() > 0.0 {
        if interior > 0.0 {
            for (l, &u) in lambdas.iter_mut().zip(&bank.util_cap) {
                if *l > 0.0 && *l < u {
                    *l = (*l + (slack / interior) * *l).clamp(0.0, u);
                }
            }
        } else if slack > 0.0 {
            bank_distribute_remainder(lambdas, bank, slack);
        }
    }
}

/// Batched [`distribute_remainder`] (retracted rows skipped: they have no
/// headroom and dividing the zero take by `m = 0` would poison the row).
fn bank_distribute_remainder(lambdas: &mut [f64], bank: &QueueBank, mut slack: f64) {
    for ((l, &u), &m) in lambdas.iter_mut().zip(&bank.util_cap).zip(&bank.multiplicity) {
        if slack <= 0.0 {
            break;
        }
        if m <= 0.0 {
            continue;
        }
        let headroom = (u - *l) * m;
        let take = headroom.min(slack);
        debug_assert!(m > 0.0, "retracted rows are skipped above");
        *l += take / m;
        slack -= take;
    }
}

// audit:hot-path: end

/// Warm-started batched solver over a [`QueueBank`] — the SoA counterpart
/// of [`WarmWaterfill`], and the cost oracle of the batched Gibbs candidate
/// sweep. Same three-regime analysis, same warm-bracket/Newton seeding,
/// same stopping tolerances ([`nu_bisect_options`], the `1e-13` kink
/// `f_tol`, [`KINK_TOL`], [`WARM_BRACKET_SPAN`]), so its objectives agree
/// with the cold [`solve`] to the identical ≤ 1e-9 band — pinned by the
/// batched differential property test in `coca-core`. Only the inner
/// residual evaluation differs: one chunked pass over the bank lanes
/// instead of a per-`QueueSpec` branchy loop.
///
/// Invariant hooks: load conservation fires on every solve, exactly like
/// the scalar paths. The O(n) KKT certificate is recomputed in debug builds
/// and in strict mode (`COCA_STRICT_INVARIANTS=1`) via a compact AoS view
/// of the live rows; plain release builds skip it — that re-derivation was
/// a measurable share of the scalar per-solve cost and is covered by the
/// differential tests.
#[derive(Debug, Default)]
pub struct SoaWaterfill {
    /// Previous water level of the electricity-active regime (`a_eff = A`).
    nu_active: Option<f64>,
    /// Previous water level of the renewable-slack regime (`a_eff = 0`).
    nu_slack: Option<f64>,
    /// Previous water level seen inside the kink μ-search trials.
    nu_kink: Option<f64>,
    /// Previous boundary weight μ* of the kink regime.
    mu: Option<f64>,
    /// Per-row loads of the winning candidate after [`Self::solve`].
    lambdas: Vec<f64>,
    /// Candidate buffer for the regime comparison (swapped, never cloned).
    scratch: Vec<f64>,
    /// Compact AoS mirror of the live rows for the debug/strict KKT
    /// certificate and the cold `W = 0` greedy delegation.
    aos_specs: Vec<QueueSpec>,
    /// Loads matching `aos_specs` row-for-row.
    aos_lambdas: Vec<f64>,
    /// Per-row activation thresholds `W/xᵢ`, derived once per (delay
    /// weight, capacity-lane) pair and reused by every residual evaluation
    /// — the per-row divides were a measurable share of the Newton pass.
    wox: Vec<f64>,
    /// Per-row sqrt numerators `W·xᵢ` (same caching rule as `wox`).
    wx: Vec<f64>,
    /// Capacity lanes the aux vectors were built from; compared each solve
    /// so a solver moved to a different bank rebuilds instead of reusing
    /// stale thresholds.
    aux_cap: Vec<f64>,
    /// Delay weight the aux vectors were built for.
    aux_w: f64,
    /// Water-level function evaluations spent in the most recent solve.
    pub last_evals: u64,
}

impl SoaWaterfill {
    /// Fresh solver with no warm-start state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all warm brackets (e.g. when the slot parameters change so the
    /// previous water level is no longer informative).
    pub fn reset(&mut self) {
        self.nu_active = None;
        self.nu_slack = None;
        self.nu_kink = None;
        self.mu = None;
        self.last_evals = 0;
    }

    /// Per-row loads of the most recent [`Self::solve`] (same order as the
    /// bank rows; retracted rows may hold phantom values — weigh by the
    /// multiplicity lane when aggregating).
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Solves the bank load-distribution problem, reusing warm-start state
    /// from the previous call.
    ///
    /// # Errors
    /// Same contract as [`solve`]: invalid scalars, infeasible load, or a
    /// bisection that fails to converge.
    pub fn solve(&mut self, problem: &BankProblem<'_>) -> Result<WarmOutcome> {
        self.last_evals = 0;
        let out = self.solve_inner(problem)?;
        let inv = crate::invariant::global();
        inv.load_conserved(bank_dispatched(problem.bank, &self.lambdas), problem.total_load);
        if cfg!(debug_assertions) || inv.is_strict() {
            self.check_kkt(problem);
        }
        Ok(out)
    }

    /// Recomputes the KKT certificate on a compact AoS view of the live
    /// rows (debug/strict only — see the type docs).
    #[cold]
    fn check_kkt(&mut self, problem: &BankProblem<'_>) {
        self.compact_live_rows(problem.bank);
        let view = LoadDistProblem {
            queues: &self.aos_specs,
            total_load: problem.total_load,
            energy_weight: problem.energy_weight,
            delay_weight: problem.delay_weight,
            base_power: problem.base_power,
            renewable: problem.renewable,
        };
        crate::invariant::global().kkt(&view, &self.aos_lambdas);
    }

    /// Rebuilds `aos_specs`/`aos_lambdas` from the bank's `m > 0` rows.
    fn compact_live_rows(&mut self, bank: &QueueBank) {
        self.aos_specs.clear();
        self.aos_lambdas.clear();
        for row in 0..bank.len() {
            let m = bank.multiplicity[row];
            if m > 0.0 {
                self.aos_specs.push(QueueSpec {
                    capacity: bank.capacity[row],
                    util_cap: bank.util_cap[row],
                    energy_slope: bank.energy_slope[row],
                    multiplicity: m,
                });
                self.aos_lambdas.push(self.lambdas[row]);
            }
        }
    }

    /// Scalar summary of the loads currently held in `self.lambdas` (one
    /// fused power+delay pass).
    fn outcome_of(&self, problem: &BankProblem<'_>, water_level: Option<f64>) -> WarmOutcome {
        let (power, delay) = bank_power_delay(problem.bank, problem.base_power, &self.lambdas);
        Self::outcome_parts(problem, power, delay, water_level)
    }

    /// Outcome assembly when the caller already holds the power and delay
    /// totals (the regime selection computes both along the way).
    fn outcome_parts(
        problem: &BankProblem<'_>,
        power: f64,
        delay: f64,
        water_level: Option<f64>,
    ) -> WarmOutcome {
        let objective = problem.energy_weight * pos(power - problem.renewable)
            + problem.delay_weight * delay;
        WarmOutcome { objective, power, delay, water_level }
    }

    /// Mirrors [`WarmWaterfill::solve_inner`] branch for branch on the bank
    /// lanes.
    fn solve_inner(&mut self, problem: &BankProblem<'_>) -> Result<WarmOutcome> {
        problem.validate()?;
        let bank = problem.bank;
        let n = bank.len();
        let lam = problem.total_load;
        // Both buffers are fully overwritten by every path below that
        // reads them, so resizing (a memset) only happens when the bank
        // grows or shrinks — not once per candidate solve.
        if self.lambdas.len() != n {
            self.lambdas.resize(n, 0.0);
        }
        if self.scratch.len() != n {
            self.scratch.resize(n, 0.0);
        }
        // validate() guarantees lam >= 0, so `<=` is the exact-zero test.
        if lam <= 0.0 {
            self.lambdas.fill(0.0);
            return Ok(Self::outcome_parts(problem, problem.base_power, 0.0, None));
        }
        if n == 0 {
            return Err(OptError::Infeasible("positive load but no active queues".into()));
        }
        let cap = problem.capped_capacity;
        if lam > cap * (1.0 + 1e-12) {
            return Err(OptError::Infeasible(format!(
                "total load {lam} exceeds capped capacity {cap}"
            )));
        }
        // Saturated case: every row pinned at (a fraction of) its cap.
        if lam >= cap * (1.0 - 1e-12) {
            for (l, &u) in self.lambdas.iter_mut().zip(&bank.util_cap) {
                *l = u * (lam / cap);
            }
            return Ok(self.outcome_of(problem, None));
        }
        // W = 0 degenerates to the greedy LP; it needs a sort permutation,
        // so delegate to the cold path over a compact AoS view (the per-slot
        // oracle always has W = V·β > 0, so this never runs per candidate).
        if problem.delay_weight <= 0.0 {
            return self.solve_greedy_cold(problem);
        }
        self.ensure_aux(bank, problem.delay_weight);

        let r = problem.renewable;

        // Regime 1: electricity-active (penalty weight = A everywhere).
        let nu_active =
            self.penalty_into_scratch(problem, problem.energy_weight, self.nu_active)?;
        self.nu_active = Some(nu_active);
        std::mem::swap(&mut self.lambdas, &mut self.scratch);
        let (p_active, d_active) = bank_power_delay(bank, problem.base_power, &self.lambdas);
        if p_active >= r * (1.0 - KINK_TOL) || problem.energy_weight <= 0.0 {
            return Ok(Self::outcome_parts(problem, p_active, d_active, Some(nu_active)));
        }
        let mut best_obj =
            problem.energy_weight * pos(p_active - r) + problem.delay_weight * d_active;
        let mut best = (p_active, d_active, nu_active);

        // Regime 2: renewable-slack (penalty weight = 0).
        let nu_slack = self.penalty_into_scratch(problem, 0.0, self.nu_slack)?;
        self.nu_slack = Some(nu_slack);
        let (p_slack, d_slack) = bank_power_delay(bank, problem.base_power, &self.scratch);
        if p_slack <= r * (1.0 + KINK_TOL) {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            return Ok(Self::outcome_parts(problem, p_slack, d_slack, Some(nu_slack)));
        }
        let obj_slack =
            problem.energy_weight * pos(p_slack - r) + problem.delay_weight * d_slack;
        if obj_slack < best_obj {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            best_obj = obj_slack;
            best = (p_slack, d_slack, nu_slack);
        }

        // Regime 3: the optimum pins total power to r; bisect μ ∈ [0, A]
        // with the bracket seeded from the previous μ*.
        let mu = self.bisect_mu(problem)?;
        self.mu = Some(mu);
        let nu_kink = self.penalty_into_scratch(problem, mu, self.nu_kink)?;
        self.nu_kink = Some(nu_kink);
        let (p_kink, d_kink) = bank_power_delay(bank, problem.base_power, &self.scratch);
        let obj_kink =
            problem.energy_weight * pos(p_kink - r) + problem.delay_weight * d_kink;
        if !best_obj.is_finite() || !obj_kink.is_finite() {
            return Err(OptError::NonFinite(format!(
                "candidate objectives {best_obj}/{obj_kink} in batched regime selection"
            )));
        }
        if obj_kink < best_obj {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            best = (p_kink, d_kink, nu_kink);
        }
        // The winner's totals were measured when its regime was scored, so
        // no extra lane walk here.
        Ok(Self::outcome_parts(problem, best.0, best.1, Some(best.2)))
    }

    /// Cold `W = 0` greedy delegation over a compact AoS view, scattering
    /// the result back to bank row order.
    fn solve_greedy_cold(&mut self, problem: &BankProblem<'_>) -> Result<WarmOutcome> {
        let bank = problem.bank;
        self.aos_specs.clear();
        for row in 0..bank.len() {
            let m = bank.multiplicity[row];
            if m > 0.0 {
                self.aos_specs.push(QueueSpec {
                    capacity: bank.capacity[row],
                    util_cap: bank.util_cap[row],
                    energy_slope: bank.energy_slope[row],
                    multiplicity: m,
                });
            }
        }
        let view = LoadDistProblem {
            queues: &self.aos_specs,
            total_load: problem.total_load,
            energy_weight: problem.energy_weight,
            delay_weight: problem.delay_weight,
            base_power: problem.base_power,
            renewable: problem.renewable,
        };
        let sol = solve_linear_greedy(&view)?;
        let mut live = 0;
        for row in 0..bank.len() {
            if bank.multiplicity[row] > 0.0 {
                self.lambdas[row] = sol.lambdas[live];
                live += 1;
            } else {
                self.lambdas[row] = 0.0;
            }
        }
        Ok(WarmOutcome {
            objective: sol.objective,
            power: sol.power,
            delay: sol.delay,
            water_level: None,
        })
    }

    /// Kink-regime μ-search, identical in structure and tolerances to
    /// [`WarmWaterfill::bisect_mu`].
    fn bisect_mu(&mut self, problem: &BankProblem<'_>) -> Result<f64> {
        let r = problem.renewable;
        let a = problem.energy_weight;
        let opts = BisectOptions { x_tol: 0.0, f_tol: r.abs().max(1.0) * 1e-13, max_iter: 200 };
        let power_gap = |this: &mut Self, mu: f64| -> f64 {
            match this.penalty_into_scratch(problem, mu, this.nu_kink) {
                Ok(nu) => {
                    this.nu_kink = Some(nu);
                    r - bank_power(problem.bank, problem.base_power, &this.scratch)
                }
                Err(_) => f64::NAN,
            }
        };
        if let Some(prev) = self.mu {
            if prev.is_finite() {
                let half = WARM_BRACKET_SPAN * a;
                let wlo = (prev - half).max(0.0);
                let whi = (prev + half).min(a);
                if wlo < whi {
                    let glo = power_gap(self, wlo);
                    if glo.is_finite() {
                        if glo > 0.0 {
                            let g0 = power_gap(self, 0.0);
                            if g0.is_finite() && g0 <= 0.0 {
                                return illinois_seeded(
                                    0.0,
                                    wlo,
                                    g0,
                                    glo,
                                    |mu| power_gap(self, mu),
                                    opts,
                                );
                            }
                        } else {
                            let ghi = power_gap(self, whi);
                            if ghi.is_finite() && ghi >= 0.0 {
                                return illinois_seeded(
                                    wlo,
                                    whi,
                                    glo,
                                    ghi,
                                    |mu| power_gap(self, mu),
                                    opts,
                                );
                            }
                            if ghi.is_finite() && whi < a {
                                let ga = power_gap(self, a);
                                if ga.is_finite() && ga >= 0.0 {
                                    return illinois_seeded(
                                        whi,
                                        a,
                                        ghi,
                                        ga,
                                        |mu| power_gap(self, mu),
                                        opts,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        illinois_increasing(0.0, a, |mu| power_gap(self, mu), opts)
    }

    /// Warm-bracketed penalty solve on the bank lanes — the batched
    /// [`WarmWaterfill::penalty_into_scratch`], with every residual
    /// evaluation a single chunked [`bank_total_at`] /
    /// [`bank_total_slope_into`] pass.
    /// Rebuilds the derived `W/xᵢ` / `W·xᵢ` lanes when the delay weight or
    /// the capacity lanes changed since the last solve (a slice compare —
    /// capacities are immutable for a bank's lifetime, so this is a no-op
    /// on the candidate-sweep hot path).
    fn ensure_aux(&mut self, bank: &QueueBank, w: f64) {
        let n = bank.len();
        if self.aux_w.to_bits() == w.to_bits()
            && self.aux_cap.len() == n
            && self.aux_cap == bank.capacity
        {
            return;
        }
        self.aux_cap.clear();
        self.aux_cap.extend_from_slice(&bank.capacity);
        self.wox.clear();
        self.wx.clear();
        for &x in &bank.capacity {
            debug_assert!(x > 0.0, "bank rows are validated at build: capacity > 0");
            self.wox.push(w / x);
            self.wx.push(w * x);
        }
        self.aux_w = w;
    }

    fn penalty_into_scratch(
        &mut self,
        problem: &BankProblem<'_>,
        a_eff: f64,
        warm: Option<f64>,
    ) -> Result<f64> {
        let lam = problem.total_load;
        let bank = problem.bank;
        let (wox, wx) = (self.wox.as_slice(), self.wx.as_slice());
        let evals = std::cell::Cell::new(0u64);

        // audit:hot-path: begin
        let total_of = |nu: f64| -> f64 {
            evals.set(evals.get() + 1);
            bank_total_at(bank, nu, a_eff, wox, wx)
        };
        let nu_lo = bank_nu_lower_bound(bank, a_eff, wox);
        let opts = nu_bisect_options(lam);
        // Newton from the previous water level; the accepting evaluation's
        // rows ARE the final fill (see `WarmWaterfill` for the rationale —
        // the stopping rule is identical, so agreement carries over).
        if let Some(prev) = warm {
            if prev.is_finite() && prev > nu_lo {
                let mut nu = prev;
                for _ in 0..8 {
                    evals.set(evals.get() + 1);
                    let (total, slope) =
                        bank_total_slope_into(bank, nu, a_eff, wox, wx, &mut self.scratch);
                    let g = total - lam;
                    if !g.is_finite() {
                        break;
                    }
                    if g.abs() <= opts.f_tol {
                        bank_rescale_interior(&mut self.scratch, bank, lam);
                        self.last_evals += evals.get();
                        return Ok(nu);
                    }
                    if slope.is_nan() || slope <= 0.0 {
                        break;
                    }
                    let next = nu - g / slope;
                    if !next.is_finite() || next <= nu_lo {
                        break;
                    }
                    nu = next;
                }
            }
        }
        // Sign-verified warm bracket handed to the seeded search; misses
        // keep their sign information (see `WarmWaterfill` for the full
        // derivation — `f(nu_lo) = −λ` brackets any root below for free).
        let nu = 'search: {
            if let Some(prev) = warm {
                if prev.is_finite() && prev > nu_lo {
                    let lo = (prev * (1.0 - WARM_BRACKET_SPAN)).max(nu_lo);
                    let hi = prev * (1.0 + WARM_BRACKET_SPAN);
                    let glo = total_of(lo) - lam;
                    if !glo.is_finite() {
                        return Err(OptError::NonFiniteEval { x: lo, fx: glo });
                    }
                    if glo > 0.0 {
                        break 'search illinois_seeded(
                            nu_lo,
                            lo,
                            -lam,
                            glo,
                            |nu| total_of(nu) - lam,
                            opts,
                        )?;
                    }
                    let ghi = total_of(hi) - lam;
                    if !ghi.is_finite() {
                        return Err(OptError::NonFiniteEval { x: hi, fx: ghi });
                    }
                    if ghi >= 0.0 {
                        break 'search illinois_seeded(
                            lo,
                            hi,
                            glo,
                            ghi,
                            |nu| total_of(nu) - lam,
                            opts,
                        )?;
                    }
                    let nu_hi = grow_upper_bracket(hi * 2.0, |nu| total_of(nu) - lam, 200)?;
                    break 'search illinois_seeded(
                        hi,
                        nu_hi,
                        ghi,
                        total_of(nu_hi) - lam,
                        |nu| total_of(nu) - lam,
                        opts,
                    )?;
                }
            }
            // Cold path (no usable previous level): grow the upper bracket
            // by doubling, exactly like `solve_linear_penalty`.
            let start = (nu_lo.abs().max(1.0)) * 2.0;
            let nu_hi = grow_upper_bracket(start, |nu| total_of(nu) - lam, 200)?;
            illinois_increasing(nu_lo, nu_hi, |nu| total_of(nu) - lam, opts)?
        };

        bank_fill_into(bank, nu, a_eff, wox, wx, &mut self.scratch);
        bank_rescale_interior(&mut self.scratch, bank, lam);
        // audit:hot-path: end
        self.last_evals += evals.get();
        Ok(nu)
    }
}

/// Greedy fill by ascending marginal energy cost for the `W = 0` LP.
fn solve_linear_greedy(problem: &LoadDistProblem<'_>) -> Result<LoadDistSolution> {
    if let Some(q) = problem.queues.iter().find(|q| !q.energy_slope.is_finite()) {
        return Err(OptError::NonFinite(format!(
            "energy slope {} in greedy fill",
            q.energy_slope
        )));
    }
    let mut order: Vec<usize> = (0..problem.queues.len()).collect();
    order.sort_by(|&a, &b| {
        problem.queues[a]
            .energy_slope
            .total_cmp(&problem.queues[b].energy_slope)
    });
    let mut lambdas = vec![0.0; problem.queues.len()];
    let mut remaining = problem.total_load;
    for idx in order {
        if remaining <= 0.0 {
            break;
        }
        let q = &problem.queues[idx];
        debug_assert!(q.multiplicity >= 1.0, "validated at entry");
        let take = remaining.min(q.util_cap * q.multiplicity);
        lambdas[idx] = take / q.multiplicity;
        remaining -= take;
    }
    if remaining > problem.total_load * 1e-12 {
        return Err(OptError::Infeasible(format!("greedy fill left {remaining} unassigned")));
    }
    Ok(problem.solution_from(lambdas, None))
}

fn distribute_remainder(lambdas: &mut [f64], queues: &[QueueSpec], mut slack: f64) {
    for (l, q) in lambdas.iter_mut().zip(queues) {
        if slack <= 0.0 {
            break;
        }
        debug_assert!(q.multiplicity >= 1.0, "validated at entry");
        let headroom = (q.util_cap - *l) * q.multiplicity;
        let take = headroom.min(slack);
        *l += take / q.multiplicity;
        slack -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homogeneous(n: usize, capacity: f64, gamma: f64, slope: f64) -> Vec<QueueSpec> {
        (0..n).map(|_| QueueSpec::single(capacity, gamma * capacity, slope)).collect()
    }

    fn problem<'a>(queues: &'a [QueueSpec], lam: f64, a: f64, w: f64, r: f64) -> LoadDistProblem<'a> {
        LoadDistProblem {
            queues,
            total_load: lam,
            energy_weight: a,
            delay_weight: w,
            base_power: 0.0,
            renewable: r,
        }
    }

    #[test]
    fn zero_load_gives_zero_everything() {
        let qs = homogeneous(4, 10.0, 0.9, 0.1);
        let p = problem(&qs, 0.0, 1.0, 1.0, 0.0);
        let s = solve(&p).unwrap();
        assert_eq!(s.lambdas, vec![0.0; 4]);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn homogeneous_split_is_even() {
        let qs = homogeneous(5, 10.0, 0.9, 0.1);
        let p = problem(&qs, 20.0, 2.0, 3.0, 0.0);
        let s = solve(&p).unwrap();
        for &l in &s.lambdas {
            assert!((l - 4.0).abs() < 1e-7, "expected even split, got {:?}", s.lambdas);
        }
        let sum: f64 = s.lambdas.iter().sum();
        assert!((sum - 20.0).abs() < 1e-9);
    }

    #[test]
    fn favors_energy_cheap_queue() {
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 0.05),
            QueueSpec::single(10.0, 9.0, 0.50),
        ];
        let p = problem(&qs, 8.0, 10.0, 1.0, 0.0);
        let s = solve(&p).unwrap();
        assert!(
            s.lambdas[0] > s.lambdas[1],
            "cheap queue should carry more load: {:?}",
            s.lambdas
        );
    }

    #[test]
    fn respects_utilization_caps() {
        let qs = vec![
            QueueSpec::single(10.0, 2.0, 0.0),
            QueueSpec::single(10.0, 9.5, 0.0),
        ];
        let p = problem(&qs, 10.0, 1.0, 1.0, 0.0);
        let s = solve(&p).unwrap();
        assert!(s.lambdas[0] <= 2.0 + 1e-9);
        let sum: f64 = s.lambdas.iter().sum();
        assert!((sum - 10.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_load_rejected() {
        let qs = homogeneous(2, 10.0, 0.9, 0.1);
        let p = problem(&qs, 18.5, 1.0, 1.0, 0.0);
        assert!(matches!(solve(&p), Err(OptError::Infeasible(_))));
    }

    #[test]
    fn saturated_load_pins_all_caps() {
        let qs = homogeneous(3, 10.0, 0.9, 0.1);
        let p = problem(&qs, 27.0, 1.0, 1.0, 0.0);
        let s = solve(&p).unwrap();
        for &l in &s.lambdas {
            assert!((l - 9.0).abs() < 1e-9);
        }
    }

    #[test]
    fn renewable_slack_regime_ignores_energy_weight() {
        // Huge renewable supply: the [·]⁺ term is dead, the optimum is the
        // delay-only water-filling regardless of A.
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 0.05),
            QueueSpec::single(20.0, 18.0, 0.50),
        ];
        let p_slack = problem(&qs, 9.0, 1000.0, 1.0, 1e9);
        let p_delay_only = problem(&qs, 9.0, 0.0, 1.0, 0.0);
        let s1 = solve(&p_slack).unwrap();
        let s2 = solve(&p_delay_only).unwrap();
        for (a, b) in s1.lambdas.iter().zip(&s2.lambdas) {
            assert!((a - b).abs() < 1e-6, "{:?} vs {:?}", s1.lambdas, s2.lambdas);
        }
        assert!(s1.objective <= s2.objective + 1e-9, "slack objective drops the A term");
    }

    #[test]
    fn kink_regime_pins_power_to_renewable() {
        // Construct an instance where the electricity-active optimum uses
        // less power than r, but the delay-only optimum uses more: the true
        // optimum must sit at power == r.
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 1.0),
            QueueSpec::single(10.0, 9.0, 3.0),
        ];
        // With a strong energy weight, load piles onto queue 0 (cheap), using
        // little total power; with A=0 the split is even, using more power.
        let lam = 10.0;
        let a = 50.0;
        let w = 1.0;
        // Even split power = 5*1 + 5*3 = 20. Skewed split power < 20.
        let r = 16.0;
        let p = problem(&qs, lam, a, w, r);
        let s = solve(&p).unwrap();
        let active = solve(&problem(&qs, lam, a, w, 0.0)).unwrap();
        let slack = solve(&problem(&qs, lam, 0.0, w, 0.0)).unwrap();
        assert!(active.power < r && slack.power > r, "test setup must straddle the kink");
        assert!(
            (s.power - r).abs() < 1e-5,
            "optimum should pin power to r: power={} r={}",
            s.power,
            r
        );
    }

    #[test]
    fn zero_delay_weight_greedy_fill() {
        let qs = vec![
            QueueSpec::single(10.0, 5.0, 0.9),
            QueueSpec::single(10.0, 5.0, 0.1),
        ];
        let p = problem(&qs, 6.0, 1.0, 0.0, 0.0);
        let s = solve(&p).unwrap();
        assert!((s.lambdas[1] - 5.0).abs() < 1e-12, "cheap queue filled first");
        assert!((s.lambdas[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_delay_weight_greedy_respects_multiplicity() {
        let qs = vec![
            QueueSpec { capacity: 10.0, util_cap: 5.0, energy_slope: 0.1, multiplicity: 3.0 },
            QueueSpec::single(10.0, 5.0, 0.9),
        ];
        let p = problem(&qs, 16.0, 1.0, 0.0, 0.0);
        let s = solve(&p).unwrap();
        // Cheap type holds 3 queues × 5 = 15; remaining 1 on the other.
        assert!((s.lambdas[0] - 5.0).abs() < 1e-12);
        assert!((s.lambdas[1] - 1.0).abs() < 1e-12);
        assert!((p.dispatched(&s.lambdas) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn objective_matches_components() {
        let qs = homogeneous(3, 12.0, 0.95, 0.2);
        let p = LoadDistProblem {
            queues: &qs,
            total_load: 15.0,
            energy_weight: 4.0,
            delay_weight: 2.0,
            base_power: 1.5,
            renewable: 2.0,
        };
        let s = solve(&p).unwrap();
        let expected = 4.0 * pos(s.power - 2.0) + 2.0 * s.delay;
        assert!((s.objective - expected).abs() < 1e-12);
        assert!((s.power - p.power(&s.lambdas)).abs() < 1e-12);
    }

    #[test]
    fn multiplicity_equals_expanded_copies() {
        // One type with multiplicity 4 must match four explicit copies.
        let compact = vec![QueueSpec {
            capacity: 12.0,
            util_cap: 10.0,
            energy_slope: 0.3,
            multiplicity: 4.0,
        }];
        let expanded = homogeneous(4, 12.0, 10.0 / 12.0, 0.3);
        for &(lam, a, w, r) in &[(20.0, 2.0, 1.0, 0.0), (35.0, 0.7, 3.0, 5.0), (8.0, 5.0, 0.5, 2.0)] {
            let pc = problem(&compact, lam, a, w, r);
            let pe = problem(&expanded, lam, a, w, r);
            let sc = solve(&pc).unwrap();
            let se = solve(&pe).unwrap();
            assert!(
                (sc.objective - se.objective).abs() < 1e-6 * se.objective.max(1.0),
                "objective: compact {} vs expanded {}",
                sc.objective,
                se.objective
            );
            assert!((sc.power - se.power).abs() < 1e-6 * se.power.max(1.0));
            // Per-queue load of the compact type equals each expanded load.
            for &l in &se.lambdas {
                assert!((l - sc.lambdas[0]).abs() < 1e-6, "{l} vs {}", sc.lambdas[0]);
            }
        }
    }

    #[test]
    fn mixed_multiplicities_conserve_load() {
        let qs = vec![
            QueueSpec { capacity: 10.0, util_cap: 9.0, energy_slope: 0.1, multiplicity: 7.0 },
            QueueSpec { capacity: 20.0, util_cap: 18.0, energy_slope: 0.3, multiplicity: 2.0 },
            QueueSpec::single(15.0, 13.0, 0.2),
        ];
        let p = problem(&qs, 70.0, 3.0, 2.0, 4.0);
        let s = solve(&p).unwrap();
        assert!((p.dispatched(&s.lambdas) - 70.0).abs() < 1e-7);
        for (l, q) in s.lambdas.iter().zip(&qs) {
            assert!(*l >= 0.0 && *l <= q.util_cap + 1e-9);
        }
    }

    #[test]
    fn matches_dense_grid_on_two_queues() {
        // Brute-force the 2-queue problem on a fine grid and compare.
        let qs = vec![
            QueueSpec::single(8.0, 7.0, 0.3),
            QueueSpec::single(14.0, 12.0, 0.1),
        ];
        for &(lam, a, w, r) in &[
            (5.0, 2.0, 1.0, 0.0),
            (10.0, 0.5, 3.0, 1.0),
            (15.0, 5.0, 0.5, 2.5),
            (18.0, 1.0, 1.0, 0.0),
        ] {
            let p = problem(&qs, lam, a, w, r);
            let s = solve(&p).unwrap();
            let mut best = f64::INFINITY;
            let steps = 40_000;
            for k in 0..=steps {
                let l0 = lam * (k as f64 / steps as f64);
                let l1 = lam - l0;
                if l0 > qs[0].util_cap || l1 > qs[1].util_cap {
                    continue;
                }
                best = best.min(p.objective(&[l0, l1]));
            }
            assert!(
                s.objective <= best + best.abs() * 1e-4 + 1e-7,
                "solver {} worse than grid {} for (λ={lam}, A={a}, W={w}, r={r})",
                s.objective,
                best
            );
        }
    }

    #[test]
    fn validate_rejects_bad_queue() {
        let q = QueueSpec::single(0.0, 0.0, 0.1);
        assert!(q.validate().is_err());
        let q = QueueSpec::single(10.0, 10.0, 0.1);
        assert!(q.validate().is_err(), "util_cap must be < capacity");
        let q = QueueSpec::single(10.0, 9.0, -1.0);
        assert!(q.validate().is_err());
        let q = QueueSpec { capacity: 10.0, util_cap: 9.0, energy_slope: 0.1, multiplicity: 0.5 };
        assert!(q.validate().is_err(), "multiplicity below 1 rejected");
    }

    #[test]
    fn validate_rejects_negative_scalars() {
        let qs = homogeneous(1, 10.0, 0.9, 0.1);
        let mut p = problem(&qs, 1.0, 1.0, 1.0, 0.0);
        p.renewable = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn positive_load_with_no_queues_is_infeasible() {
        let p = problem(&[], 1.0, 1.0, 1.0, 0.0);
        assert!(matches!(solve(&p), Err(OptError::Infeasible(_))));
    }

    #[test]
    fn power_cap_slack_returns_unconstrained() {
        let qs = homogeneous(3, 10.0, 0.9, 0.5);
        let p = problem(&qs, 12.0, 1.0, 2.0, 0.0);
        let unc = solve(&p).unwrap();
        let capped = solve_with_power_cap(&p, unc.power * 2.0).unwrap();
        assert!((capped.objective - unc.objective).abs() < 1e-12);
    }

    #[test]
    fn power_cap_pins_power_to_cap() {
        // Heterogeneous slopes so the unconstrained optimum spreads load
        // and uses more power than necessary.
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 0.2),
            QueueSpec::single(10.0, 9.0, 1.0),
        ];
        let p = problem(&qs, 12.0, 0.1, 5.0, 0.0);
        let unc = solve(&p).unwrap();
        let cap = unc.power * 0.9;
        let capped = solve_with_power_cap(&p, cap).unwrap();
        assert!(capped.power <= cap * (1.0 + 1e-6), "power {} vs cap {cap}", capped.power);
        assert!((capped.power - cap).abs() < cap * 1e-4, "cap should bind");
        assert!(capped.objective >= unc.objective - 1e-9, "capping cannot help");
        // The solution is still load-conserving.
        assert!((p.dispatched(&capped.lambdas) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn power_cap_below_floor_is_infeasible() {
        let qs = homogeneous(2, 10.0, 0.9, 0.5);
        // Serving 10 load units takes at least 10·(min slope load share)…
        let p = problem(&qs, 10.0, 1.0, 1.0, 0.0);
        let r = solve_with_power_cap(&p, 0.1);
        assert!(matches!(r, Err(OptError::Infeasible(_))));
    }

    #[test]
    fn warm_solver_matches_cold_across_regime_transitions() {
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 1.0),
            QueueSpec { capacity: 10.0, util_cap: 9.0, energy_slope: 3.0, multiplicity: 2.0 },
        ];
        let mut warm = WarmWaterfill::new();
        // One solver instance across the sweep so warm brackets carry over
        // regime transitions (active → kink → slack → kink again).
        for &(lam, a, w, r) in &[
            (10.0, 50.0, 1.0, 0.0),  // electricity-active
            (16.0, 50.0, 1.0, 16.0), // boundary kink
            (10.0, 50.0, 1.0, 1e9),  // renewable-slack
            (16.5, 50.0, 1.0, 16.0), // kink revisited with drifted load
            (10.1, 50.0, 1.0, 0.0),  // back to active
        ] {
            let p = problem(&qs, lam, a, w, r);
            let cold = solve(&p).unwrap();
            let out = warm.solve(&p).unwrap();
            let scale = cold.objective.abs().max(1.0);
            assert!(
                (out.objective - cold.objective).abs() <= 1e-9 * scale,
                "objective warm {} vs cold {} at (λ={lam}, A={a}, W={w}, r={r})",
                out.objective,
                cold.objective
            );
            for (wl, cl) in warm.lambdas().iter().zip(&cold.lambdas) {
                assert!((wl - cl).abs() <= 1e-9 * cl.abs().max(1.0), "{wl} vs {cl}");
            }
            let (Some(wn), Some(cn)) = (out.water_level, cold.water_level) else {
                panic!("both paths should report a water level");
            };
            assert!((wn - cn).abs() <= 1e-6 * cn.abs().max(1.0), "ν warm {wn} vs cold {cn}");
        }
    }

    #[test]
    fn warm_solver_handles_degenerate_paths() {
        let qs = homogeneous(3, 10.0, 0.9, 0.1);
        let mut warm = WarmWaterfill::new();
        // Zero load.
        let out = warm.solve(&problem(&qs, 0.0, 1.0, 1.0, 0.0)).unwrap();
        assert_eq!(out.objective, 0.0);
        assert!(warm.lambdas().iter().all(|&l| l == 0.0));
        assert!(out.water_level.is_none());
        // Saturated.
        let _ = warm.solve(&problem(&qs, 27.0, 1.0, 1.0, 0.0)).unwrap();
        assert!(warm.lambdas().iter().all(|&l| (l - 9.0).abs() < 1e-9));
        // W = 0 greedy delegation.
        let p = problem(&qs, 6.0, 1.0, 0.0, 0.0);
        let out_greedy = warm.solve(&p).unwrap();
        let cold = solve(&p).unwrap();
        assert!((out_greedy.objective - cold.objective).abs() < 1e-12);
        // Infeasible load.
        assert!(matches!(
            warm.solve(&problem(&qs, 28.0, 1.0, 1.0, 0.0)),
            Err(OptError::Infeasible(_))
        ));
    }

    #[test]
    fn power_cap_rejects_bad_input() {
        let qs = homogeneous(1, 10.0, 0.9, 0.1);
        let p = problem(&qs, 1.0, 1.0, 1.0, 0.0);
        assert!(solve_with_power_cap(&p, f64::NAN).is_err());
        assert!(solve_with_power_cap(&p, -1.0).is_err());
    }

    // --- SoA bank kernels -------------------------------------------------

    /// `n` heterogeneous queue types with deterministic parameter spread.
    fn varied_specs(n: usize) -> Vec<QueueSpec> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                QueueSpec {
                    capacity: 8.0 + 1.5 * (f % 5.0),
                    util_cap: (8.0 + 1.5 * (f % 5.0)) * 0.9,
                    energy_slope: 0.1 + 0.35 * (f % 4.0),
                    multiplicity: 1.0 + (f % 3.0),
                }
            })
            .collect()
    }

    fn bank_of(specs: &[QueueSpec]) -> QueueBank {
        let mut b = QueueBank::new();
        for q in specs {
            b.push_type(q.capacity, q.util_cap, q.energy_slope, 0.0, q.multiplicity);
        }
        b
    }

    fn bank_problem<'a>(
        bank: &'a QueueBank,
        lam: f64,
        a: f64,
        w: f64,
        r: f64,
    ) -> BankProblem<'a> {
        BankProblem {
            bank,
            total_load: lam,
            energy_weight: a,
            delay_weight: w,
            base_power: 0.0,
            capped_capacity: bank.aggregates().0,
            renewable: r,
        }
    }

    /// Lane-remainder coverage: type counts around the `[f64; 8]` chunk
    /// boundary (1, 7, 8, 9, 17 → 0/0/1/1/2 full chunks plus 1/7/0/1/1
    /// tail rows) must all agree with the cold AoS solver.
    #[test]
    fn bank_matches_cold_across_lane_remainders() {
        for &n in &[1usize, 7, 8, 9, 17] {
            let specs = varied_specs(n);
            let bank = bank_of(&specs);
            bank.validate().unwrap();
            let cap: f64 = specs.iter().map(|q| q.multiplicity * q.util_cap).sum();
            let mut soa = SoaWaterfill::new();
            // Load fractions and renewable settings that exercise all
            // three regimes (r = 0 active, huge r slack, mid r kink).
            for &(frac, a, w, r_frac) in &[
                (0.45, 20.0, 1.0, 0.0),
                (0.6, 20.0, 1.0, 0.35),
                (0.5, 20.0, 1.0, 1e6),
                (0.75, 5.0, 2.0, 0.5),
            ] {
                let lam = cap * frac;
                let r = if r_frac > 1.0 { r_frac } else { cap * r_frac };
                let p_aos = problem(&specs, lam, a, w, r);
                let p_soa = bank_problem(&bank, lam, a, w, r);
                let cold = solve(&p_aos).unwrap();
                let out = soa.solve(&p_soa).unwrap();
                let scale = cold.objective.abs().max(1.0);
                assert!(
                    (out.objective - cold.objective).abs() <= 1e-9 * scale,
                    "n={n}: objective soa {} vs cold {} at (λ={lam}, A={a}, W={w}, r={r})",
                    out.objective,
                    cold.objective
                );
                for (sl, cl) in soa.lambdas().iter().zip(&cold.lambdas) {
                    assert!(
                        (sl - cl).abs() <= 1e-9 * cl.abs().max(1.0),
                        "n={n}: λ soa {sl} vs cold {cl}"
                    );
                }
            }
        }
    }

    /// A retracted (`m = 0`) row must be arithmetically inert: the solve
    /// matches the same problem with the row absent entirely.
    #[test]
    fn bank_retracted_rows_are_inert() {
        let live = varied_specs(5);
        let mut bank = bank_of(&live);
        // Interleave two retracted rows (one mid-bank, one at the end).
        let mid = bank.push_type(9.0, 8.1, 0.7, 0.0, 0.0);
        let end = bank.push_type(11.0, 9.9, 0.2, 0.0, 0.0);
        assert_eq!(bank.multiplicity_of(mid), 0.0);
        assert_eq!(bank.multiplicity_of(end), 0.0);
        let cap: f64 = live.iter().map(|q| q.multiplicity * q.util_cap).sum();
        let mut soa = SoaWaterfill::new();
        for &(frac, r_frac) in &[(0.5, 0.0), (0.65, 0.4), (0.5, 1e6_f64)] {
            let lam = cap * frac;
            let r = if r_frac > 1.0 { r_frac } else { cap * r_frac };
            let p_aos = problem(&live, lam, 20.0, 1.0, r);
            let p_soa = bank_problem(&bank, lam, 20.0, 1.0, r);
            let cold = solve(&p_aos).unwrap();
            let out = soa.solve(&p_soa).unwrap();
            let scale = cold.objective.abs().max(1.0);
            assert!(
                (out.objective - cold.objective).abs() <= 1e-9 * scale,
                "objective soa {} vs cold {} (r={r})",
                out.objective,
                cold.objective
            );
            // Load conservation must hold with the retracted rows carrying
            // zero weight.
            assert!((p_soa.dispatched(soa.lambdas()) - lam).abs() <= 1e-6 * lam.max(1.0));
        }
    }

    /// Multiplicity round-trips through the delta API (`±1.0` is exact for
    /// integer-valued lanes) and the aggregates follow.
    #[test]
    fn bank_multiplicity_deltas_are_exact() {
        let specs = varied_specs(4);
        let mut bank = bank_of(&specs);
        let (cap0, base0) = bank.aggregates();
        bank.add_multiplicity(2, 1.0);
        bank.add_multiplicity(2, -1.0);
        let (cap1, base1) = bank.aggregates();
        assert_eq!(cap0, cap1, "±1.0 deltas must round-trip bit-exactly");
        assert_eq!(base0, base1);
        bank.set_multiplicity(1, 0.0);
        let (cap2, _) = bank.aggregates();
        assert!(cap2 < cap1);
        assert_eq!(bank.multiplicity_of(1), 0.0);
    }

    #[test]
    fn soa_solver_handles_degenerate_paths() {
        let specs = homogeneous(3, 10.0, 0.9, 0.1);
        let bank = bank_of(&specs);
        let mut soa = SoaWaterfill::new();
        // Zero load.
        let out = soa.solve(&bank_problem(&bank, 0.0, 1.0, 1.0, 0.0)).unwrap();
        assert_eq!(out.objective, 0.0);
        assert!(soa.lambdas().iter().all(|&l| l == 0.0));
        assert!(out.water_level.is_none());
        // Saturated.
        let _ = soa.solve(&bank_problem(&bank, 27.0, 1.0, 1.0, 0.0)).unwrap();
        assert!(soa.lambdas().iter().all(|&l| (l - 9.0).abs() < 1e-9));
        // W = 0 greedy delegation matches the cold path.
        let p_aos = problem(&specs, 6.0, 1.0, 0.0, 0.0);
        let out_greedy = soa.solve(&bank_problem(&bank, 6.0, 1.0, 0.0, 0.0)).unwrap();
        let cold = solve(&p_aos).unwrap();
        assert!((out_greedy.objective - cold.objective).abs() < 1e-12);
        // Infeasible load.
        assert!(matches!(
            soa.solve(&bank_problem(&bank, 28.0, 1.0, 1.0, 0.0)),
            Err(OptError::Infeasible(_))
        ));
        // Bad scalar rejected.
        let mut p = bank_problem(&bank, 1.0, 1.0, 1.0, 0.0);
        p.renewable = -1.0;
        assert!(matches!(soa.solve(&p), Err(OptError::InvalidInput(_))));
    }

    #[test]
    fn bank_validate_rejects_bad_rows() {
        let mut bank = QueueBank::new();
        bank.push_type(10.0, 9.0, 0.1, 1.0, 2.0);
        assert!(bank.validate().is_ok());
        bank.push_type(10.0, 10.0, 0.1, 1.0, 1.0); // util_cap == capacity
        assert!(bank.validate().is_err());
        bank.clear();
        bank.push_type(10.0, 9.0, 0.1, -1.0, 1.0); // negative static power
        assert!(bank.validate().is_err());
        bank.clear();
        bank.push_type(10.0, 9.0, 0.1, 1.0, -1.0); // negative multiplicity
        assert!(bank.validate().is_err());
        bank.clear();
        bank.push_type(10.0, 9.0, 0.1, 1.0, 0.0); // retracted row is fine
        assert!(bank.validate().is_ok());
    }

    /// Warm-started SoA resolves across regime transitions, mirroring
    /// `warm_solver_matches_cold_across_regime_transitions`.
    #[test]
    fn soa_solver_matches_cold_across_regime_transitions() {
        let specs = vec![
            QueueSpec::single(10.0, 9.0, 1.0),
            QueueSpec { capacity: 10.0, util_cap: 9.0, energy_slope: 3.0, multiplicity: 2.0 },
        ];
        let bank = bank_of(&specs);
        let mut soa = SoaWaterfill::new();
        for &(lam, a, w, r) in &[
            (10.0, 50.0, 1.0, 0.0),  // electricity-active
            (16.0, 50.0, 1.0, 16.0), // boundary kink
            (10.0, 50.0, 1.0, 1e9),  // renewable-slack
            (16.5, 50.0, 1.0, 16.0), // kink revisited with drifted load
            (10.1, 50.0, 1.0, 0.0),  // back to active
        ] {
            let p_aos = problem(&specs, lam, a, w, r);
            let cold = solve(&p_aos).unwrap();
            let out = soa.solve(&bank_problem(&bank, lam, a, w, r)).unwrap();
            let scale = cold.objective.abs().max(1.0);
            assert!(
                (out.objective - cold.objective).abs() <= 1e-9 * scale,
                "objective soa {} vs cold {} at (λ={lam}, A={a}, W={w}, r={r})",
                out.objective,
                cold.objective
            );
            for (sl, cl) in soa.lambdas().iter().zip(&cold.lambdas) {
                assert!((sl - cl).abs() <= 1e-9 * cl.abs().max(1.0), "{sl} vs {cl}");
            }
            let (Some(sn), Some(cn)) = (out.water_level, cold.water_level) else {
                panic!("both paths should report a water level");
            };
            assert!((sn - cn).abs() <= 1e-6 * cn.abs().max(1.0), "ν soa {sn} vs cold {cn}");
        }
    }
}
