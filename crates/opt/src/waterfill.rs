//! Exact load-distribution solver (the continuous inner problem of **P3**).
//!
//! For a *fixed* speed vector, the COCA per-slot problem (paper eq. 16 / 18)
//! reduces to distributing the total arrival rate `λ` across `n` queue
//! *types*, where type `i` stands for `mᵢ ≥ 1` identical queues:
//!
//! ```text
//! minimize   A·[ P₀ + Σᵢ mᵢ·cᵢ·λᵢ − r ]⁺  +  W·Σᵢ mᵢ·λᵢ/(Xᵢ − λᵢ)
//! subject to Σᵢ mᵢ·λᵢ = λ,   0 ≤ λᵢ ≤ uᵢ  (uᵢ = γ·Xᵢ < Xᵢ)
//! ```
//!
//! `λᵢ` is the load of *each* queue of type `i` — by symmetry and strict
//! convexity of the delay term, identical queues carry identical load at
//! the optimum, so collapsing them loses nothing and turns a 200-group
//! data center into a handful of types (one per server class × speed
//! level). `A = V·w(t) + q(t)` is the electricity weight, `W = V·β` the
//! delay weight, `cᵢ` the marginal power per unit load (paper eq. 1:
//! `p_{i,c}(xᵢ)/xᵢ`), `P₀` the static power of active servers, `r` the
//! on-site renewable supply (paper eq. 3).
//!
//! The objective is convex with a kink where total power crosses `r`.
//! We solve it **exactly** with a three-regime KKT analysis:
//!
//! 1. *Electricity-active*: replace `[·]⁺` by the identity. The KKT
//!    condition `A·cᵢ + W·Xᵢ/(Xᵢ−λᵢ)² = ν` yields a closed-form `λᵢ(ν)`
//!    clipped to `[0, uᵢ]` (multiplicities cancel in the stationarity
//!    condition); bisection on ν enforces `Σ mᵢλᵢ = λ` (classic
//!    water-filling). If the resulting power is ≥ r, this candidate is
//!    globally optimal (the relaxed objective lower-bounds the true one and
//!    they agree there).
//! 2. *Renewable-slack*: set `A = 0` (delay-only water-filling). If the
//!    resulting power is ≤ r, it is globally optimal by the same argument.
//! 3. *Boundary*: otherwise the optimum pins total power to exactly `r`; a
//!    second bisection on an effective energy weight `μ ∈ [0, A]` finds it
//!    (power is non-increasing in μ).
//!
//! Degenerate delay weight `W = 0` turns the problem into a linear program
//! solved greedily by ascending marginal energy cost.

use crate::bisect::{
    bisect_increasing, grow_upper_bracket, illinois_increasing, illinois_seeded, BisectOptions,
};
use crate::{pos, OptError, Result};

/// One M/G/1/PS queue type: `multiplicity` identical queues (servers, or
/// pooled homogeneous server groups) as seen by the solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSpec {
    /// Service capacity `Xᵢ` of **each** queue of this type (requests/s).
    /// Must be positive; fully idle (speed-zero) servers must be filtered
    /// out by the caller.
    pub capacity: f64,
    /// Utilization cap `uᵢ = γ·Xᵢ`, strictly below `capacity` so the delay
    /// cost stays finite (paper constraint 7).
    pub util_cap: f64,
    /// Marginal power per unit of load, `cᵢ = p_{i,c}(xᵢ)/xᵢ` (kW per
    /// req/s), per queue.
    pub energy_slope: f64,
    /// Number of identical queues this type stands for (≥ 1; need not be an
    /// integer, though it always is in practice).
    pub multiplicity: f64,
}

impl QueueSpec {
    /// Single queue (multiplicity 1).
    pub fn single(capacity: f64, util_cap: f64, energy_slope: f64) -> Self {
        Self { capacity, util_cap, energy_slope, multiplicity: 1.0 }
    }

    /// Validates the invariants documented on the fields.
    pub fn validate(&self) -> Result<()> {
        if !(self.capacity.is_finite() && self.capacity > 0.0) {
            return Err(OptError::InvalidInput(format!(
                "capacity must be positive, got {}",
                self.capacity
            )));
        }
        if !(self.util_cap.is_finite() && self.util_cap > 0.0 && self.util_cap < self.capacity) {
            return Err(OptError::InvalidInput(format!(
                "util_cap must lie in (0, capacity={}), got {}",
                self.capacity, self.util_cap
            )));
        }
        if !(self.energy_slope.is_finite() && self.energy_slope >= 0.0) {
            return Err(OptError::InvalidInput(format!(
                "energy_slope must be non-negative, got {}",
                self.energy_slope
            )));
        }
        if !(self.multiplicity.is_finite() && self.multiplicity >= 1.0) {
            return Err(OptError::InvalidInput(format!(
                "multiplicity must be ≥ 1, got {}",
                self.multiplicity
            )));
        }
        Ok(())
    }
}

/// Full problem instance for the load-distribution solver.
#[derive(Debug, Clone)]
pub struct LoadDistProblem<'a> {
    /// Active queue types (speed-zero servers excluded).
    pub queues: &'a [QueueSpec],
    /// Total arrival rate `λ` to distribute across all queues.
    pub total_load: f64,
    /// Electricity weight `A = V·w + q ≥ 0`.
    pub energy_weight: f64,
    /// Delay weight `W = V·β ≥ 0`.
    pub delay_weight: f64,
    /// Static power of all active servers, `P₀ ≥ 0`.
    pub base_power: f64,
    /// On-site renewable supply `r ≥ 0`.
    pub renewable: f64,
}

/// Solution of the load-distribution problem.
#[derive(Debug, Clone, PartialEq)]
#[must_use]
pub struct LoadDistSolution {
    /// Per-queue arrival rates `λᵢ` — the load of **each** queue of type `i`
    /// (same order as the input types). Total dispatched load is
    /// `Σ mᵢ·λᵢ`.
    pub lambdas: Vec<f64>,
    /// Objective value `A·[power − r]⁺ + W·Σ mᵢ dᵢ`.
    pub objective: f64,
    /// Total power `P₀ + Σ mᵢ cᵢ λᵢ`.
    pub power: f64,
    /// Total (unweighted) delay cost `Σ mᵢ λᵢ/(Xᵢ − λᵢ)`.
    pub delay: f64,
    /// Water level ν of the winning KKT regime, when the solution came out
    /// of a bisection (`None` on the closed-form paths: zero load,
    /// saturated caps, and the `W = 0` greedy fill). Exposed so warm-started
    /// re-solves can seed their bracket from it and so differential tests
    /// can compare incremental against cold water levels.
    pub water_level: Option<f64>,
}

/// Relative slack used when classifying which side of the `[·]⁺` kink a
/// candidate falls on.
const KINK_TOL: f64 = 1e-9;

impl LoadDistProblem<'_> {
    /// Validates the whole problem instance.
    pub fn validate(&self) -> Result<()> {
        for q in self.queues {
            q.validate()?;
        }
        for (name, v) in [
            ("total_load", self.total_load),
            ("energy_weight", self.energy_weight),
            ("delay_weight", self.delay_weight),
            ("base_power", self.base_power),
            ("renewable", self.renewable),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(OptError::InvalidInput(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// Aggregate utilization-capped capacity `Σ mᵢ uᵢ`.
    pub fn capped_capacity(&self) -> f64 {
        self.queues.iter().map(|q| q.multiplicity * q.util_cap).sum()
    }

    /// Total dispatched load `Σ mᵢ λᵢ` for per-queue loads `lambdas`.
    pub fn dispatched(&self, lambdas: &[f64]) -> f64 {
        self.queues.iter().zip(lambdas).map(|(q, &l)| q.multiplicity * l).sum()
    }

    /// Total power for a given distribution.
    pub fn power(&self, lambdas: &[f64]) -> f64 {
        self.base_power
            + self
                .queues
                .iter()
                .zip(lambdas)
                .map(|(q, &l)| q.multiplicity * q.energy_slope * l)
                .sum::<f64>()
    }

    /// Total unweighted delay cost `Σ mᵢ λᵢ/(Xᵢ − λᵢ)` for a distribution.
    pub fn delay(&self, lambdas: &[f64]) -> f64 {
        self.queues
            .iter()
            .zip(lambdas)
            .map(|(q, &l)| if l <= 0.0 { 0.0 } else { q.multiplicity * l / (q.capacity - l) })
            .sum()
    }

    /// True (kinked) objective value for a distribution.
    pub fn objective(&self, lambdas: &[f64]) -> f64 {
        self.energy_weight * pos(self.power(lambdas) - self.renewable)
            + self.delay_weight * self.delay(lambdas)
    }

    fn solution_from(&self, lambdas: Vec<f64>, water_level: Option<f64>) -> LoadDistSolution {
        let power = self.power(&lambdas);
        let delay = self.delay(&lambdas);
        let objective = self.energy_weight * pos(power - self.renewable) + self.delay_weight * delay;
        LoadDistSolution { lambdas, objective, power, delay, water_level }
    }
}

/// Solves the load-distribution problem exactly. See the module docs for the
/// three-regime strategy.
///
/// ```
/// use coca_opt::waterfill::{solve, LoadDistProblem, QueueSpec};
/// // Two identical queues: by symmetry the load splits evenly.
/// let queues = vec![QueueSpec::single(10.0, 9.0, 0.1); 2];
/// let sol = solve(&LoadDistProblem {
///     queues: &queues,
///     total_load: 8.0,
///     energy_weight: 1.0,
///     delay_weight: 1.0,
///     base_power: 0.0,
///     renewable: 0.0,
/// }).unwrap();
/// assert!((sol.lambdas[0] - 4.0).abs() < 1e-6);
/// assert!((sol.lambdas[1] - 4.0).abs() < 1e-6);
/// ```
pub fn solve(problem: &LoadDistProblem<'_>) -> Result<LoadDistSolution> {
    let sol = solve_unchecked(problem)?;
    // Paper-invariant hooks: constraint (8) conservation and the KKT
    // certificate of the three-regime analysis (free in release builds
    // unless strict mode is on).
    let inv = crate::invariant::global();
    inv.load_conserved(problem.dispatched(&sol.lambdas), problem.total_load);
    inv.kkt(problem, &sol.lambdas);
    Ok(sol)
}

fn solve_unchecked(problem: &LoadDistProblem<'_>) -> Result<LoadDistSolution> {
    problem.validate()?;
    let n = problem.queues.len();
    let lam = problem.total_load;
    // validate() guarantees lam >= 0, so `<=` is the exact-zero test.
    if lam <= 0.0 {
        return Ok(problem.solution_from(vec![0.0; n], None));
    }
    if n == 0 {
        return Err(OptError::Infeasible("positive load but no active queues".into()));
    }
    let cap = problem.capped_capacity();
    if lam > cap * (1.0 + 1e-12) {
        return Err(OptError::Infeasible(format!(
            "total load {lam} exceeds capped capacity {cap}"
        )));
    }
    // Saturated case: every queue pinned at (a uniform fraction of) its cap.
    if lam >= cap * (1.0 - 1e-12) {
        let lambdas = problem.queues.iter().map(|q| q.util_cap * (lam / cap)).collect();
        return Ok(problem.solution_from(lambdas, None));
    }

    // validate() guarantees the weight is non-negative.
    if problem.delay_weight <= 0.0 {
        return solve_linear_greedy(problem);
    }

    // Regime 1: electricity-active (penalty weight = A everywhere).
    let (cand_active, nu_active) = solve_linear_penalty(problem, problem.energy_weight)?;
    let p_active = problem.power(&cand_active);
    let r = problem.renewable;
    if p_active >= r * (1.0 - KINK_TOL) || problem.energy_weight <= 0.0 {
        return Ok(problem.solution_from(cand_active, Some(nu_active)));
    }

    // Regime 2: renewable-slack (penalty weight = 0).
    let (cand_slack, nu_slack) = solve_linear_penalty(problem, 0.0)?;
    let p_slack = problem.power(&cand_slack);
    if p_slack <= r * (1.0 + KINK_TOL) {
        return Ok(problem.solution_from(cand_slack, Some(nu_slack)));
    }

    // Regime 3: optimum sits on the kink (total power = r). Power is
    // non-increasing in the effective energy weight μ; bisect μ ∈ [0, A].
    // The f_tol must be tight: at the kink the objective depends
    // first-order on the stopping power gap (error ≈ A·|power − r|), so a
    // loose tolerance here leaks straight into the objective and breaks the
    // 1e-9 cold-vs-incremental differential guarantee. The interval guard
    // in the search caps the extra iterations near machine precision.
    let opts = BisectOptions { x_tol: 0.0, f_tol: r.abs().max(1.0) * 1e-13, max_iter: 200 };
    let mu = bisect_increasing(
        0.0,
        problem.energy_weight,
        |mu| {
            // increasing in μ: r − power(μ) (power decreases with μ)
            match solve_linear_penalty(problem, mu) {
                Ok((l, _)) => r - problem.power(&l),
                Err(_) => f64::NAN,
            }
        },
        opts,
    )?;
    let (cand_kink, nu_kink) = solve_linear_penalty(problem, mu)?;

    // Defensive: the regime analysis is exact in theory; numerically we pick
    // the best of the three candidates under the true objective.
    let mut best: Option<(Vec<f64>, f64, f64)> = None;
    for (cand, nu) in [(cand_active, nu_active), (cand_slack, nu_slack), (cand_kink, nu_kink)] {
        let obj = problem.objective(&cand);
        if !obj.is_finite() {
            return Err(OptError::NonFinite(format!(
                "candidate objective {obj} in water-filling regime selection"
            )));
        }
        if best.as_ref().is_none_or(|(_, _, b)| obj < *b) {
            best = Some((cand, nu, obj));
        }
    }
    let (best, nu, _) = best.ok_or_else(|| {
        OptError::Infeasible("no water-filling candidate produced".into())
    })?;
    Ok(problem.solution_from(best, Some(nu)))
}

/// Solves the load-distribution problem with an additional **peak-power
/// constraint** `P₀ + Σ mᵢcᵢλᵢ ≤ power_cap` (the paper's Sec. 3.1 remark
/// that "additional constraints, such as peak power … can also be
/// incorporated").
///
/// If the unconstrained optimum already satisfies the cap it is returned
/// unchanged; otherwise the optimum pins total power to the cap, found by
/// bisecting an effective energy weight (power is non-increasing in it).
/// Errors with [`OptError::Infeasible`] when even the power-minimal
/// distribution exceeds the cap.
pub fn solve_with_power_cap(
    problem: &LoadDistProblem<'_>,
    power_cap: f64,
) -> Result<LoadDistSolution> {
    if !(power_cap.is_finite() && power_cap >= 0.0) {
        return Err(OptError::InvalidInput(format!("power_cap must be ≥ 0, got {power_cap}")));
    }
    let unconstrained = solve(problem)?;
    if unconstrained.power <= power_cap * (1.0 + 1e-12) {
        return Ok(unconstrained);
    }
    // Power floor: the power-minimal feasible dispatch is the W = 0 greedy
    // fill by ascending energy slope (computed exactly — the water-filling
    // with an extreme energy weight would lose the slope differences to
    // floating-point cancellation).
    let floor_problem = LoadDistProblem {
        queues: problem.queues,
        total_load: problem.total_load,
        energy_weight: 1.0,
        delay_weight: 0.0,
        base_power: problem.base_power,
        renewable: problem.renewable,
    };
    let floor_sol = solve(&floor_problem)?;
    let floor_power = problem.power(&floor_sol.lambdas);
    if floor_power > power_cap * (1.0 + 1e-9) {
        return Err(OptError::Infeasible(format!(
            "power floor {floor_power} exceeds cap {power_cap}"
        )));
    }
    // validate() guarantees the weight is non-negative.
    if problem.delay_weight <= 0.0 {
        return Ok(problem.solution_from(floor_sol.lambdas, None));
    }
    // Bisect the effective weight so that power == cap. Power is
    // non-increasing in a_eff, so (power_cap − power(a_eff)) is increasing.
    let lo = problem.energy_weight;
    let power_at = |a: f64| -> f64 {
        match solve_linear_penalty(problem, a) {
            Ok((l, _)) => problem.power(&l),
            Err(_) => f64::NAN,
        }
    };
    let hi = match grow_upper_bracket(lo.max(1.0) * 2.0, |a| power_cap - power_at(a), 80) {
        Ok(hi) => hi,
        // The bracket may fail to close when the cap sits within a whisker
        // of the floor (the required multiplier is astronomically large);
        // the θ-blend below still produces the exact boundary point.
        Err(_) => lo.max(1.0) * 2.0_f64.powi(80),
    };
    let opts = BisectOptions { x_tol: 0.0, f_tol: power_cap.max(1.0) * 1e-10, max_iter: 200 };
    let a_star = bisect_increasing(lo, hi, |a| power_cap - power_at(a), opts)?;
    let (lambdas, nu_star) = solve_linear_penalty(problem, a_star)?;
    let sol = problem.solution_from(lambdas, Some(nu_star));
    if sol.power <= power_cap * (1.0 + 1e-9) {
        return Ok(sol);
    }
    // Feasibility repair: power is affine in λ⃗ and the feasible set is
    // convex, so the blend θ·floor + (1−θ)·current with
    // θ = (P_cur − cap)/(P_cur − P_floor) lands exactly on the cap while
    // staying feasible (and near-optimal: the objective is convex, both
    // endpoints bracket the optimum's active face).
    let theta = ((sol.power - power_cap) / (sol.power - floor_power)).clamp(0.0, 1.0);
    let blended: Vec<f64> = sol
        .lambdas
        .iter()
        .zip(&floor_sol.lambdas)
        .map(|(a, b)| (1.0 - theta) * a + theta * b)
        .collect();
    Ok(problem.solution_from(blended, None))
}

// The helpers below sit on the per-proposal delta-update path of the GSD
// engines (via `WarmWaterfill`): they must stay allocation-free.
// audit:hot-path: begin

/// Closed-form per-queue load at water level `nu` for a fixed linear energy
/// weight `a_eff` — the KKT stationarity condition
/// `λᵢ(ν) = clip(Xᵢ − √(W·Xᵢ/(ν − a_eff·cᵢ)), 0, uᵢ)`. Shared verbatim by
/// the cold and the warm-started solver so the two paths are bit-identical
/// at equal water levels.
#[inline]
fn lambda_at(q: &QueueSpec, nu: f64, a_eff: f64, w: f64) -> f64 {
    debug_assert!(q.capacity > 0.0, "validated at entry");
    let gap = nu - a_eff * q.energy_slope;
    if gap <= w / q.capacity {
        // marginal cost at λᵢ=0 already exceeds the water level
        0.0
    } else {
        (q.capacity - (w * q.capacity / gap).sqrt()).clamp(0.0, q.util_cap)
    }
}

/// Aggregate load and its ν-derivative in one pass, writing each row's
/// clipped load (exactly [`lambda_at`]'s value) into `out`. For an interior
/// row, λᵢ = Xᵢ − √(W·Xᵢ/gap) gives dλᵢ/dν = (Xᵢ − λᵢ)/(2·gap); rows
/// clipped at 0 or uᵢ contribute zero slope. The slope reuses the √ already
/// computed for the load, so a Newton evaluation costs the same as a plain
/// one, and the caller can use the rows of the accepting evaluation as the
/// final loads without another pass.
fn total_slope_into(
    queues: &[QueueSpec],
    nu: f64,
    a_eff: f64,
    w: f64,
    out: &mut Vec<f64>,
) -> (f64, f64) {
    out.clear();
    let mut total = 0.0;
    let mut slope = 0.0;
    debug_assert!(queues.iter().all(|q| q.capacity > 0.0), "validated at entry");
    for q in queues {
        let gap = nu - a_eff * q.energy_slope;
        if gap <= w / q.capacity {
            out.push(0.0);
            continue;
        }
        debug_assert!(gap > 0.0, "positive by the branch above");
        // gap > W/Xᵢ implies √(W·Xᵢ/gap) < Xᵢ, so the unclipped load is
        // strictly positive here.
        let root = (w * q.capacity / gap).sqrt();
        let l = q.capacity - root;
        if l >= q.util_cap {
            out.push(q.util_cap);
            total += q.multiplicity * q.util_cap;
        } else {
            out.push(l);
            total += q.multiplicity * l;
            slope += q.multiplicity * root / (2.0 * gap);
        }
    }
    (total, slope)
}

/// Removes the residual bisection error by rescaling the interior
/// coordinates (those strictly between the bounds absorb the slack).
fn rescale_interior(lambdas: &mut [f64], queues: &[QueueSpec], lam: f64) {
    let total: f64 = lambdas.iter().zip(queues).map(|(l, q)| l * q.multiplicity).sum();
    let slack = lam - total;
    if slack.abs() > 0.0 {
        let interior: f64 = lambdas
            .iter()
            .zip(queues)
            .filter(|(l, q)| **l > 0.0 && **l < q.util_cap)
            .map(|(l, q)| *l * q.multiplicity)
            .sum();
        if interior > 0.0 {
            for (l, q) in lambdas.iter_mut().zip(queues) {
                if *l > 0.0 && *l < q.util_cap {
                    *l = (*l + (slack / interior) * *l).clamp(0.0, q.util_cap);
                }
            }
        } else if slack > 0.0 {
            // All active coordinates are pinned; spread the remainder over
            // queues with headroom (rare: only when bisection stopped early).
            distribute_remainder(lambdas, queues, slack);
        }
    }
}

// audit:hot-path: end

/// Lower bisection bracket: the smallest marginal cost at zero load. The
/// aggregate load is exactly zero at this water level, so it always sits
/// weakly below the root.
fn nu_lower_bound(queues: &[QueueSpec], a_eff: f64, w: f64) -> f64 {
    debug_assert!(queues.iter().all(|q| q.capacity > 0.0), "validated at entry");
    queues
        .iter()
        .map(|q| a_eff * q.energy_slope + w / q.capacity)
        .fold(f64::INFINITY, f64::min)
}

/// Shared bisection tolerances for the water-level search (identical for
/// the cold and warm paths — warm starting changes the bracket, never the
/// stopping rule, so the two agree to bisection tolerance).
fn nu_bisect_options(lam: f64) -> BisectOptions {
    BisectOptions { x_tol: 0.0, f_tol: lam * 1e-12, max_iter: 200 }
}

/// Water-filling for the smooth relaxation with a fixed linear energy weight
/// `a_eff` (the `[·]⁺` replaced by identity):
/// `min Σ mᵢ(a_eff·cᵢ·λᵢ + W·λᵢ/(Xᵢ−λᵢ))` s.t. `Σ mᵢλᵢ = λ`, `0 ≤ λᵢ ≤ uᵢ`.
///
/// The per-queue load [`lambda_at`] is non-decreasing in the multiplier ν,
/// so the coupling constraint is met by bisection. Returns the loads and
/// the water level ν they were generated from.
fn solve_linear_penalty(problem: &LoadDistProblem<'_>, a_eff: f64) -> Result<(Vec<f64>, f64)> {
    let w = problem.delay_weight;
    let lam = problem.total_load;
    let queues = problem.queues;

    let total_of = |nu: f64| -> f64 {
        queues.iter().map(|q| q.multiplicity * lambda_at(q, nu, a_eff, w)).sum()
    };

    let nu_lo = nu_lower_bound(queues, a_eff, w);
    // Upper bracket: grow until the water level covers the demand.
    let start = (nu_lo.abs().max(1.0)) * 2.0;
    let nu_hi = grow_upper_bracket(start, |nu| total_of(nu) - lam, 200)?;

    let nu = bisect_increasing(nu_lo, nu_hi, |nu| total_of(nu) - lam, nu_bisect_options(lam))?;
    let mut lambdas: Vec<f64> = queues.iter().map(|q| lambda_at(q, nu, a_eff, w)).collect();
    rescale_interior(&mut lambdas, queues, lam);
    Ok((lambdas, nu))
}

/// Relative half-width of the warm bisection bracket seeded from the
/// previous water level. A single-group flip in a ~200-group fleet moves ν
/// by far less than this; a miss only costs the two sign-check evaluations
/// before the cold fallback. Public so the distributed GSD coordinator
/// applies the identical warm-bracket/fallback rule.
pub const WARM_BRACKET_SPAN: f64 = 0.05;

/// Scalar outcome of a [`WarmWaterfill::solve`]. The per-queue loads stay
/// in the solver's scratch buffer — read them via
/// [`WarmWaterfill::lambdas`] — so the hot loop never allocates a result
/// vector.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use]
pub struct WarmOutcome {
    /// Objective value `A·[power − r]⁺ + W·Σ mᵢ dᵢ`.
    pub objective: f64,
    /// Total power `P₀ + Σ mᵢ cᵢ λᵢ`.
    pub power: f64,
    /// Total (unweighted) delay cost.
    pub delay: f64,
    /// Water level ν of the winning regime (`None` on closed-form paths:
    /// zero load, saturated caps, `W = 0` greedy).
    pub water_level: Option<f64>,
}

/// Warm-started, allocation-free re-solver for *streams* of nearby
/// load-distribution problems — the per-proposal cost oracle of the GSD
/// engines, where each Gibbs proposal flips one group's speed level and the
/// optimal water level drifts only slightly.
///
/// Differences from the cold [`solve`]:
///
/// * **Warm brackets.** The previous water level ν (one slot per penalty
///   regime) and boundary weight μ seed the next bisection bracket
///   (±[`WARM_BRACKET_SPAN`] relative). Because [`bisect_increasing`]
///   clamps to an endpoint when the root lies outside the bracket, a warm
///   bracket is only used after verifying `f(lo) ≤ 0 ≤ f(hi)`; on a miss
///   the solver falls back to the cold bracket
///   (`nu_lower_bound` + [`grow_upper_bracket`]).
/// * **Scratch buffers.** Per-queue loads live in reusable buffers; the
///   steady-state solve performs no heap allocation.
///
/// Both searches run [`illinois_increasing`] with the *same stopping
/// tolerances* as the cold path's bisections, so results agree with
/// [`solve`] to the stopping-tolerance band (≤ 1e-9 relative on the
/// objective — pinned by the differential property test in `coca-core`),
/// and the paper-invariant hooks (load conservation + KKT residual) fire on
/// every warm solve exactly as they do in [`solve`].
#[derive(Debug, Default)]
pub struct WarmWaterfill {
    /// Previous water level of the electricity-active regime (`a_eff = A`).
    nu_active: Option<f64>,
    /// Previous water level of the renewable-slack regime (`a_eff = 0`).
    nu_slack: Option<f64>,
    /// Previous water level seen inside the kink μ-search trials.
    nu_kink: Option<f64>,
    /// Previous boundary weight μ* of the kink regime.
    mu: Option<f64>,
    /// Per-queue loads of the winning candidate after [`Self::solve`].
    lambdas: Vec<f64>,
    /// Candidate buffer for the regime comparison (swapped, never cloned).
    scratch: Vec<f64>,
    /// Water-level function evaluations spent in the most recent solve
    /// (each one is an O(queues) pass; the cold path spends roughly
    /// 50–250 of these per regime, the warm path a handful).
    pub last_evals: u64,
}

impl WarmWaterfill {
    /// Fresh solver with no warm-start state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all warm brackets (e.g. when the slot parameters change so the
    /// previous water level is no longer informative).
    pub fn reset(&mut self) {
        self.nu_active = None;
        self.nu_slack = None;
        self.nu_kink = None;
        self.mu = None;
        self.last_evals = 0;
    }

    /// Per-queue loads of the most recent [`Self::solve`] (same order as
    /// the input queue types).
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Solves the load-distribution problem, reusing warm-start state from
    /// the previous call. Fires the same paper-invariant hooks as the cold
    /// [`solve`].
    ///
    /// # Errors
    /// Same contract as [`solve`]: invalid input, infeasible load, or a
    /// bisection that fails to converge.
    pub fn solve(&mut self, problem: &LoadDistProblem<'_>) -> Result<WarmOutcome> {
        self.last_evals = 0;
        let out = self.solve_inner(problem)?;
        let inv = crate::invariant::global();
        inv.load_conserved(problem.dispatched(&self.lambdas), problem.total_load);
        inv.kkt(problem, &self.lambdas);
        Ok(out)
    }

    /// Scalar summary of the loads currently held in `self.lambdas`.
    fn outcome_of(&self, problem: &LoadDistProblem<'_>, water_level: Option<f64>) -> WarmOutcome {
        self.outcome_with_power(problem, problem.power(&self.lambdas), water_level)
    }

    /// [`Self::outcome_of`] when the caller already computed the facility
    /// power of `self.lambdas` — skips one O(n) pass on the hot path.
    fn outcome_with_power(
        &self,
        problem: &LoadDistProblem<'_>,
        power: f64,
        water_level: Option<f64>,
    ) -> WarmOutcome {
        let delay = problem.delay(&self.lambdas);
        let objective =
            problem.energy_weight * pos(power - problem.renewable) + problem.delay_weight * delay;
        WarmOutcome { objective, power, delay, water_level }
    }

    /// Mirrors [`solve_unchecked`] branch for branch; only the bracket
    /// seeding and the buffer management differ.
    fn solve_inner(&mut self, problem: &LoadDistProblem<'_>) -> Result<WarmOutcome> {
        problem.validate()?;
        let n = problem.queues.len();
        let lam = problem.total_load;
        self.lambdas.clear();
        self.lambdas.resize(n, 0.0);
        // validate() guarantees lam >= 0, so `<=` is the exact-zero test.
        if lam <= 0.0 {
            return Ok(self.outcome_of(problem, None));
        }
        if n == 0 {
            return Err(OptError::Infeasible("positive load but no active queues".into()));
        }
        let cap = problem.capped_capacity();
        if lam > cap * (1.0 + 1e-12) {
            return Err(OptError::Infeasible(format!(
                "total load {lam} exceeds capped capacity {cap}"
            )));
        }
        // Saturated case: every queue pinned at (a fraction of) its cap.
        if lam >= cap * (1.0 - 1e-12) {
            for (l, q) in self.lambdas.iter_mut().zip(problem.queues) {
                *l = q.util_cap * (lam / cap);
            }
            return Ok(self.outcome_of(problem, None));
        }
        // W = 0 degenerates to the greedy LP; it needs a sort permutation,
        // so delegate to the cold path (the per-slot oracle always has
        // W = V·β > 0, so this never runs inside the proposal loop).
        if problem.delay_weight <= 0.0 {
            let sol = solve_linear_greedy(problem)?;
            self.lambdas.copy_from_slice(&sol.lambdas);
            return Ok(WarmOutcome {
                objective: sol.objective,
                power: sol.power,
                delay: sol.delay,
                water_level: None,
            });
        }

        let r = problem.renewable;

        // Regime 1: electricity-active (penalty weight = A everywhere).
        let nu_active = self.penalty_into_scratch(problem, problem.energy_weight, self.nu_active)?;
        self.nu_active = Some(nu_active);
        std::mem::swap(&mut self.lambdas, &mut self.scratch);
        let p_active = problem.power(&self.lambdas);
        if p_active >= r * (1.0 - KINK_TOL) || problem.energy_weight <= 0.0 {
            return Ok(self.outcome_with_power(problem, p_active, Some(nu_active)));
        }
        let mut best_obj = problem.objective(&self.lambdas);
        let mut best_nu = nu_active;

        // Regime 2: renewable-slack (penalty weight = 0).
        let nu_slack = self.penalty_into_scratch(problem, 0.0, self.nu_slack)?;
        self.nu_slack = Some(nu_slack);
        let p_slack = problem.power(&self.scratch);
        if p_slack <= r * (1.0 + KINK_TOL) {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            return Ok(self.outcome_with_power(problem, p_slack, Some(nu_slack)));
        }
        let obj_slack = problem.objective(&self.scratch);
        if obj_slack < best_obj {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            best_obj = obj_slack;
            best_nu = nu_slack;
        }

        // Regime 3: the optimum pins total power to r; bisect the effective
        // energy weight μ ∈ [0, A] exactly as the cold path does, but seed
        // the bracket from the previous μ*.
        let mu = self.bisect_mu(problem)?;
        self.mu = Some(mu);
        let nu_kink = self.penalty_into_scratch(problem, mu, self.nu_kink)?;
        self.nu_kink = Some(nu_kink);
        let obj_kink = problem.objective(&self.scratch);
        if !best_obj.is_finite() || !obj_kink.is_finite() {
            return Err(OptError::NonFinite(format!(
                "candidate objectives {best_obj}/{obj_kink} in warm regime selection"
            )));
        }
        if obj_kink < best_obj {
            std::mem::swap(&mut self.lambdas, &mut self.scratch);
            best_nu = nu_kink;
        }
        Ok(self.outcome_of(problem, Some(best_nu)))
    }

    /// Kink-regime μ-search: `g(μ) = r − power(μ)` is increasing in μ. The
    /// bracket is seeded from the previous μ* (±[`WARM_BRACKET_SPAN`]·A),
    /// sign-verified, and widened back to the cold `[0, A]` on a miss.
    fn bisect_mu(&mut self, problem: &LoadDistProblem<'_>) -> Result<f64> {
        let r = problem.renewable;
        let a = problem.energy_weight;
        // Same tight f_tol as the cold regime-3 search: kink objectives are
        // first-order sensitive to the stopping power gap.
        let opts = BisectOptions { x_tol: 0.0, f_tol: r.abs().max(1.0) * 1e-13, max_iter: 200 };
        let power_gap = |this: &mut Self, mu: f64| -> f64 {
            match this.penalty_into_scratch(problem, mu, this.nu_kink) {
                Ok(nu) => {
                    this.nu_kink = Some(nu);
                    r - problem.power(&this.scratch)
                }
                Err(_) => f64::NAN,
            }
        };
        // Each power_gap evaluation is a full inner ν-solve, so the warm
        // bracket hands its verification values to the seeded search and a
        // sign miss shrinks to the known-good side of `[0, A]` (the kink
        // regime guarantees g(0) < 0 < g(A)) instead of restarting cold.
        if let Some(prev) = self.mu {
            if prev.is_finite() {
                let half = WARM_BRACKET_SPAN * a;
                let wlo = (prev - half).max(0.0);
                let whi = (prev + half).min(a);
                if wlo < whi {
                    let glo = power_gap(self, wlo);
                    if glo.is_finite() {
                        if glo > 0.0 {
                            let g0 = power_gap(self, 0.0);
                            if g0.is_finite() && g0 <= 0.0 {
                                return illinois_seeded(
                                    0.0,
                                    wlo,
                                    g0,
                                    glo,
                                    |mu| power_gap(self, mu),
                                    opts,
                                );
                            }
                        } else {
                            let ghi = power_gap(self, whi);
                            if ghi.is_finite() && ghi >= 0.0 {
                                return illinois_seeded(
                                    wlo,
                                    whi,
                                    glo,
                                    ghi,
                                    |mu| power_gap(self, mu),
                                    opts,
                                );
                            }
                            if ghi.is_finite() && whi < a {
                                let ga = power_gap(self, a);
                                if ga.is_finite() && ga >= 0.0 {
                                    return illinois_seeded(
                                        whi,
                                        a,
                                        ghi,
                                        ga,
                                        |mu| power_gap(self, mu),
                                        opts,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        illinois_increasing(0.0, a, |mu| power_gap(self, mu), opts)
    }

    /// Warm-bracketed [`solve_linear_penalty`]: same water-level search and
    /// interior rescale, but the loads land in `self.scratch` and the
    /// bracket is seeded from `warm` when the sign check passes.
    fn penalty_into_scratch(
        &mut self,
        problem: &LoadDistProblem<'_>,
        a_eff: f64,
        warm: Option<f64>,
    ) -> Result<f64> {
        let w = problem.delay_weight;
        let lam = problem.total_load;
        let queues = problem.queues;
        let evals = std::cell::Cell::new(0u64);

        // audit:hot-path: begin
        let total_of = |nu: f64| -> f64 {
            evals.set(evals.get() + 1);
            queues.iter().map(|q| q.multiplicity * lambda_at(q, nu, a_eff, w)).sum()
        };
        let nu_lo = nu_lower_bound(queues, a_eff, w);
        let opts = nu_bisect_options(lam);
        // Newton from the previous slot's water level: `g` is piecewise
        // concave and increasing, so from a warm start the iteration
        // typically lands within `f_tol` in 2–3 evaluations — the stopping
        // rule is the same `|g| ≤ f_tol` as the bracketed search, so the
        // answer agrees with it (and with cold bisection) to tolerance.
        // Each evaluation writes the row loads into `self.scratch`, so the
        // accepting iteration IS the final fill — no extra O(n) pass.
        // Activation kinks can make Newton oscillate; any sign of trouble
        // (flat slope, leaving the domain, iteration cap) falls through to
        // the sign-safe bracketed search below.
        if let Some(prev) = warm {
            if prev.is_finite() && prev > nu_lo {
                let mut nu = prev;
                for _ in 0..8 {
                    evals.set(evals.get() + 1);
                    let (total, slope) =
                        total_slope_into(queues, nu, a_eff, w, &mut self.scratch);
                    let g = total - lam;
                    if !g.is_finite() {
                        break;
                    }
                    if g.abs() <= opts.f_tol {
                        rescale_interior(&mut self.scratch, queues, lam);
                        self.last_evals += evals.get();
                        return Ok(nu);
                    }
                    if slope.is_nan() || slope <= 0.0 {
                        break;
                    }
                    let next = nu - g / slope;
                    if !next.is_finite() || next <= nu_lo {
                        break;
                    }
                    nu = next;
                }
            }
        }
        // Warm bracket `prev·(1 ± span)`, sign-verified before use
        // (`bisect_increasing`/Illinois clamp to an endpoint on a violated
        // bracket, so an unverified bracket would silently return a wrong
        // level). Every verification evaluation is handed to
        // [`illinois_seeded`] instead of being recomputed, and a miss keeps
        // the sign information: a root below the warm bracket is bracketed
        // by `[nu_lo, lo]` for free (aggregate load is exactly zero at
        // `nu_lo`, so `f(nu_lo) = −λ`), a root above it grows upward from
        // `hi` instead of restarting cold.
        let nu = 'search: {
            if let Some(prev) = warm {
                // The root always sits above nu_lo (aggregate load is zero
                // there), so a previous level at or below it cannot bracket.
                if prev.is_finite() && prev > nu_lo {
                    let lo = (prev * (1.0 - WARM_BRACKET_SPAN)).max(nu_lo);
                    let hi = prev * (1.0 + WARM_BRACKET_SPAN);
                    let glo = total_of(lo) - lam;
                    if !glo.is_finite() {
                        // Terminal error path, never taken per-proposal. audit:allow(hot-alloc)
                        return Err(OptError::NonFinite(format!("f({lo}) = {glo}")));
                    }
                    if glo > 0.0 {
                        break 'search illinois_seeded(
                            nu_lo,
                            lo,
                            -lam,
                            glo,
                            |nu| total_of(nu) - lam,
                            opts,
                        )?;
                    }
                    let ghi = total_of(hi) - lam;
                    if !ghi.is_finite() {
                        // Terminal error path, never taken per-proposal. audit:allow(hot-alloc)
                        return Err(OptError::NonFinite(format!("f({hi}) = {ghi}")));
                    }
                    if ghi >= 0.0 {
                        break 'search illinois_seeded(
                            lo,
                            hi,
                            glo,
                            ghi,
                            |nu| total_of(nu) - lam,
                            opts,
                        )?;
                    }
                    let nu_hi = grow_upper_bracket(hi * 2.0, |nu| total_of(nu) - lam, 200)?;
                    break 'search illinois_seeded(
                        hi,
                        nu_hi,
                        ghi,
                        total_of(nu_hi) - lam,
                        |nu| total_of(nu) - lam,
                        opts,
                    )?;
                }
            }
            // Cold path (no usable previous level): grow the upper bracket
            // by doubling, exactly like `solve_linear_penalty`.
            let start = (nu_lo.abs().max(1.0)) * 2.0;
            let nu_hi = grow_upper_bracket(start, |nu| total_of(nu) - lam, 200)?;
            illinois_increasing(nu_lo, nu_hi, |nu| total_of(nu) - lam, opts)?
        };

        self.scratch.clear();
        for q in queues {
            self.scratch.push(lambda_at(q, nu, a_eff, w));
        }
        rescale_interior(&mut self.scratch, queues, lam);
        // audit:hot-path: end
        self.last_evals += evals.get();
        Ok(nu)
    }
}

/// Greedy fill by ascending marginal energy cost for the `W = 0` LP.
fn solve_linear_greedy(problem: &LoadDistProblem<'_>) -> Result<LoadDistSolution> {
    if let Some(q) = problem.queues.iter().find(|q| !q.energy_slope.is_finite()) {
        return Err(OptError::NonFinite(format!(
            "energy slope {} in greedy fill",
            q.energy_slope
        )));
    }
    let mut order: Vec<usize> = (0..problem.queues.len()).collect();
    order.sort_by(|&a, &b| {
        problem.queues[a]
            .energy_slope
            .total_cmp(&problem.queues[b].energy_slope)
    });
    let mut lambdas = vec![0.0; problem.queues.len()];
    let mut remaining = problem.total_load;
    for idx in order {
        if remaining <= 0.0 {
            break;
        }
        let q = &problem.queues[idx];
        debug_assert!(q.multiplicity >= 1.0, "validated at entry");
        let take = remaining.min(q.util_cap * q.multiplicity);
        lambdas[idx] = take / q.multiplicity;
        remaining -= take;
    }
    if remaining > problem.total_load * 1e-12 {
        return Err(OptError::Infeasible(format!("greedy fill left {remaining} unassigned")));
    }
    Ok(problem.solution_from(lambdas, None))
}

fn distribute_remainder(lambdas: &mut [f64], queues: &[QueueSpec], mut slack: f64) {
    for (l, q) in lambdas.iter_mut().zip(queues) {
        if slack <= 0.0 {
            break;
        }
        debug_assert!(q.multiplicity >= 1.0, "validated at entry");
        let headroom = (q.util_cap - *l) * q.multiplicity;
        let take = headroom.min(slack);
        *l += take / q.multiplicity;
        slack -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homogeneous(n: usize, capacity: f64, gamma: f64, slope: f64) -> Vec<QueueSpec> {
        (0..n).map(|_| QueueSpec::single(capacity, gamma * capacity, slope)).collect()
    }

    fn problem<'a>(queues: &'a [QueueSpec], lam: f64, a: f64, w: f64, r: f64) -> LoadDistProblem<'a> {
        LoadDistProblem {
            queues,
            total_load: lam,
            energy_weight: a,
            delay_weight: w,
            base_power: 0.0,
            renewable: r,
        }
    }

    #[test]
    fn zero_load_gives_zero_everything() {
        let qs = homogeneous(4, 10.0, 0.9, 0.1);
        let p = problem(&qs, 0.0, 1.0, 1.0, 0.0);
        let s = solve(&p).unwrap();
        assert_eq!(s.lambdas, vec![0.0; 4]);
        assert_eq!(s.objective, 0.0);
    }

    #[test]
    fn homogeneous_split_is_even() {
        let qs = homogeneous(5, 10.0, 0.9, 0.1);
        let p = problem(&qs, 20.0, 2.0, 3.0, 0.0);
        let s = solve(&p).unwrap();
        for &l in &s.lambdas {
            assert!((l - 4.0).abs() < 1e-7, "expected even split, got {:?}", s.lambdas);
        }
        let sum: f64 = s.lambdas.iter().sum();
        assert!((sum - 20.0).abs() < 1e-9);
    }

    #[test]
    fn favors_energy_cheap_queue() {
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 0.05),
            QueueSpec::single(10.0, 9.0, 0.50),
        ];
        let p = problem(&qs, 8.0, 10.0, 1.0, 0.0);
        let s = solve(&p).unwrap();
        assert!(
            s.lambdas[0] > s.lambdas[1],
            "cheap queue should carry more load: {:?}",
            s.lambdas
        );
    }

    #[test]
    fn respects_utilization_caps() {
        let qs = vec![
            QueueSpec::single(10.0, 2.0, 0.0),
            QueueSpec::single(10.0, 9.5, 0.0),
        ];
        let p = problem(&qs, 10.0, 1.0, 1.0, 0.0);
        let s = solve(&p).unwrap();
        assert!(s.lambdas[0] <= 2.0 + 1e-9);
        let sum: f64 = s.lambdas.iter().sum();
        assert!((sum - 10.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_load_rejected() {
        let qs = homogeneous(2, 10.0, 0.9, 0.1);
        let p = problem(&qs, 18.5, 1.0, 1.0, 0.0);
        assert!(matches!(solve(&p), Err(OptError::Infeasible(_))));
    }

    #[test]
    fn saturated_load_pins_all_caps() {
        let qs = homogeneous(3, 10.0, 0.9, 0.1);
        let p = problem(&qs, 27.0, 1.0, 1.0, 0.0);
        let s = solve(&p).unwrap();
        for &l in &s.lambdas {
            assert!((l - 9.0).abs() < 1e-9);
        }
    }

    #[test]
    fn renewable_slack_regime_ignores_energy_weight() {
        // Huge renewable supply: the [·]⁺ term is dead, the optimum is the
        // delay-only water-filling regardless of A.
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 0.05),
            QueueSpec::single(20.0, 18.0, 0.50),
        ];
        let p_slack = problem(&qs, 9.0, 1000.0, 1.0, 1e9);
        let p_delay_only = problem(&qs, 9.0, 0.0, 1.0, 0.0);
        let s1 = solve(&p_slack).unwrap();
        let s2 = solve(&p_delay_only).unwrap();
        for (a, b) in s1.lambdas.iter().zip(&s2.lambdas) {
            assert!((a - b).abs() < 1e-6, "{:?} vs {:?}", s1.lambdas, s2.lambdas);
        }
        assert!(s1.objective <= s2.objective + 1e-9, "slack objective drops the A term");
    }

    #[test]
    fn kink_regime_pins_power_to_renewable() {
        // Construct an instance where the electricity-active optimum uses
        // less power than r, but the delay-only optimum uses more: the true
        // optimum must sit at power == r.
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 1.0),
            QueueSpec::single(10.0, 9.0, 3.0),
        ];
        // With a strong energy weight, load piles onto queue 0 (cheap), using
        // little total power; with A=0 the split is even, using more power.
        let lam = 10.0;
        let a = 50.0;
        let w = 1.0;
        // Even split power = 5*1 + 5*3 = 20. Skewed split power < 20.
        let r = 16.0;
        let p = problem(&qs, lam, a, w, r);
        let s = solve(&p).unwrap();
        let active = solve(&problem(&qs, lam, a, w, 0.0)).unwrap();
        let slack = solve(&problem(&qs, lam, 0.0, w, 0.0)).unwrap();
        assert!(active.power < r && slack.power > r, "test setup must straddle the kink");
        assert!(
            (s.power - r).abs() < 1e-5,
            "optimum should pin power to r: power={} r={}",
            s.power,
            r
        );
    }

    #[test]
    fn zero_delay_weight_greedy_fill() {
        let qs = vec![
            QueueSpec::single(10.0, 5.0, 0.9),
            QueueSpec::single(10.0, 5.0, 0.1),
        ];
        let p = problem(&qs, 6.0, 1.0, 0.0, 0.0);
        let s = solve(&p).unwrap();
        assert!((s.lambdas[1] - 5.0).abs() < 1e-12, "cheap queue filled first");
        assert!((s.lambdas[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_delay_weight_greedy_respects_multiplicity() {
        let qs = vec![
            QueueSpec { capacity: 10.0, util_cap: 5.0, energy_slope: 0.1, multiplicity: 3.0 },
            QueueSpec::single(10.0, 5.0, 0.9),
        ];
        let p = problem(&qs, 16.0, 1.0, 0.0, 0.0);
        let s = solve(&p).unwrap();
        // Cheap type holds 3 queues × 5 = 15; remaining 1 on the other.
        assert!((s.lambdas[0] - 5.0).abs() < 1e-12);
        assert!((s.lambdas[1] - 1.0).abs() < 1e-12);
        assert!((p.dispatched(&s.lambdas) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn objective_matches_components() {
        let qs = homogeneous(3, 12.0, 0.95, 0.2);
        let p = LoadDistProblem {
            queues: &qs,
            total_load: 15.0,
            energy_weight: 4.0,
            delay_weight: 2.0,
            base_power: 1.5,
            renewable: 2.0,
        };
        let s = solve(&p).unwrap();
        let expected = 4.0 * pos(s.power - 2.0) + 2.0 * s.delay;
        assert!((s.objective - expected).abs() < 1e-12);
        assert!((s.power - p.power(&s.lambdas)).abs() < 1e-12);
    }

    #[test]
    fn multiplicity_equals_expanded_copies() {
        // One type with multiplicity 4 must match four explicit copies.
        let compact = vec![QueueSpec {
            capacity: 12.0,
            util_cap: 10.0,
            energy_slope: 0.3,
            multiplicity: 4.0,
        }];
        let expanded = homogeneous(4, 12.0, 10.0 / 12.0, 0.3);
        for &(lam, a, w, r) in &[(20.0, 2.0, 1.0, 0.0), (35.0, 0.7, 3.0, 5.0), (8.0, 5.0, 0.5, 2.0)] {
            let pc = problem(&compact, lam, a, w, r);
            let pe = problem(&expanded, lam, a, w, r);
            let sc = solve(&pc).unwrap();
            let se = solve(&pe).unwrap();
            assert!(
                (sc.objective - se.objective).abs() < 1e-6 * se.objective.max(1.0),
                "objective: compact {} vs expanded {}",
                sc.objective,
                se.objective
            );
            assert!((sc.power - se.power).abs() < 1e-6 * se.power.max(1.0));
            // Per-queue load of the compact type equals each expanded load.
            for &l in &se.lambdas {
                assert!((l - sc.lambdas[0]).abs() < 1e-6, "{l} vs {}", sc.lambdas[0]);
            }
        }
    }

    #[test]
    fn mixed_multiplicities_conserve_load() {
        let qs = vec![
            QueueSpec { capacity: 10.0, util_cap: 9.0, energy_slope: 0.1, multiplicity: 7.0 },
            QueueSpec { capacity: 20.0, util_cap: 18.0, energy_slope: 0.3, multiplicity: 2.0 },
            QueueSpec::single(15.0, 13.0, 0.2),
        ];
        let p = problem(&qs, 70.0, 3.0, 2.0, 4.0);
        let s = solve(&p).unwrap();
        assert!((p.dispatched(&s.lambdas) - 70.0).abs() < 1e-7);
        for (l, q) in s.lambdas.iter().zip(&qs) {
            assert!(*l >= 0.0 && *l <= q.util_cap + 1e-9);
        }
    }

    #[test]
    fn matches_dense_grid_on_two_queues() {
        // Brute-force the 2-queue problem on a fine grid and compare.
        let qs = vec![
            QueueSpec::single(8.0, 7.0, 0.3),
            QueueSpec::single(14.0, 12.0, 0.1),
        ];
        for &(lam, a, w, r) in &[
            (5.0, 2.0, 1.0, 0.0),
            (10.0, 0.5, 3.0, 1.0),
            (15.0, 5.0, 0.5, 2.5),
            (18.0, 1.0, 1.0, 0.0),
        ] {
            let p = problem(&qs, lam, a, w, r);
            let s = solve(&p).unwrap();
            let mut best = f64::INFINITY;
            let steps = 40_000;
            for k in 0..=steps {
                let l0 = lam * (k as f64 / steps as f64);
                let l1 = lam - l0;
                if l0 > qs[0].util_cap || l1 > qs[1].util_cap {
                    continue;
                }
                best = best.min(p.objective(&[l0, l1]));
            }
            assert!(
                s.objective <= best + best.abs() * 1e-4 + 1e-7,
                "solver {} worse than grid {} for (λ={lam}, A={a}, W={w}, r={r})",
                s.objective,
                best
            );
        }
    }

    #[test]
    fn validate_rejects_bad_queue() {
        let q = QueueSpec::single(0.0, 0.0, 0.1);
        assert!(q.validate().is_err());
        let q = QueueSpec::single(10.0, 10.0, 0.1);
        assert!(q.validate().is_err(), "util_cap must be < capacity");
        let q = QueueSpec::single(10.0, 9.0, -1.0);
        assert!(q.validate().is_err());
        let q = QueueSpec { capacity: 10.0, util_cap: 9.0, energy_slope: 0.1, multiplicity: 0.5 };
        assert!(q.validate().is_err(), "multiplicity below 1 rejected");
    }

    #[test]
    fn validate_rejects_negative_scalars() {
        let qs = homogeneous(1, 10.0, 0.9, 0.1);
        let mut p = problem(&qs, 1.0, 1.0, 1.0, 0.0);
        p.renewable = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn positive_load_with_no_queues_is_infeasible() {
        let p = problem(&[], 1.0, 1.0, 1.0, 0.0);
        assert!(matches!(solve(&p), Err(OptError::Infeasible(_))));
    }

    #[test]
    fn power_cap_slack_returns_unconstrained() {
        let qs = homogeneous(3, 10.0, 0.9, 0.5);
        let p = problem(&qs, 12.0, 1.0, 2.0, 0.0);
        let unc = solve(&p).unwrap();
        let capped = solve_with_power_cap(&p, unc.power * 2.0).unwrap();
        assert!((capped.objective - unc.objective).abs() < 1e-12);
    }

    #[test]
    fn power_cap_pins_power_to_cap() {
        // Heterogeneous slopes so the unconstrained optimum spreads load
        // and uses more power than necessary.
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 0.2),
            QueueSpec::single(10.0, 9.0, 1.0),
        ];
        let p = problem(&qs, 12.0, 0.1, 5.0, 0.0);
        let unc = solve(&p).unwrap();
        let cap = unc.power * 0.9;
        let capped = solve_with_power_cap(&p, cap).unwrap();
        assert!(capped.power <= cap * (1.0 + 1e-6), "power {} vs cap {cap}", capped.power);
        assert!((capped.power - cap).abs() < cap * 1e-4, "cap should bind");
        assert!(capped.objective >= unc.objective - 1e-9, "capping cannot help");
        // The solution is still load-conserving.
        assert!((p.dispatched(&capped.lambdas) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn power_cap_below_floor_is_infeasible() {
        let qs = homogeneous(2, 10.0, 0.9, 0.5);
        // Serving 10 load units takes at least 10·(min slope load share)…
        let p = problem(&qs, 10.0, 1.0, 1.0, 0.0);
        let r = solve_with_power_cap(&p, 0.1);
        assert!(matches!(r, Err(OptError::Infeasible(_))));
    }

    #[test]
    fn warm_solver_matches_cold_across_regime_transitions() {
        let qs = vec![
            QueueSpec::single(10.0, 9.0, 1.0),
            QueueSpec { capacity: 10.0, util_cap: 9.0, energy_slope: 3.0, multiplicity: 2.0 },
        ];
        let mut warm = WarmWaterfill::new();
        // One solver instance across the sweep so warm brackets carry over
        // regime transitions (active → kink → slack → kink again).
        for &(lam, a, w, r) in &[
            (10.0, 50.0, 1.0, 0.0),  // electricity-active
            (16.0, 50.0, 1.0, 16.0), // boundary kink
            (10.0, 50.0, 1.0, 1e9),  // renewable-slack
            (16.5, 50.0, 1.0, 16.0), // kink revisited with drifted load
            (10.1, 50.0, 1.0, 0.0),  // back to active
        ] {
            let p = problem(&qs, lam, a, w, r);
            let cold = solve(&p).unwrap();
            let out = warm.solve(&p).unwrap();
            let scale = cold.objective.abs().max(1.0);
            assert!(
                (out.objective - cold.objective).abs() <= 1e-9 * scale,
                "objective warm {} vs cold {} at (λ={lam}, A={a}, W={w}, r={r})",
                out.objective,
                cold.objective
            );
            for (wl, cl) in warm.lambdas().iter().zip(&cold.lambdas) {
                assert!((wl - cl).abs() <= 1e-9 * cl.abs().max(1.0), "{wl} vs {cl}");
            }
            let (Some(wn), Some(cn)) = (out.water_level, cold.water_level) else {
                panic!("both paths should report a water level");
            };
            assert!((wn - cn).abs() <= 1e-6 * cn.abs().max(1.0), "ν warm {wn} vs cold {cn}");
        }
    }

    #[test]
    fn warm_solver_handles_degenerate_paths() {
        let qs = homogeneous(3, 10.0, 0.9, 0.1);
        let mut warm = WarmWaterfill::new();
        // Zero load.
        let out = warm.solve(&problem(&qs, 0.0, 1.0, 1.0, 0.0)).unwrap();
        assert_eq!(out.objective, 0.0);
        assert!(warm.lambdas().iter().all(|&l| l == 0.0));
        assert!(out.water_level.is_none());
        // Saturated.
        let _ = warm.solve(&problem(&qs, 27.0, 1.0, 1.0, 0.0)).unwrap();
        assert!(warm.lambdas().iter().all(|&l| (l - 9.0).abs() < 1e-9));
        // W = 0 greedy delegation.
        let p = problem(&qs, 6.0, 1.0, 0.0, 0.0);
        let out_greedy = warm.solve(&p).unwrap();
        let cold = solve(&p).unwrap();
        assert!((out_greedy.objective - cold.objective).abs() < 1e-12);
        // Infeasible load.
        assert!(matches!(
            warm.solve(&problem(&qs, 28.0, 1.0, 1.0, 0.0)),
            Err(OptError::Infeasible(_))
        ));
    }

    #[test]
    fn power_cap_rejects_bad_input() {
        let qs = homogeneous(1, 10.0, 0.9, 0.1);
        let p = problem(&qs, 1.0, 1.0, 1.0, 0.0);
        assert!(solve_with_power_cap(&p, f64::NAN).is_err());
        assert!(solve_with_power_cap(&p, -1.0).is_err());
    }
}
