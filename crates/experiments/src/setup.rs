//! Scenario construction calibrated to the paper's Sec. 5.1.
//!
//! Calibration procedure (matching the paper's normalizations):
//!
//! 1. build the fleet and the workload/price traces;
//! 2. run the carbon-unaware minimizer with **no** renewables to measure
//!    the facility consumption `E_full`;
//! 3. scale the on-site renewable series to 20 % of `E_full`;
//! 4. re-run carbon-unaware with on-site renewables to get the reference
//!    brown consumption `E_unaware` (the paper's 1.55×10⁵ MWh);
//! 5. set the carbon budget to `budget_fraction · E_unaware` (default
//!    92 %), split 40 % off-site renewables / 60 % RECs.

use std::sync::Arc;

use coca_baselines::CarbonUnaware;
use coca_core::symmetric::SymmetricSolver;
use coca_dcsim::{run_lockstep, Cluster, CostParams, SimError, SimOutcome};
use coca_traces::{renewable, EnvironmentTrace, TraceConfig, WorkloadKind};

/// Runs the carbon-unaware reference policy over `trace` through the
/// simulation engine (the bespoke `CarbonUnaware::simulate` shortcut was
/// removed with the `SimEngine` refactor — every policy, references
/// included, goes through the same slot loop).
pub fn unaware_reference(
    cluster: &Arc<Cluster>,
    cost: CostParams,
    trace: &EnvironmentTrace,
    rec_total: f64,
) -> Result<SimOutcome, SimError> {
    let policy = CarbonUnaware::new(Arc::clone(cluster), cost, SymmetricSolver::new());
    run_lockstep(Arc::clone(cluster), trace, cost, rec_total, vec![Box::new(policy)])?
        .pop()
        .ok_or_else(|| SimError::Internal("engine produced no outcome".into()))
}

/// How big an experiment to run. The paper scale needs minutes per figure;
/// the reduced scales keep integration tests fast while exercising the
/// same code paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Number of hourly slots (paper: 8760).
    pub hours: usize,
    /// Server groups (paper: 200, multiple of 4).
    pub groups: usize,
    /// Servers per group (paper: 1080).
    pub servers_per_group: usize,
    /// Peak workload as a fraction of full-speed capacity (paper: ≈0.5).
    pub peak_util: f64,
    /// Mean electricity price ($/kWh). The paper states electricity "takes
    /// up a dominant fraction of the operational cost"; with wholesale
    /// CAISO prices (~$0.05/kWh) our pooled-delay calibration would invert
    /// that, so the default price is scaled so that electricity dominates
    /// the delay cost at the carbon-unaware operating point (DESIGN.md §4).
    pub mean_price: f64,
    /// RNG seed for the synthetic traces.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's full-scale scenario.
    pub fn paper() -> Self {
        Self { hours: 8760, groups: 200, servers_per_group: 1080, peak_util: 0.51, mean_price: 0.5, seed: 2012 }
    }

    /// A reduced scenario for quick runs and CI (~2 weeks, 8 groups).
    pub fn small() -> Self {
        Self { hours: 336, groups: 8, servers_per_group: 25, peak_util: 0.51, mean_price: 0.5, seed: 2012 }
    }

    /// A medium scenario: a full year on a reduced fleet.
    pub fn medium() -> Self {
        Self { hours: 8760, groups: 40, servers_per_group: 100, peak_util: 0.51, mean_price: 0.5, seed: 2012 }
    }
}

/// A fully calibrated experiment scenario.
#[derive(Debug, Clone)]
pub struct PaperSetup {
    /// The fleet, shared with the engines that simulate it.
    pub cluster: Arc<Cluster>,
    /// Calibrated environment (workload, on-site, off-site, price).
    pub trace: EnvironmentTrace,
    /// Cost parameters (β = 10, γ = 0.95, PUE 1.0 by default).
    pub cost: CostParams,
    /// Reference brown consumption of the carbon-unaware policy (kWh).
    pub unaware_brown_kwh: f64,
    /// Carbon budget (kWh) = `budget_fraction · unaware_brown_kwh`.
    pub budget_kwh: f64,
    /// RECs Z (kWh), 60 % of the budget.
    pub rec_total: f64,
    /// Scale used.
    pub scale: ExperimentScale,
}

impl PaperSetup {
    /// Builds and calibrates a scenario. `budget_fraction` is the paper's
    /// 92 % knob (Fig. 5 sweeps it).
    pub fn build(
        scale: ExperimentScale,
        workload: WorkloadKind,
        budget_fraction: f64,
    ) -> Result<Self, SimError> {
        assert!(budget_fraction > 0.0);
        let cluster = Arc::new(Cluster::scaled_paper_datacenter(scale.groups, scale.servers_per_group));
        let cost = CostParams::default();
        let peak = scale.peak_util * cluster.max_capacity();

        // Provisional trace without renewables.
        let base_cfg = TraceConfig {
            hours: scale.hours,
            workload_kind: workload,
            peak_arrival_rate: peak,
            onsite_energy_kwh: 0.0,
            offsite_energy_kwh: 0.0,
            mean_price: scale.mean_price,
            seed: scale.seed,
            ..Default::default()
        };
        let mut trace = base_cfg.generate();

        // Step 2: facility consumption without renewables.
        let e_full = unaware_reference(&cluster, cost, &trace, 0.0)?
            .records
            .iter()
            .map(|r| r.facility_energy)
            .sum::<f64>();

        // Step 3: on-site ≈ 20 % of consumption.
        trace.onsite = renewable::generate(
            &renewable::RenewableConfig {
                solar_share: 0.6,
                annual_energy_kwh: 0.20 * e_full,
                seed: scale.seed.wrapping_add(1),
            },
            scale.hours,
        );

        // Step 4: reference brown consumption with on-site in place.
        let unaware_brown_kwh =
            unaware_reference(&cluster, cost, &trace, 0.0)?.total_brown_energy();

        // Step 5: budget split 40 % off-site / 60 % RECs.
        let budget_kwh = budget_fraction * unaware_brown_kwh;
        trace.offsite = renewable::generate(
            &renewable::RenewableConfig {
                solar_share: 0.4,
                annual_energy_kwh: 0.40 * budget_kwh,
                seed: scale.seed.wrapping_add(2),
            },
            scale.hours,
        );
        let rec_total = 0.60 * budget_kwh;

        Ok(Self { cluster, trace, cost, unaware_brown_kwh, budget_kwh, rec_total, scale })
    }

    /// Rebuilds the same scenario with a different budget fraction without
    /// re-measuring the carbon-unaware reference (Fig. 5 sweeps).
    pub fn with_budget_fraction(&self, budget_fraction: f64) -> Self {
        assert!(budget_fraction > 0.0);
        let budget_kwh = budget_fraction * self.unaware_brown_kwh;
        let mut trace = self.trace.clone();
        trace.offsite = renewable::generate(
            &renewable::RenewableConfig {
                solar_share: 0.4,
                annual_energy_kwh: 0.40 * budget_kwh,
                seed: self.scale.seed.wrapping_add(2),
            },
            self.scale.hours,
        );
        Self {
            cluster: Arc::clone(&self.cluster),
            trace,
            cost: self.cost,
            unaware_brown_kwh: self.unaware_brown_kwh,
            budget_kwh,
            rec_total: 0.60 * budget_kwh,
            scale: self.scale,
        }
    }

    /// Budget fraction relative to the carbon-unaware reference.
    pub fn budget_fraction(&self) -> f64 {
        self.budget_kwh / self.unaware_brown_kwh
    }

    /// Characteristic cost-carbon parameter `V₀` for this scenario.
    ///
    /// The deficit queue starts to bind once `q(t)` is comparable to
    /// `V·w̄`; without control, `q` grows at roughly the per-slot budget
    /// overage `(E_unaware − budget)/J`, so the transition where V trades
    /// cost against neutrality over a horizon of J slots sits near
    /// `V₀ ≈ (E_unaware − budget)/w̄`. The paper's "V ≈ 240" is the same
    /// quantity in their (undisclosed) unit scaling; all V sweeps in the
    /// harness are expressed as multiples of `V₀` so they transfer across
    /// fleet scales.
    pub fn characteristic_v(&self) -> f64 {
        let mean_price: f64 = if self.trace.is_empty() {
            0.05
        } else {
            self.trace.price.iter().sum::<f64>() / self.trace.len() as f64
        };
        let overage = (self.unaware_brown_kwh - self.budget_kwh).max(0.02 * self.budget_kwh);
        (overage / mean_price).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_setup_calibrates() {
        let s = PaperSetup::build(ExperimentScale::small(), WorkloadKind::Fiu, 0.92).unwrap();
        assert_eq!(s.trace.len(), 336);
        assert!(s.unaware_brown_kwh > 0.0);
        assert!((s.budget_fraction() - 0.92).abs() < 1e-9);
        // On-site ≈ 20% of consumption: the generated sum hits the target.
        let onsite: f64 = s.trace.onsite.iter().sum();
        assert!(onsite > 0.0);
        // Budget split: 40% offsite, 60% RECs.
        let offsite = s.trace.total_offsite();
        assert!((offsite - 0.4 * s.budget_kwh).abs() < 1.0);
        assert!((s.rec_total - 0.6 * s.budget_kwh).abs() < 1e-6);
    }

    #[test]
    fn with_budget_fraction_rescales() {
        let s = PaperSetup::build(ExperimentScale::small(), WorkloadKind::Fiu, 0.92).unwrap();
        let t = s.with_budget_fraction(1.05);
        assert!((t.budget_fraction() - 1.05).abs() < 1e-9);
        assert_eq!(t.unaware_brown_kwh, s.unaware_brown_kwh);
        assert!(t.trace.total_offsite() > s.trace.total_offsite());
        assert_eq!(t.trace.workload, s.trace.workload, "workload untouched");
    }

    #[test]
    fn msr_workload_variant_builds() {
        let s = PaperSetup::build(ExperimentScale::small(), WorkloadKind::Msr, 0.9).unwrap();
        assert!(s.unaware_brown_kwh > 0.0);
    }
}
