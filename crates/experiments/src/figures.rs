//! One function per paper figure. Each returns [`Series`] data that the
//! `repro` binary prints/saves and the integration tests assert on.
//!
//! Sweeps run through the [`SimEngine`](coca_dcsim::SimEngine): independent
//! policy variants (V values, baselines) become **lockstep lanes** sharing
//! one trace pass, and lane sets are split across worker threads with
//! [`crate::parallel::sweep`]. On a single core the whole sweep collapses
//! to exactly one pass over the trace.

use std::sync::Arc;

use coca_baselines::{OfflineOpt, PerfectHp};
use coca_core::gsd::{GsdOptions, GsdSolver};
use coca_core::solver::P3Solver;
use coca_core::symmetric::SymmetricSolver;
use coca_core::{CocaConfig, CocaController, VSchedule};
use coca_dcsim::dispatch::SlotProblem;
use coca_dcsim::{run_lockstep, Policy, SimEngine, SimError, SimOutcome};
use coca_opt::schedule::TemperatureSchedule;
use coca_traces::{WorkloadKind, WorkloadTrace, HOURS_PER_WEEK, HOURS_PER_YEAR};

use crate::parallel;
use crate::report::Series;
use crate::setup::{unaware_reference, PaperSetup};

/// A figure: a title, an x-axis label, and one or more curves.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Title matching the paper artifact ("Fig. 2(a) ...").
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    fn new(title: &str, x_label: &str, series: Vec<Series>) -> Self {
        Self { title: title.into(), x_label: x_label.into(), series }
    }
}

/// Moving-average window scaled to the horizon (paper: 45 days of 365).
pub fn movavg_window(hours: usize) -> usize {
    (hours * 45 / 365).max(4)
}

/// Builds a symmetric-solver COCA controller for the setup's scenario.
pub fn coca_policy(
    setup: &PaperSetup,
    v: VSchedule,
    frame_length: usize,
) -> CocaController<SymmetricSolver> {
    let cfg = CocaConfig {
        v,
        frame_length,
        horizon: setup.trace.len(),
        alpha: 1.0,
        rec_total: setup.rec_total,
    };
    CocaController::new(Arc::clone(&setup.cluster), setup.cost, cfg, SymmetricSolver::new())
}

/// Runs COCA over the setup's trace with the given V schedule and frame
/// length, returning the simulation outcome.
pub fn run_coca(
    setup: &PaperSetup,
    v: VSchedule,
    frame_length: usize,
) -> Result<SimOutcome, SimError> {
    let coca = coca_policy(setup, v, frame_length);
    run_lockstep(
        Arc::clone(&setup.cluster),
        &setup.trace,
        setup.cost,
        setup.rec_total,
        vec![Box::new(coca)],
    )?
    .pop()
    .ok_or_else(|| SimError::Internal("engine produced no outcome".into()))
}

/// Runs one policy per item over the setup's trace, lockstep within worker
/// chunks: items are split into [`parallel::effective_workers`]`(0)`
/// contiguous chunks (the `repro --workers` default, or all cores) via
/// [`parallel::sweep`], and each chunk's policies advance through a
/// **single shared trace pass** in a [`SimEngine`]. Outcomes come back in
/// item order.
pub fn lockstep_sweep<T, F>(
    setup: &PaperSetup,
    items: Vec<T>,
    make_policy: F,
) -> Result<Vec<SimOutcome>, SimError>
where
    T: Send,
    F: for<'s> Fn(&'s PaperSetup, T) -> Box<dyn Policy + 's> + Sync,
{
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let workers = parallel::effective_workers(0);
    let chunk_size = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let results = parallel::sweep(chunks, 0, |chunk: Vec<T>| {
        let policies: Vec<Box<dyn Policy + '_>> =
            chunk.into_iter().map(|item| make_policy(setup, item)).collect();
        run_lockstep(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            policies,
        )
    });
    let mut outs = Vec::new();
    for chunk in results {
        outs.extend(chunk?);
    }
    Ok(outs)
}

/// Finds the largest constant V whose COCA run stays within the carbon
/// budget — the paper's "we appropriately choose V such that carbon
/// neutrality is satisfied". Larger V means lower cost (Theorem 2b), so
/// the least conservative neutral V is the one to use.
///
/// The search is a log-scale bisection over `[V₀/300, V₀·300]` around the
/// scenario's characteristic V. If even the top of the range stays within
/// budget (the queue can enforce neutrality for any V on a long horizon),
/// the top is returned.
pub fn calibrate_v(setup: &PaperSetup, probes: usize) -> Result<f64, SimError> {
    let brown_at = |v: f64| -> Result<f64, SimError> {
        Ok(run_coca(setup, VSchedule::Constant(v), setup.trace.len())?.total_brown_energy())
    };
    let v0 = setup.characteristic_v();
    let mut lo = v0 / 300.0;
    let mut hi = v0 * 300.0;
    if brown_at(lo)? > setup.budget_kwh {
        return Ok(lo); // best effort: maximally conservative
    }
    if brown_at(hi)? <= setup.budget_kwh {
        return Ok(hi);
    }
    for _ in 0..probes {
        let mid = (lo * hi).sqrt();
        if brown_at(mid)? <= setup.budget_kwh {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi / lo < 1.1 {
            break;
        }
    }
    Ok(lo)
}

/// Fig. 1(a)(b): the normalized workload traces.
pub fn fig1_workloads(seed: u64) -> (Figure, Figure) {
    let fiu = WorkloadTrace::generate(WorkloadKind::Fiu, HOURS_PER_YEAR, 1.0, seed);
    let msr = WorkloadTrace::generate(WorkloadKind::Msr, HOURS_PER_WEEK, 1.0, seed);
    let a = Figure::new(
        "Fig. 1(a) FIU workload trace (normalized, one year)",
        "hour",
        vec![Series::indexed("fiu", fiu.normalized())],
    );
    let b = Figure::new(
        "Fig. 1(b) MSR workload trace (normalized, one week)",
        "hour",
        vec![Series::indexed("msr", msr.normalized())],
    );
    (a, b)
}

/// Fig. 2(a)(b): average hourly cost and carbon deficit vs constant V.
///
/// Every V value — plus the carbon-unaware reference (the V → ∞ limit) —
/// is one lockstep lane. Lanes are chunked across worker threads; each
/// chunk shares a single trace pass, so on one core the whole figure is a
/// single pass instead of `|vs| + 1` passes.
pub fn fig2_constant_v(setup: &PaperSetup, vs: &[f64]) -> Result<(Figure, Figure), SimError> {
    // `Some(v)` is a COCA lane at constant V; `None` the unaware reference.
    let lanes: Vec<Option<f64>> =
        vs.iter().copied().map(Some).chain(std::iter::once(None)).collect();
    let outs = lockstep_sweep(setup, lanes, |setup, lane| match lane {
        Some(v) => Box::new(coca_policy(setup, VSchedule::Constant(v), setup.trace.len())),
        None => Box::new(coca_baselines::CarbonUnaware::new(
            Arc::clone(&setup.cluster),
            setup.cost,
            SymmetricSolver::new(),
        )),
    })?;
    let unaware = outs.last().expect("unaware lane present").clone();
    let cost: Vec<f64> = outs[..vs.len()].iter().map(SimOutcome::avg_hourly_cost).collect();
    let deficit: Vec<f64> =
        outs[..vs.len()].iter().map(SimOutcome::avg_hourly_deficit).collect();
    let a = Figure::new(
        "Fig. 2(a) average hourly cost vs V",
        "V",
        vec![
            Series::new("coca", vs.to_vec(), cost),
            Series::new(
                "carbon-unaware",
                vs.to_vec(),
                vec![unaware.avg_hourly_cost(); vs.len()],
            ),
        ],
    );
    let b = Figure::new(
        "Fig. 2(b) average hourly carbon deficit vs V",
        "V",
        vec![
            Series::new("coca", vs.to_vec(), deficit),
            Series::new(
                "carbon-unaware",
                vs.to_vec(),
                vec![unaware.avg_hourly_deficit(); vs.len()],
            ),
        ],
    );
    Ok((a, b))
}

/// Trims the setup's trace to `frames` whole frames (J = R·T like the
/// paper) and returns the trimmed setup plus the frame length `T`.
/// `rec_total` is left untouched — callers that want neutrality pressure
/// rescaled to the shorter horizon (the frame-reset ablation) do that
/// explicitly on top.
pub fn trim_to_frames(setup: &PaperSetup, frames: usize) -> (PaperSetup, usize) {
    assert!(frames >= 1);
    let horizon = setup.trace.len();
    let frame = (horizon / frames).max(1);
    let trimmed = frame * frames;
    let s = if trimmed == horizon {
        setup.clone()
    } else {
        let mut s = setup.clone();
        s.trace = s.trace.window(0, trimmed);
        s
    };
    (s, frame)
}

/// Fig. 2(c)(d): 45-day moving averages under quarterly-varying V.
///
/// `window` is in slots (paper: 45 days = 1080 h); pass a smaller value at
/// reduced scales.
pub fn fig2_varying_v(
    setup: &PaperSetup,
    increasing: (f64, f64, f64, f64),
    constant: f64,
    window: usize,
) -> Result<(Figure, Figure), SimError> {
    // Horizon may not divide by 4 exactly; trim to R·T like the paper (J = RT).
    let (setup, frame) = trim_to_frames(setup, 4);
    // Both schedules share one lockstep trace pass.
    let schedules = vec![
        VSchedule::quarterly(increasing.0, increasing.1, increasing.2, increasing.3),
        VSchedule::Constant(constant),
    ];
    let mut outs = run_lockstep(
        Arc::clone(&setup.cluster),
        &setup.trace,
        setup.cost,
        setup.rec_total,
        schedules
            .into_iter()
            .map(|v| Box::new(coca_policy(&setup, v, frame)) as Box<dyn Policy + '_>)
            .collect(),
    )?;
    let cons = outs.pop().ok_or_else(|| SimError::Internal("missing constant-V lane".into()))?;
    let vary = outs.pop().ok_or_else(|| SimError::Internal("missing varying-V lane".into()))?;
    let c = Figure::new(
        "Fig. 2(c) moving average cost, varying vs constant V",
        "hour",
        vec![
            Series::indexed("varying-v", vary.movavg_cost(window)),
            Series::indexed("constant-v", cons.movavg_cost(window)),
        ],
    );
    let d = Figure::new(
        "Fig. 2(d) moving average carbon deficit, varying vs constant V",
        "hour",
        vec![
            Series::indexed("varying-v", vary.movavg_deficit(window)),
            Series::indexed("constant-v", cons.movavg_deficit(window)),
        ],
    );
    Ok((c, d))
}

/// Fig. 3(a)(b): COCA vs PerfectHP, cumulative average cost and deficit.
/// Returns the figures plus the final cost-saving fraction (the paper's
/// ">25%" headline).
pub fn fig3_vs_perfect_hp(
    setup: &PaperSetup,
    v: f64,
    window: usize,
) -> Result<(Figure, Figure, f64), SimError> {
    // COCA and PerfectHP advance in lockstep over one trace pass.
    let hp: PerfectHp<SymmetricSolver> = PerfectHp::new(
        Arc::clone(&setup.cluster),
        setup.cost,
        &setup.trace,
        setup.rec_total,
        window,
    )?;
    let coca_lane = coca_policy(setup, VSchedule::Constant(v), setup.trace.len());
    let mut outs = run_lockstep(
        Arc::clone(&setup.cluster),
        &setup.trace,
        setup.cost,
        setup.rec_total,
        vec![Box::new(coca_lane), Box::new(hp)],
    )?;
    let hp_out = outs.pop().ok_or_else(|| SimError::Internal("missing PerfectHP lane".into()))?;
    let coca = outs.pop().ok_or_else(|| SimError::Internal("missing COCA lane".into()))?;
    let saving = 1.0 - coca.avg_hourly_cost() / hp_out.avg_hourly_cost();
    let a = Figure::new(
        "Fig. 3(a) cumulative average hourly cost",
        "hour",
        vec![
            Series::indexed("coca", coca.cumavg_cost()),
            Series::indexed("perfect-hp", hp_out.cumavg_cost()),
        ],
    );
    let b = Figure::new(
        "Fig. 3(b) cumulative average carbon deficit",
        "hour",
        vec![
            Series::indexed("coca", coca.cumavg_deficit()),
            Series::indexed("perfect-hp", hp_out.cumavg_deficit()),
        ],
    );
    Ok((a, b, saving))
}

/// One GSD convergence trace on the P3 snapshot of `slot`: the kept-state
/// objective per iteration at temperature `delta`, optionally from a fixed
/// initial point. Returns `None` when the requested initial point is
/// infeasible for the snapshot (Fig. 4(b) skips those), `Some(trace)`
/// otherwise. Seeded like the paper figures (1500, cold start).
pub fn gsd_trace_point(
    setup: &PaperSetup,
    slot: usize,
    v: f64,
    delta: f64,
    iterations: usize,
    initial: Option<Vec<usize>>,
) -> Result<Option<Vec<f64>>, SimError> {
    let problem = snapshot_problem(setup, slot, v);
    if let Some(init) = &initial {
        if !problem.is_feasible(init) {
            return Ok(None);
        }
    }
    let mut gsd = GsdSolver::new(GsdOptions {
        iterations,
        schedule: TemperatureSchedule::Constant(delta),
        record_trace: true,
        warm_start: false,
        seed: 1500,
        ..Default::default()
    });
    if let Some(init) = initial {
        gsd.set_initial(init);
    }
    // Only the recorded trace matters here; the solution is discarded.
    let _ = gsd.solve(&problem)?;
    Ok(Some(gsd.last_trace.clone()))
}

/// The named GSD initial-point presets of Fig. 4(b), as speed-level
/// vectors for the setup's cluster. Unknown names return `None`.
pub fn gsd_initial_levels(setup: &PaperSetup, name: &str) -> Option<Vec<usize>> {
    let n = setup.cluster.num_groups();
    let top = setup.cluster.full_speed_vector();
    match name {
        "full-speed" => Some(top),
        "slowest-on" => Some(vec![1; n]),
        "mixed" => {
            Some((0..n).map(|i| 1 + (i % (setup.cluster.choice_counts()[i] - 1))).collect())
        }
        "half-top" => Some((0..n).map(|i| if i % 2 == 0 { top[i] } else { 1 }).collect()),
        _ => None,
    }
}

/// Fig. 4(a): GSD kept-state cost vs iteration for several temperatures δ,
/// on the P3 snapshot of `slot` (queue length excluded, as in the paper).
pub fn fig4_gsd_deltas(
    setup: &PaperSetup,
    slot: usize,
    v: f64,
    deltas: &[f64],
    iterations: usize,
) -> Result<Figure, SimError> {
    let mut series = Vec::new();
    for &delta in deltas {
        let trace = gsd_trace_point(setup, slot, v, delta, iterations, None)?
            .ok_or_else(|| SimError::Internal("default GSD start must be feasible".into()))?;
        series.push(Series::indexed(format!("delta={delta:.0}"), trace));
    }
    Ok(Figure::new("Fig. 4(a) GSD cost vs iteration, temperature sweep", "iteration", series))
}

/// Fig. 4(b): GSD cost vs iteration from different initial points at a
/// fixed δ.
pub fn fig4_gsd_initial_points(
    setup: &PaperSetup,
    slot: usize,
    v: f64,
    delta: f64,
    iterations: usize,
) -> Result<Figure, SimError> {
    let mut series = Vec::new();
    for name in ["full-speed", "slowest-on", "mixed", "half-top"] {
        let init = gsd_initial_levels(setup, name).expect("preset name");
        if let Some(trace) = gsd_trace_point(setup, slot, v, delta, iterations, Some(init))? {
            series.push(Series::indexed(name, trace));
        }
    }
    Ok(Figure::new("Fig. 4(b) GSD cost vs iteration, initial points", "iteration", series))
}

/// The P3 objective of the all-full-speed configuration at a snapshot slot
/// — a scale reference for choosing GSD temperatures (the acceptance rule
/// depends on δ/g̃, so meaningful δ values are multiples of typical g̃).
pub fn typical_slot_objective(setup: &PaperSetup, slot: usize, v: f64) -> Result<f64, SimError> {
    let problem = snapshot_problem(setup, slot, v);
    let levels = setup.cluster.full_speed_vector();
    Ok(coca_dcsim::dispatch::optimal_dispatch(&problem, &levels)?.objective)
}

fn snapshot_problem<'a>(setup: &'a PaperSetup, slot: usize, v: f64) -> SlotProblem<'a> {
    let t = slot % setup.trace.len();
    let env = setup.trace.slot(t);
    SlotProblem {
        cluster: &setup.cluster,
        arrival_rate: env.arrival_rate,
        onsite: env.onsite,
        energy_weight: v * env.price, // q excluded, as in the paper's Fig. 4
        delay_weight: v * setup.cost.beta,
        gamma: setup.cost.gamma,
        pue: setup.cost.pue,
    }
}

/// One row of the Fig. 5(a)/(b) budget sweep.
#[derive(Debug, Clone, Copy)]
pub struct BudgetSweepRow {
    /// Budget as a fraction of the carbon-unaware consumption.
    pub budget_fraction: f64,
    /// COCA normalized cost (vs carbon-unaware).
    pub coca: f64,
    /// OPT normalized cost.
    pub opt: f64,
    /// Whether COCA met the budget.
    pub coca_neutral: bool,
    /// V used by COCA.
    pub v_used: f64,
}

/// One Fig. 5(a)/(b) budget point: re-calibrates V against the rescaled
/// budget, runs COCA and the OPT plan, and normalizes both by the
/// caller-supplied carbon-unaware reference cost (computed once per sweep
/// via [`unaware_reference`] on the base setup).
pub fn budget_point(
    base: &PaperSetup,
    frac: f64,
    calib_probes: usize,
    unaware_cost: f64,
) -> Result<BudgetSweepRow, SimError> {
    let setup = base.with_budget_fraction(frac);
    let v = calibrate_v(&setup, calib_probes)?;
    let coca_out = run_coca(&setup, VSchedule::Constant(v), setup.trace.len())?;
    let mut solver = SymmetricSolver::new();
    let opt =
        OfflineOpt::plan(&setup.cluster, setup.cost, &setup.trace, setup.budget_kwh, &mut solver)?;
    let opt_cost = opt.total_planned_cost() / setup.trace.len() as f64;
    Ok(BudgetSweepRow {
        budget_fraction: frac,
        coca: coca_out.avg_hourly_cost() / unaware_cost,
        opt: opt_cost / unaware_cost,
        coca_neutral: coca_out.total_brown_energy() <= setup.budget_kwh * 1.005,
        v_used: v,
    })
}

/// Fig. 5(a)/(b): normalized cost vs carbon budget for COCA, OPT, and the
/// carbon-unaware reference (always 1.0 by normalization, shown for
/// context). `calib_probes` controls V-calibration effort per budget.
pub fn fig5_budget_sweep(
    base: &PaperSetup,
    fractions: &[f64],
    calib_probes: usize,
) -> Result<(Figure, Vec<BudgetSweepRow>), SimError> {
    let unaware = unaware_reference(&base.cluster, base.cost, &base.trace, base.rec_total)?;
    let unaware_cost = unaware.avg_hourly_cost();

    // Budget points are independent (each re-calibrates V against its own
    // budget), so the sweep fans them out across worker threads.
    let results = parallel::sweep(fractions.to_vec(), 0, |frac: f64| {
        budget_point(base, frac, calib_probes, unaware_cost)
    });
    let rows = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let fig = Figure::new(
        "Fig. 5(a/b) normalized cost vs carbon budget",
        "budget (normalized)",
        vec![
            Series::new("coca", fractions.to_vec(), rows.iter().map(|r| r.coca).collect()),
            Series::new("opt", fractions.to_vec(), rows.iter().map(|r| r.opt).collect()),
            Series::new(
                "carbon-unaware",
                fractions.to_vec(),
                vec![1.0; fractions.len()],
            ),
        ],
    );
    Ok((fig, rows))
}

/// Fig. 5(c): total cost vs workload overestimation factor φ, normalized to
/// φ = 1.
pub fn fig5_overestimation(setup: &PaperSetup, v: f64, phis: &[f64]) -> Result<Figure, SimError> {
    // Each φ changes the engine's shared per-slot env prep, so every φ is
    // its own engine; the points fan out across worker threads.
    let results = parallel::sweep(phis.to_vec(), 0, |phi: f64| -> Result<f64, SimError> {
        let mut engine = SimEngine::new(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
        )?;
        engine.set_overestimation(phi)?;
        let _ = engine
            .add_policy(Box::new(coca_policy(setup, VSchedule::Constant(v), setup.trace.len())));
        let _ = engine.run_to_end()?;
        let out = engine
            .into_outcomes()?
            .pop()
            .ok_or_else(|| SimError::Internal("engine produced no outcome".into()))?;
        Ok(out.avg_hourly_cost())
    });
    let costs = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let base = costs[0];
    let normalized = costs.iter().map(|c| c / base).collect();
    Ok(Figure::new(
        "Fig. 5(c) cost vs workload overestimation",
        "phi",
        vec![Series::new("coca", phis.to_vec(), normalized)],
    ))
}

/// The setup with the per-server switching energy overridden — engine and
/// controller both see the modified cost (Fig. 5(d)).
pub fn switching_setup(setup: &PaperSetup, switch_kwh: f64) -> PaperSetup {
    let mut s = setup.clone();
    s.cost.switch_energy_kwh = switch_kwh;
    s
}

/// Fig. 5(d): total cost vs per-server switching energy (kWh), normalized
/// to zero switching cost.
pub fn fig5_switching(setup: &PaperSetup, v: f64, switch_kwh: &[f64]) -> Result<Figure, SimError> {
    // Switching energy enters the engine's cost accounting, so each point
    // is its own engine run; the points fan out across worker threads.
    let results = parallel::sweep(switch_kwh.to_vec(), 0, |sw: f64| -> Result<f64, SimError> {
        let s = switching_setup(setup, sw);
        Ok(run_coca(&s, VSchedule::Constant(v), s.trace.len())?.avg_hourly_cost())
    });
    let costs = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let base = costs[0];
    let normalized = costs.iter().map(|c| c / base).collect();
    Ok(Figure::new(
        "Fig. 5(d) cost vs switching energy per power-up",
        "switch kWh",
        vec![Series::new("coca", switch_kwh.to_vec(), normalized)],
    ))
}

/// One row of the frame-reset ablation.
#[derive(Debug, Clone, Copy)]
pub struct AblationRow {
    /// Frames used (1 = never reset).
    pub frames: usize,
    /// Average hourly cost.
    pub cost: f64,
    /// Brown energy relative to the budget.
    pub brown_over_budget: f64,
    /// Peak carbon-deficit queue length (kWh).
    pub peak_queue: f64,
}

/// Ablation (DESIGN.md §7): the deficit-queue **frame reset**. Resetting
/// every T slots decouples frames so V can be retuned (Sec. 4.3), but each
/// reset forgives the accumulated deficit — more frames means weaker
/// neutrality pressure at the same V. This sweep quantifies that trade-off
/// at a fixed constant V.
pub fn ablation_frame_reset(
    setup: &PaperSetup,
    v: f64,
    frame_counts: &[usize],
) -> Result<Vec<AblationRow>, SimError> {
    frame_counts.iter().map(|&frames| frame_reset_point(setup, v, frames)).collect()
}

/// One frame-reset ablation point (see [`ablation_frame_reset`]): COCA at
/// constant `v` with the horizon split into `frames` frames, the trace
/// trimmed to J = R·T, and the controller's REC allotment (but not the
/// engine's) prorated to the trimmed horizon.
pub fn frame_reset_point(
    setup: &PaperSetup,
    v: f64,
    frames: usize,
) -> Result<AblationRow, SimError> {
    let (s, frame) = trim_to_frames(setup, frames);
    let trimmed = frame * frames;
    let cfg = CocaConfig {
        v: VSchedule::Constant(v),
        frame_length: frame,
        horizon: trimmed,
        alpha: 1.0,
        rec_total: s.rec_total * trimmed as f64 / setup.trace.len() as f64,
    };
    let mut coca = CocaController::new(Arc::clone(&s.cluster), s.cost, cfg, SymmetricSolver::new());
    // `&mut coca` as the lane keeps the controller borrowed, not moved,
    // so its peak deficit stays readable after the run.
    let out = run_lockstep(
        Arc::clone(&s.cluster),
        &s.trace,
        s.cost,
        s.rec_total,
        vec![Box::new(&mut coca) as Box<dyn Policy + '_>],
    )?
    .pop()
    .ok_or_else(|| SimError::Internal("engine produced no outcome".into()))?;
    let budget = s.budget_kwh * trimmed as f64 / setup.trace.len() as f64;
    Ok(AblationRow {
        frames,
        cost: out.avg_hourly_cost(),
        brown_over_budget: out.total_brown_energy() / budget,
        peak_queue: coca.max_deficit(),
    })
}

/// The setup with the renewable portfolio re-split: `share` of the budget
/// as regenerated off-site supply, the rest as RECs (Sec. 5.2.4 remark).
pub fn portfolio_setup(setup: &PaperSetup, share: f64) -> PaperSetup {
    let mut s = setup.clone();
    s.trace.offsite = coca_traces::renewable::generate(
        &coca_traces::renewable::RenewableConfig {
            solar_share: 0.4,
            annual_energy_kwh: share * s.budget_kwh,
            seed: s.scale.seed.wrapping_add(2),
        },
        s.trace.len(),
    );
    s.rec_total = (1.0 - share) * s.budget_kwh;
    s
}

/// Renewable-portfolio sensitivity (paper Sec. 5.2.4 closing remark): the
/// cost change when the off-site/REC mix varies at a fixed total budget.
/// Returns normalized costs, one per mix.
pub fn portfolio_sensitivity(
    setup: &PaperSetup,
    v: f64,
    offsite_shares: &[f64],
) -> Result<Figure, SimError> {
    // Each mix reshapes the off-site trace, so each point is its own
    // engine run; the points fan out across worker threads.
    let results = parallel::sweep(offsite_shares.to_vec(), 0, |share: f64| -> Result<f64, SimError> {
        let s = portfolio_setup(setup, share);
        Ok(run_coca(&s, VSchedule::Constant(v), s.trace.len())?.avg_hourly_cost())
    });
    let costs = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let base = costs[0];
    let normalized = costs.iter().map(|c| c / base).collect();
    Ok(Figure::new(
        "Portfolio sensitivity: cost vs off-site share of the budget",
        "offsite share",
        vec![Series::new("coca", offsite_shares.to_vec(), normalized)],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::ExperimentScale;

    fn small_setup() -> PaperSetup {
        PaperSetup::build(ExperimentScale::small(), WorkloadKind::Fiu, 0.92).unwrap()
    }

    #[test]
    fn fig1_shapes() {
        let (a, b) = fig1_workloads(7);
        assert_eq!(a.series[0].y.len(), HOURS_PER_YEAR);
        assert_eq!(b.series[0].y.len(), HOURS_PER_WEEK);
    }

    #[test]
    fn fig2_cost_decreases_deficit_increases_with_v() {
        let setup = small_setup();
        let vs = [0.02, 2.0, 2000.0];
        let (a, b) = fig2_constant_v(&setup, &vs).unwrap();
        let cost = &a.series[0].y;
        let deficit = &b.series[0].y;
        assert!(cost[2] <= cost[0] + 1e-9, "cost decreases with V: {cost:?}");
        assert!(deficit[2] >= deficit[0] - 1e-9, "deficit grows with V: {deficit:?}");
    }

    #[test]
    fn calibrated_v_meets_budget() {
        let setup = small_setup();
        let v = calibrate_v(&setup, 6).unwrap();
        let out = run_coca(&setup, VSchedule::Constant(v), setup.trace.len()).unwrap();
        assert!(
            out.total_brown_energy() <= setup.budget_kwh * 1.01,
            "brown {} vs budget {}",
            out.total_brown_energy(),
            setup.budget_kwh
        );
    }

    #[test]
    fn fig4_traces_have_requested_length() {
        let setup = small_setup();
        let fig = fig4_gsd_deltas(&setup, 100, 240.0, &[1e3, 1e6], 120).unwrap();
        assert_eq!(fig.series.len(), 2);
        assert!(fig.series.iter().all(|s| s.y.len() == 120));
        let fig_b = fig4_gsd_initial_points(&setup, 100, 240.0, 1e6, 120).unwrap();
        assert!(fig_b.series.len() >= 2);
    }

    #[test]
    fn ablation_more_frames_weaker_neutrality() {
        let setup = small_setup();
        let v = calibrate_v(&setup, 5).unwrap();
        let rows = ablation_frame_reset(&setup, v, &[1, 4]).unwrap();
        assert_eq!(rows.len(), 2);
        // Resets forgive deficit: brown usage cannot decrease with frames.
        assert!(
            rows[1].brown_over_budget >= rows[0].brown_over_budget - 0.02,
            "4 frames {} vs 1 frame {}",
            rows[1].brown_over_budget,
            rows[0].brown_over_budget
        );
        assert!(rows.iter().all(|r| r.cost.is_finite() && r.peak_queue >= 0.0));
    }

    #[test]
    fn portfolio_mix_is_insensitive() {
        // Paper Sec. 5.2.4: different off-site/REC mixes at the same total
        // budget change the cost by well under a few percent.
        let setup = small_setup();
        let v = calibrate_v(&setup, 5).unwrap();
        let fig = portfolio_sensitivity(&setup, v, &[0.2, 0.8]).unwrap();
        let y = &fig.series[0].y;
        assert!((y[1] - 1.0).abs() < 0.05, "portfolio sensitivity too high: {y:?}");
    }

    #[test]
    fn fig5c_small_overestimation_small_cost_increase() {
        let setup = small_setup();
        let fig = fig5_overestimation(&setup, 100.0, &[1.0, 1.2]).unwrap();
        let y = &fig.series[0].y;
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!(y[1] < 1.2, "20% overestimation should cost far less than 20%: {y:?}");
    }
}
