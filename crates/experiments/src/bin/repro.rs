//! `repro` — regenerates every table and figure of the COCA paper.
//!
//! ```text
//! repro [--scale small|medium|paper] [--out DIR] [--strict] [--resume]
//!       [--workers N] <command>
//!
//! commands:
//!   fig1       workload traces (Fig. 1a/1b)
//!   fig2       impact of V, constant and quarterly (Fig. 2a–2d)
//!   fig3       COCA vs PerfectHP (Fig. 3a/3b)
//!   fig4       GSD execution (Fig. 4a/4b)
//!   fig5       sensitivity: budgets, MSR, overestimation, switching (Fig. 5a–5d)
//!   portfolio  off-site/REC mix sensitivity (Sec. 5.2.4 remark)
//!   ablation   deficit-queue frame-reset ablation (DESIGN.md §7)
//!   summary    headline claims (cost saving vs PerfectHP, neutrality, V*)
//!   all        everything above
//! ```
//!
//! Results are printed as aligned tables (long series are thinned) and
//! written in full as CSV under `--out` (default `results/`).
//!
//! Long runs checkpoint the engine state at frame boundaries to
//! `<out>/checkpoint_<command>.json`; after an interruption, rerunning with
//! `--resume` restarts from the last frame checkpoint instead of slot 0.
//!
//! The calibrated V* is computed **once** per invocation and shared by
//! every subcommand that needs it (fig3, fig5c/d, portfolio, ablation,
//! summary) — `all` no longer re-runs the bisection per figure.
//!
//! `--strict` turns the runtime paper-invariant checks
//! ([`coca_core::invariant`]) into unconditional panics, release build
//! included — use it to certify that a full reproduction run never strays
//! from the paper's constraints.
//!
//! `--workers N` caps every parallel sweep (and the lockstep chunking) at
//! `N` worker threads; the default remains all available cores.
//!
//! Diagnostics go through the span-style [`coca_obs::logger`] on stderr
//! (`--quiet` drops everything below error level); results stay on stdout.
//! `--metrics PATH` additionally runs a short instrumented GSD-backed COCA
//! probe with a [`MetricsObserver`] attached to the engine, solver and
//! controller, and writes the registry snapshot (JSON) to PATH — CI
//! validates it against `schemas/metrics.schema.json`.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use coca_core::{CocaConfig, CocaController, VSchedule};
use coca_core::gsd::{GsdOptions, GsdSolver};
use coca_dcsim::{EngineBuilder, StepStatus};
use coca_experiments::figures::{self, Figure};
use coca_experiments::report::{print_table, write_csv};
use coca_experiments::runtime::{run_lockstep_checkpointed, Checkpointing};
use coca_experiments::setup::{ExperimentScale, PaperSetup};
use coca_obs::logger::{self, Level, Span};
use coca_obs::{MetricsObserver, MetricsRegistry};
use coca_traces::WorkloadKind;

struct Args {
    scale: ExperimentScale,
    scale_name: String,
    out: PathBuf,
    command: String,
    resume: bool,
    metrics: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = ExperimentScale::medium();
    let mut scale_name = "medium".to_string();
    let mut out = PathBuf::from("results");
    let mut command = None;
    let mut resume = false;
    let mut metrics = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale = match v.as_str() {
                    "small" => ExperimentScale::small(),
                    "medium" => ExperimentScale::medium(),
                    "paper" => ExperimentScale::paper(),
                    other => return Err(format!("unknown scale {other:?}")),
                };
                scale_name = v;
            }
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--strict" => {
                if !coca_core::invariant::force_strict() {
                    return Err("--strict must come before invariant checks run".into());
                }
            }
            "--resume" => resume = true,
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--workers expects a number, got {v:?}"))?;
                if n == 0 {
                    return Err("--workers must be >= 1 (omit the flag for all cores)".into());
                }
                coca_experiments::parallel::set_default_workers(n);
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(it.next().ok_or("--metrics needs a value")?));
            }
            "--quiet" => logger::set_level(Level::Error),
            "--help" | "-h" => return Err("help".into()),
            cmd if command.is_none() && !cmd.starts_with('-') => command = Some(cmd.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Args {
        scale,
        scale_name,
        out,
        command: command.unwrap_or_else(|| "all".into()),
        resume,
        metrics,
    })
}

fn emit(args: &Args, stem: &str, fig: &Figure) {
    let mut stdout = std::io::stdout().lock();
    let thinned: Vec<_> = fig.series.iter().map(|s| s.thinned(24)).collect();
    // Ignore stdout errors (e.g. broken pipe when piped into `head`).
    print_table(&fig.title, &fig.x_label, &thinned, &mut stdout).ok();
    let path = args.out.join(format!("{stem}.csv"));
    if let Err(e) = write_csv(&path, &fig.x_label, &fig.series) {
        logger::error(&Span::new("csv"), &format!("could not write {}: {e}", path.display()));
    } else {
        writeln!(stdout, "(full series -> {})", path.display()).ok();
    }
}

/// Moving-average window scaled to the horizon (paper: 45 days of 365).
fn movavg_window(hours: usize) -> usize {
    (hours * 45 / 365).max(4)
}

fn build_setup(args: &Args, workload: WorkloadKind) -> PaperSetup {
    let t0 = Instant::now();
    let setup = PaperSetup::build(args.scale, workload, 0.92).expect("setup builds");
    logger::info(
        &Span::new("setup"),
        &format!(
            "{:?}: groups={} servers={} hours={} unaware={:.1} MWh budget={:.1} MWh ({:.1?})",
            workload,
            setup.cluster.num_groups(),
            setup.cluster.num_servers(),
            setup.trace.len(),
            setup.unaware_brown_kwh / 1000.0,
            setup.budget_kwh / 1000.0,
            t0.elapsed()
        ),
    );
    setup
}

fn fig1(args: &Args) {
    let (a, b) = figures::fig1_workloads(args.scale.seed);
    emit(args, "fig1a_fiu_workload", &a);
    emit(args, "fig1b_msr_workload", &b);
}

fn fig2(args: &Args, setup: &PaperSetup) {
    // V expressed as multiples of the scenario's characteristic V₀ so the
    // sweep covers the cost/neutrality transition at every scale (the
    // paper's absolute "V ≈ 240" reflects its undisclosed unit scaling).
    let v0 = setup.characteristic_v();
    logger::info(&Span::new("fig2"), &format!("characteristic V0 = {v0:.1}"));
    let vs: Vec<f64> =
        [0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0].iter().map(|m| m * v0).collect();
    let (a, b) = figures::fig2_constant_v(setup, &vs).expect("fig2 runs");
    emit(args, "fig2a_cost_vs_v", &a);
    emit(args, "fig2b_deficit_vs_v", &b);
    let window = movavg_window(setup.trace.len());
    let (c, d) = figures::fig2_varying_v(
        setup,
        (0.03 * v0, 0.1 * v0, 1.0 * v0, 10.0 * v0),
        v0,
        window,
    )
    .expect("fig2cd runs");
    emit(args, "fig2c_movavg_cost", &c);
    emit(args, "fig2d_movavg_deficit", &d);
}

fn fig3(args: &Args, setup: &PaperSetup, v: f64) -> f64 {
    let window = 48.min(setup.trace.len());
    let (a, b, saving) = figures::fig3_vs_perfect_hp(setup, v, window).expect("fig3 runs");
    emit(args, "fig3a_cumavg_cost", &a);
    emit(args, "fig3b_cumavg_deficit", &b);
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "\nCOCA cost saving vs PerfectHP: {:.1}% (paper: >25%)", saving * 100.0)
        .ok();
    saving
}

fn fig4(args: &Args, setup: &PaperSetup) {
    let slot = 1500 % setup.trace.len();
    let v0 = setup.characteristic_v();
    // The paper's δ sweep (10⁵ … 5×10⁶) is relative to its cost scale; the
    // acceptance rule uses δ/g̃, so we scale δ by the typical slot objective.
    let g_typ = figures::typical_slot_objective(setup, slot, v0).expect("snapshot");
    let deltas: Vec<f64> = [2.0, 10.0, 50.0, 250.0].iter().map(|m| m * g_typ).collect();
    let a = figures::fig4_gsd_deltas(setup, slot, v0, &deltas, 500).expect("fig4a runs");
    emit(args, "fig4a_gsd_delta", &a);
    let b =
        figures::fig4_gsd_initial_points(setup, slot, v0, 50.0 * g_typ, 500).expect("fig4b runs");
    emit(args, "fig4b_gsd_initials", &b);
}

fn fig5(args: &Args, setup_fiu: &PaperSetup, v: f64) {
    let fractions = [0.85, 0.90, 0.92, 1.00, 1.05];
    let (fig_a, rows) = figures::fig5_budget_sweep(setup_fiu, &fractions, 5).expect("fig5a runs");
    emit(args, "fig5a_budget_fiu", &fig_a);
    {
        let mut stdout = std::io::stdout().lock();
        for r in &rows {
            writeln!(
                stdout,
                "  budget {:.2}: coca {:.4} (neutral: {}, V={:.1}) opt {:.4}",
                r.budget_fraction, r.coca, r.coca_neutral, r.v_used, r.opt
            )
            .ok();
        }
    }

    let setup_msr = build_setup(args, WorkloadKind::Msr);
    let (fig_b, rows_b) = figures::fig5_budget_sweep(&setup_msr, &fractions, 5).expect("fig5b runs");
    emit(args, "fig5b_budget_msr", &fig_b);
    {
        let mut stdout = std::io::stdout().lock();
        for r in &rows_b {
            writeln!(
                stdout,
                "  [msr] budget {:.2}: coca {:.4} (neutral: {}) opt {:.4}",
                r.budget_fraction, r.coca, r.coca_neutral, r.opt
            )
            .ok();
        }
    }

    let c = figures::fig5_overestimation(setup_fiu, v, &[1.0, 1.05, 1.10, 1.15, 1.20])
        .expect("fig5c runs");
    emit(args, "fig5c_overestimation", &c);
    let d = figures::fig5_switching(setup_fiu, v, &[0.0, 0.00578, 0.01155, 0.01733, 0.0231])
        .expect("fig5d runs");
    emit(args, "fig5d_switching", &d);
}

fn ablation(setup: &PaperSetup, v: f64) {
    let rows = figures::ablation_frame_reset(setup, v, &[1, 2, 4, 12]).expect("ablation");
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "\n## Ablation: deficit-queue frame reset (constant V = {v:.0})").ok();
    writeln!(stdout, "{:>8} {:>14} {:>16} {:>14}", "frames", "avg cost", "brown/budget", "peak queue")
        .ok();
    for r in &rows {
        writeln!(
            stdout,
            "{:>8} {:>14.3} {:>16.4} {:>14.1}",
            r.frames, r.cost, r.brown_over_budget, r.peak_queue
        )
        .ok();
    }
    writeln!(stdout, "(more frames = more resets = weaker neutrality pressure at fixed V)").ok();
}

fn portfolio(args: &Args, setup: &PaperSetup, v: f64) {
    let fig = figures::portfolio_sensitivity(setup, v, &[0.2, 0.4, 0.6, 0.8]).expect("portfolio");
    emit(args, "portfolio_sensitivity", &fig);
}

fn summary(args: &Args, setup: &PaperSetup, v: f64) {
    // The headline COCA year runs through the checkpointed runtime: frame
    // snapshots land in `<out>/checkpoint_summary.json`, and `--resume`
    // picks up from the last one after an interruption.
    let ckpt_path = args.out.join("checkpoint_summary.json");
    let every = (setup.trace.len() / 8).max(1);
    let coca = figures::coca_policy(setup, VSchedule::Constant(v), setup.trace.len());
    let out = run_lockstep_checkpointed(
        Arc::clone(&setup.cluster),
        &setup.trace,
        setup.cost,
        setup.rec_total,
        vec![Box::new(coca)],
        Some(Checkpointing { path: &ckpt_path, every, resume: args.resume }),
        None,
    )
    .expect("coca run")
    .pop()
    .expect("coca outcome");
    let window = 48.min(setup.trace.len());
    let (_, _, saving) = figures::fig3_vs_perfect_hp(setup, v, window).expect("fig3");
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "\n## Summary (scale = {}, budget = 92%)", args.scale_name).ok();
    writeln!(stdout, "calibrated V*                 : {v:.1}").ok();
    writeln!(
        stdout,
        "COCA brown energy / budget    : {:.4} (neutral: {})",
        out.total_brown_energy() / setup.budget_kwh,
        out.is_carbon_neutral() || out.total_brown_energy() <= setup.budget_kwh
    )
    .ok();
    writeln!(stdout, "COCA avg hourly cost          : {:.3}", out.avg_hourly_cost()).ok();
    writeln!(stdout, "cost saving vs PerfectHP      : {:.1}%  (paper: >25%)", saving * 100.0)
        .ok();
}

/// Commands whose figures depend on the calibrated V*.
fn needs_calibration(command: &str) -> bool {
    matches!(command, "fig3" | "fig5" | "portfolio" | "ablation" | "summary" | "all")
}

/// The instrumented probe behind `--metrics`: a GSD-backed COCA run over a
/// short window of the scenario, with one [`MetricsObserver`] watching the
/// engine (slots, checkpoints, phase timers), the GSD solver (cache and
/// acceptance statistics) and the controller (deficit queue, frame resets)
/// — so the snapshot carries every metric family the checked-in schema
/// requires. Progress goes through the logger once per frame.
fn metrics_probe(setup: &PaperSetup, path: &std::path::Path) -> Result<(), String> {
    let registry = Arc::new(MetricsRegistry::new());
    let observer = Arc::new(MetricsObserver::new(Arc::clone(&registry)));
    let hours = setup.trace.len().min(72);
    let frame = 24.min(hours).max(1);
    let trace = setup.trace.window(0, hours);
    let rec_total = setup.rec_total * hours as f64 / setup.trace.len() as f64;
    let mut gsd = GsdSolver::new(GsdOptions { iterations: 200, seed: 1500, ..Default::default() });
    gsd.set_observer(Arc::clone(&observer) as _);
    let cfg = CocaConfig {
        v: VSchedule::Constant(setup.characteristic_v()),
        frame_length: frame,
        horizon: hours,
        alpha: 1.0,
        rec_total,
    };
    let mut coca = CocaController::new(Arc::clone(&setup.cluster), setup.cost, cfg, gsd);
    coca.set_observer(Arc::clone(&observer) as _);
    let mut engine = EngineBuilder::new(Arc::clone(&setup.cluster), setup.cost)
        .rec_total(rec_total)
        .observer(Arc::clone(&observer) as _)
        .policy(Box::new(coca))
        .build(&trace)
        .map_err(|e| format!("probe engine: {e}"))?;
    while engine.step().map_err(|e| format!("probe step: {e}"))? == StepStatus::Advanced {
        let t = engine.t();
        if t % frame == 0 {
            logger::info(
                &Span::new("metrics").slot(t).frame(t / frame).lane("coca-gsd"),
                &format!("probe progress: {t}/{hours} slots"),
            );
        }
    }
    // One batched-kernel GSD solve on a representative slot instance, so
    // the snapshot also carries the candidate-batch counter family
    // (`gsd_candidate_batches_total` / `gsd_batched_candidates_total`)
    // the schema requires.
    {
        use coca_core::solver::P3Solver;
        let mut batched = GsdSolver::new(GsdOptions {
            iterations: 200,
            seed: 1500,
            batched: true,
            ..Default::default()
        });
        batched.set_observer(Arc::clone(&observer) as _);
        let p = coca_dcsim::dispatch::SlotProblem {
            cluster: &setup.cluster,
            arrival_rate: 0.5 * 0.95 * setup.cluster.max_capacity(),
            onsite: 0.0,
            energy_weight: 1.0,
            delay_weight: 1.0,
            gamma: 0.95,
            pue: 1.0,
        };
        let _ = batched.solve(&p).map_err(|e| format!("batched probe solve: {e}"))?;
    }
    let json = registry.snapshot().to_json()?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    logger::info(&Span::new("metrics"), &format!("snapshot -> {}", path.display()));
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                logger::error(&Span::new("args"), &e);
            }
            eprintln!(
                "usage: repro [--scale small|medium|paper] [--out DIR] [--strict] [--resume] \
                 [--workers N] [--quiet] [--metrics PATH] \
                 [fig1|fig2|fig3|fig4|fig5|portfolio|ablation|summary|all]"
            );
            return if e == "help" { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };
    let t0 = Instant::now();
    let needs_setup = args.command != "fig1";
    let setup = if needs_setup { Some(build_setup(&args, WorkloadKind::Fiu)) } else { None };
    // Calibrate V* once and share it across every subcommand that needs it.
    let v_star = if needs_calibration(&args.command) {
        let s = setup.as_ref().unwrap();
        let tc = Instant::now();
        let v = figures::calibrate_v(s, 7).expect("calibration");
        logger::info(&Span::new("calibrate"), &format!("V* = {v:.1} ({:.1?})", tc.elapsed()));
        Some(v)
    } else {
        None
    };
    match args.command.as_str() {
        "fig1" => fig1(&args),
        "fig2" => fig2(&args, setup.as_ref().unwrap()),
        "fig3" => {
            fig3(&args, setup.as_ref().unwrap(), v_star.unwrap());
        }
        "fig4" => fig4(&args, setup.as_ref().unwrap()),
        "fig5" => fig5(&args, setup.as_ref().unwrap(), v_star.unwrap()),
        "portfolio" => portfolio(&args, setup.as_ref().unwrap(), v_star.unwrap()),
        "ablation" => ablation(setup.as_ref().unwrap(), v_star.unwrap()),
        "summary" => summary(&args, setup.as_ref().unwrap(), v_star.unwrap()),
        "all" => {
            let s = setup.as_ref().unwrap();
            let v = v_star.unwrap();
            fig1(&args);
            fig2(&args, s);
            fig3(&args, s, v);
            fig4(&args, s);
            fig5(&args, s, v);
            portfolio(&args, s, v);
            ablation(s, v);
            summary(&args, s, v);
        }
        other => {
            logger::error(&Span::new("args"), &format!("unknown command {other:?}"));
            return ExitCode::from(2);
        }
    }
    if let Some(path) = args.metrics.clone() {
        let owned;
        let s = match setup.as_ref() {
            Some(s) => s,
            None => {
                owned = build_setup(&args, WorkloadKind::Fiu);
                &owned
            }
        };
        if let Err(e) = metrics_probe(s, &path) {
            logger::error(&Span::new("metrics"), &e);
            return ExitCode::from(1);
        }
    }
    logger::info(&Span::new("repro"), &format!("done in {:.1?}", t0.elapsed()));
    ExitCode::SUCCESS
}
