//! Order-preserving parallel sweeps for independent experiment points.
//!
//! Figure sweeps (one COCA year per V value, one OPT plan per budget) are
//! embarrassingly parallel across points; on multicore machines this cuts
//! wall-clock time roughly by the core count. Built on crossbeam scoped
//! threads with a per-item channel send instead of a shared results lock —
//! results come back in input order, and a panic in any worker propagates.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count used when a sweep requests `0`
/// workers. `0` (the initial value) means "use all available cores"; the
/// `repro --workers N` flag overrides it once at startup.
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count consulted by
/// [`effective_workers`] (and therefore by every `workers == 0` sweep).
/// `n == 0` restores the "all available cores" behavior.
pub fn set_default_workers(n: usize) {
    // audit:atomic(Relaxed store: config cell written once at startup before any sweep; no other memory published through it)
    DEFAULT_WORKERS.store(n, Ordering::Relaxed);
}

/// Resolves a requested worker count: explicit requests pass through,
/// `0` falls back to the process-wide default set by
/// [`set_default_workers`], and a zero default means all available cores.
pub fn effective_workers(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    // audit:atomic(Relaxed load: pairs with the startup-time Relaxed store in set_default_workers; value-only config)
    let default = DEFAULT_WORKERS.load(Ordering::Relaxed);
    if default != 0 {
        return default;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item, running up to `workers` items concurrently,
/// and returns outputs in input order.
///
/// `workers == 0` means "use the process default" — the value set via
/// [`set_default_workers`] (CLI-reachable as `repro --workers N`), or all
/// available cores (`std::thread::available_parallelism()`) when no
/// default was set.
///
/// Each worker sends `(index, output)` pairs over a channel sized to hold
/// every result, so finished items never contend on a shared lock and sends
/// never block; the results vector is assembled once after the scope joins.
pub fn sweep<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = effective_workers(workers);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: crossbeam::queue::SegQueue<(usize, T)> = crossbeam::queue::SegQueue::new();
    for pair in items.into_iter().enumerate() {
        queue.push(pair);
    }
    // Capacity n: every send succeeds immediately even if the receiver only
    // drains after all workers have exited.
    let (tx, rx) = crossbeam::channel::bounded::<(usize, R)>(n);
    let f = &f;
    let queue = &queue;
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move |_| {
                while let Some((idx, item)) = queue.pop() {
                    let out = f(item);
                    assert!(tx.send((idx, out)).is_ok(), "receiver outlives the scope");
                }
            });
        }
    })
    .expect("sweep worker panicked");
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // audit:ordered(every message carries its item index and lands in its slot; arrival order cannot reach the result vector)
    while let Ok((idx, out)) = rx.try_recv() {
        slots[idx] = Some(out);
    }
    slots.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = sweep((0..50).collect(), 4, |x: i32| x * x);
        assert_eq!(out, (0..50).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_sequential_path() {
        let out = sweep(vec![3, 1, 4], 1, |x: i32| x + 1);
        assert_eq!(out, vec![4, 2, 5]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = sweep(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = sweep(vec![10, 20], 16, |x: i32| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn actually_runs_concurrently_when_possible() {
        // Not a timing assertion (single-core CI), just checks that work is
        // pulled from a shared queue by multiple threads without loss.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let out = sweep((0..200).collect(), 8, |x: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn zero_workers_defaults_to_available_parallelism() {
        let out = sweep((0..20).collect(), 0, |x: i32| x * 2);
        assert_eq!(out, (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn default_workers_override_resolves_zero_requests() {
        // Serialized with the other tests only through the global cell, so
        // restore the default before returning either way.
        set_default_workers(3);
        assert_eq!(effective_workers(0), 3);
        assert_eq!(effective_workers(5), 5, "explicit requests win over the default");
        let out = sweep((0..20).collect(), 0, |x: i32| x + 1);
        set_default_workers(0);
        assert_eq!(out, (1..21).collect::<Vec<_>>());
        assert!(effective_workers(0) >= 1, "zero default falls back to the core count");
    }
}
