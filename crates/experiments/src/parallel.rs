//! Order-preserving parallel sweeps for independent experiment points.
//!
//! Figure sweeps (one COCA year per V value, one OPT plan per budget) are
//! embarrassingly parallel across points; on multicore machines this cuts
//! wall-clock time roughly by the core count. Built on crossbeam scoped
//! threads — results come back in input order, and a panic in any worker
//! propagates.

/// Applies `f` to every item, running up to `workers` items concurrently,
/// and returns outputs in input order.
pub fn sweep<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: crossbeam::queue::SegQueue<(usize, T)> = crossbeam::queue::SegQueue::new();
    for pair in items.into_iter().enumerate() {
        queue.push(pair);
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results = parking_lot::Mutex::new(&mut slots);
    let f = &f;
    let queue = &queue;
    let results = &results;
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move |_| {
                while let Some((idx, item)) = queue.pop() {
                    let out = f(item);
                    results.lock()[idx] = Some(out);
                }
            });
        }
    })
    .expect("sweep worker panicked");
    slots.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = sweep((0..50).collect(), 4, |x: i32| x * x);
        assert_eq!(out, (0..50).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_sequential_path() {
        let out = sweep(vec![3, 1, 4], 1, |x: i32| x + 1);
        assert_eq!(out, vec![4, 2, 5]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = sweep(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = sweep(vec![10, 20], 16, |x: i32| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn actually_runs_concurrently_when_possible() {
        // Not a timing assertion (single-core CI), just checks that work is
        // pulled from a shared queue by multiple threads without loss.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let out = sweep((0..200).collect(), 8, |x: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(out.len(), 200);
    }

    #[test]
    #[should_panic]
    fn zero_workers_panics() {
        let _ = sweep(vec![1], 0, |x: i32| x);
    }
}
