//! Plain-text and CSV reporting for experiment results.

use std::io::Write;
use std::path::Path;

/// A named (x, y) series — one curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (e.g. "COCA", "PerfectHP").
    pub name: String,
    /// X values (V, budget fraction, hour index, …).
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series; panics on length mismatch.
    pub fn new(name: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series x/y length mismatch");
        Self { name: name.into(), x, y }
    }

    /// Creates a series indexed 0..n.
    pub fn indexed(name: impl Into<String>, y: Vec<f64>) -> Self {
        let x = (0..y.len()).map(|i| i as f64).collect();
        Self::new(name, x, y)
    }

    /// Downsamples to at most `n` evenly spaced points (keeps endpoints).
    pub fn thinned(&self, n: usize) -> Series {
        assert!(n >= 2);
        if self.x.len() <= n {
            return self.clone();
        }
        let last = self.x.len() - 1;
        let idx: Vec<usize> = (0..n).map(|k| k * last / (n - 1)).collect();
        Series {
            name: self.name.clone(),
            x: idx.iter().map(|&i| self.x[i]).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }
}

/// Prints a set of series sharing the same x grid as an aligned table.
pub fn print_table(title: &str, x_label: &str, series: &[Series], out: &mut impl Write) -> std::io::Result<()> {
    writeln!(out, "\n## {title}")?;
    if series.is_empty() {
        return writeln!(out, "(no data)");
    }
    write!(out, "{:>14}", x_label)?;
    for s in series {
        write!(out, "{:>16}", s.name)?;
    }
    writeln!(out)?;
    let n = series[0].x.len();
    for i in 0..n {
        write!(out, "{:>14.4}", series[0].x[i])?;
        for s in series {
            if i < s.y.len() {
                write!(out, "{:>16.6}", s.y[i])?;
            } else {
                write!(out, "{:>16}", "-")?;
            }
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Writes series sharing an x grid to a CSV file.
pub fn write_csv(path: &Path, x_label: &str, series: &[Series]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "{x_label}")?;
    for s in series {
        write!(f, ",{}", s.name)?;
    }
    writeln!(f)?;
    let n = series.first().map(|s| s.x.len()).unwrap_or(0);
    for i in 0..n {
        write!(f, "{}", series[0].x[i])?;
        for s in series {
            if i < s.y.len() {
                write!(f, ",{}", s.y[i])?;
            } else {
                write!(f, ",")?;
            }
        }
        writeln!(f)?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_construction_and_thinning() {
        let s = Series::indexed("a", (0..100).map(|i| i as f64).collect());
        assert_eq!(s.x.len(), 100);
        let t = s.thinned(5);
        assert_eq!(t.x.len(), 5);
        assert_eq!(t.x[0], 0.0);
        assert_eq!(t.x[4], 99.0);
        // Short series pass through.
        let short = Series::new("b", vec![1.0], vec![2.0]);
        assert_eq!(short.thinned(10), short);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = Series::new("bad", vec![1.0], vec![]);
    }

    #[test]
    fn table_prints_all_points() {
        let s1 = Series::new("a", vec![1.0, 2.0], vec![10.0, 20.0]);
        let s2 = Series::new("b", vec![1.0, 2.0], vec![30.0, 40.0]);
        let mut buf = Vec::new();
        print_table("T", "x", &[s1, s2], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("## T"));
        assert!(text.contains("10.0"));
        assert!(text.contains("40.0"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("coca_report_test");
        let path = dir.join("out.csv");
        let s = Series::new("a", vec![1.0, 2.0], vec![3.0, 4.0]);
        write_csv(&path, "x", &[s]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("x,a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_table_ok() {
        let mut buf = Vec::new();
        print_table("E", "x", &[], &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("(no data)"));
    }
}
