//! Checkpointed lockstep runs for long reproductions.
//!
//! Drives a [`SimEngine`] slot by slot and persists its serializable
//! [`EngineState`] to disk every `every` slots (the caller passes a frame
//! length), so an interrupted `repro` invocation can restart from the last
//! frame boundary with `--resume` instead of recomputing the whole year.
//!
//! The checkpoint file is JSON (`serde_json` over the engine's
//! `EngineState`), written atomically (temp file + rename) and deleted on
//! successful completion. A checkpoint that fails to parse or does not
//! match the engine's configuration (lane count, policy names, `rec_total`)
//! is ignored with a warning — the run then starts from slot 0.

use std::path::Path;
use std::sync::Arc;

use coca_dcsim::{
    Cluster, CostParams, EngineBuilder, EngineState, Policy, SimError, SimOutcome, StepStatus,
};
use coca_obs::logger::{self, Span};
use coca_obs::EngineObserver;
use coca_traces::EnvironmentTrace;

/// Where and how often to checkpoint a [`run_lockstep_checkpointed`] call.
#[derive(Debug, Clone, Copy)]
pub struct Checkpointing<'a> {
    /// Checkpoint file path (created on the first boundary, removed on
    /// successful completion).
    pub path: &'a Path,
    /// Slots between checkpoints — pass the run's frame length so snapshots
    /// land on frame boundaries. Clamped to ≥ 1.
    pub every: usize,
    /// Restore from `path` if a compatible checkpoint exists there.
    pub resume: bool,
    /// Simulated-crash hook for resume tests and the CI batch smoke gate:
    /// once the engine reaches this slot the run aborts with
    /// [`SIMULATED_CRASH`], leaving the checkpoint from the last boundary
    /// on disk exactly as a real crash would. `None` (the default) runs to
    /// completion.
    pub abort_at_slot: Option<usize>,
}

impl<'a> Checkpointing<'a> {
    /// Checkpointing at `path` every `every` slots, optionally resuming —
    /// the common case, with no simulated crash.
    pub fn new(path: &'a Path, every: usize, resume: bool) -> Self {
        Self { path, every, resume, abort_at_slot: None }
    }
}

/// Error message carried by the [`Checkpointing::abort_at_slot`] simulated
/// crash (callers match on it to tell a drill from a real failure).
pub const SIMULATED_CRASH: &str = "simulated crash: abort_at_slot reached";

/// Optional knobs for [`run_lockstep_checkpointed`]: checkpoint policy,
/// engine observer, and the workload overestimation factor φ (Fig. 5(c));
/// `RunOptions::default()` means no checkpointing, no observer, φ = 1.
pub struct RunOptions<'a> {
    /// Checkpoint location/cadence, or `None` to run unpersisted.
    pub ckpt: Option<Checkpointing<'a>>,
    /// Engine observer (e.g. a [`coca_obs::MetricsObserver`]).
    pub observer: Option<Arc<dyn EngineObserver + Send + Sync>>,
    /// Workload overestimation factor φ ≥ 1 applied to the shared env prep.
    pub overestimation: f64,
}

impl Default for RunOptions<'_> {
    fn default() -> Self {
        Self { ckpt: None, observer: None, overestimation: 1.0 }
    }
}

/// Serializes an [`EngineState`] to `path` as JSON, atomically.
pub fn write_checkpoint(path: &Path, state: &EngineState) -> Result<(), SimError> {
    let json = serde_json::to_string(state)
        .map_err(|e| SimError::Internal(format!("checkpoint serialization failed: {e}")))?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| {
                SimError::Internal(format!("cannot create {}: {e}", dir.display()))
            })?;
        }
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json)
        .map_err(|e| SimError::Internal(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| SimError::Internal(format!("cannot rename {}: {e}", tmp.display())))
}

/// Reads an [`EngineState`] previously written by [`write_checkpoint`].
pub fn read_checkpoint(path: &Path) -> Result<EngineState, SimError> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| SimError::Internal(format!("cannot read {}: {e}", path.display())))?;
    serde_json::from_str(&json)
        .map_err(|e| SimError::Internal(format!("checkpoint parse failed: {e}")))
}

/// Runs `policies` in lockstep over `trace`, checkpointing at frame
/// boundaries when `ckpt` is given. Semantically identical to
/// [`coca_dcsim::run_lockstep`] — same outcomes, slot for slot — plus the
/// persistence side effects described in the module docs.
///
/// Resume/checkpoint diagnostics go through [`coca_obs::logger`] (so
/// `repro --quiet` silences the informational ones), and an optional
/// [`EngineObserver`] — e.g. a [`coca_obs::MetricsObserver`] — can watch
/// the run's slots, phases and checkpoints.
pub fn run_lockstep_checkpointed<'p>(
    cluster: Arc<Cluster>,
    trace: &EnvironmentTrace,
    cost: CostParams,
    rec_total: f64,
    policies: Vec<Box<dyn Policy + 'p>>,
    opts: RunOptions<'_>,
) -> Result<Vec<SimOutcome>, SimError> {
    let RunOptions { ckpt, observer, overestimation } = opts;
    let mut builder =
        EngineBuilder::new(cluster, cost).rec_total(rec_total).overestimation(overestimation);
    if let Some(obs) = observer {
        builder = builder.observer(obs);
    }
    for policy in policies {
        builder = builder.policy(policy);
    }
    let mut engine = builder.build(trace)?;
    if let Some(c) = &ckpt {
        if c.resume && c.path.exists() {
            let every = c.every.max(1);
            match read_checkpoint(c.path).and_then(|state| {
                engine.restore(&state)?;
                Ok(state.t)
            }) {
                Ok(t) => logger::info(
                    &Span::new("resume").slot(t).frame(t / every),
                    &format!("continuing from checkpoint {}", c.path.display()),
                ),
                Err(e) => logger::error(
                    &Span::new("resume"),
                    &format!("ignoring checkpoint {}: {e}", c.path.display()),
                ),
            }
        }
    }
    while engine.step()? == StepStatus::Advanced {
        if let Some(c) = &ckpt {
            let every = c.every.max(1);
            if engine.t() % every == 0 {
                write_checkpoint(c.path, &engine.checkpoint()?)?;
                logger::debug(
                    &Span::new("checkpoint").slot(engine.t()).frame(engine.t() / every),
                    &format!("state written to {}", c.path.display()),
                );
            }
            if c.abort_at_slot.is_some_and(|at| engine.t() >= at) {
                // Leave the last boundary checkpoint in place, like a crash.
                return Err(SimError::Internal(SIMULATED_CRASH.into()));
            }
        }
    }
    if let Some(c) = &ckpt {
        // The run completed; a stale checkpoint would hijack the next one.
        let _ = std::fs::remove_file(c.path);
    }
    engine.into_outcomes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::coca_policy;
    use crate::setup::{ExperimentScale, PaperSetup};
    use coca_core::VSchedule;
    use coca_dcsim::{run_lockstep, SimEngine};
    use coca_traces::WorkloadKind;

    fn small_setup() -> PaperSetup {
        let mut scale = ExperimentScale::small();
        scale.hours = 72;
        PaperSetup::build(scale, WorkloadKind::Fiu, 0.92).unwrap()
    }

    fn lanes(setup: &PaperSetup) -> Vec<Box<dyn Policy + '_>> {
        vec![Box::new(coca_policy(setup, VSchedule::Constant(50.0), 24))]
    }

    #[test]
    fn checkpointed_run_matches_plain_and_cleans_up() {
        let setup = small_setup();
        let dir = std::env::temp_dir().join("coca_runtime_test_clean");
        let path = dir.join("ckpt.json");
        let ckpt = Checkpointing::new(&path, 24, false);
        let out = run_lockstep_checkpointed(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
            RunOptions { ckpt: Some(ckpt), ..RunOptions::default() },
        )
        .unwrap();
        let reference = run_lockstep(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
        )
        .unwrap();
        assert_eq!(out, reference, "checkpointing must not change results");
        assert!(!path.exists(), "checkpoint removed after completion");
    }

    #[test]
    fn resume_from_frame_boundary_reproduces_uninterrupted_run() {
        let setup = small_setup();
        let dir = std::env::temp_dir().join("coca_runtime_test_resume");
        let path = dir.join("ckpt.json");

        // Simulate an interrupted run: advance 24 slots (one frame), write
        // the checkpoint exactly as the runner would, then drop the engine.
        let mut engine = SimEngine::new(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
        )
        .unwrap();
        for policy in lanes(&setup) {
            let _ = engine.add_policy(policy);
        }
        for _ in 0..24 {
            assert_eq!(engine.step().unwrap(), StepStatus::Advanced);
        }
        write_checkpoint(&path, &engine.checkpoint().unwrap()).unwrap();
        drop(engine);

        let resumed = run_lockstep_checkpointed(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
            RunOptions {
                ckpt: Some(Checkpointing::new(&path, 24, true)),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let uninterrupted = run_lockstep(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
        )
        .unwrap();
        assert_eq!(resumed, uninterrupted, "resume must reproduce the full run exactly");
        assert!(!path.exists());
    }

    #[test]
    fn observer_sees_checkpointed_run() {
        let setup = small_setup();
        let dir = std::env::temp_dir().join("coca_runtime_test_observer");
        let path = dir.join("ckpt.json");
        let registry = Arc::new(coca_obs::MetricsRegistry::new());
        let observer = Arc::new(coca_obs::MetricsObserver::new(Arc::clone(&registry)));
        let _ = run_lockstep_checkpointed(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
            RunOptions {
                ckpt: Some(Checkpointing::new(&path, 24, false)),
                observer: Some(observer),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine_slots_total"), Some(72));
        // 72 slots / every=24 → boundaries at t=24, 48, 72.
        assert_eq!(snap.counter("engine_checkpoints_total"), Some(3));
        let timers = snap.histogram("engine_phase_solve_seconds").expect("solve timer");
        assert_eq!(timers.count, 72);
    }

    #[test]
    fn simulated_crash_leaves_checkpoint_and_resume_completes() {
        let setup = small_setup();
        let dir = std::env::temp_dir().join("coca_runtime_test_crash");
        let path = dir.join("ckpt.json");
        let _ = std::fs::remove_file(&path);
        let crash = run_lockstep_checkpointed(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
            RunOptions {
                ckpt: Some(Checkpointing {
                    path: &path,
                    every: 24,
                    resume: false,
                    abort_at_slot: Some(36),
                }),
                ..RunOptions::default()
            },
        );
        match crash {
            Err(SimError::Internal(msg)) => assert_eq!(msg, SIMULATED_CRASH),
            other => panic!("expected a simulated crash, got {other:?}"),
        }
        assert!(path.exists(), "crash leaves the boundary checkpoint behind");
        let resumed = run_lockstep_checkpointed(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
            RunOptions {
                ckpt: Some(Checkpointing::new(&path, 24, true)),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let uninterrupted = run_lockstep(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
        )
        .unwrap();
        assert_eq!(resumed, uninterrupted, "post-crash resume must be exact");
        assert!(!path.exists());
    }

    #[test]
    fn overestimation_option_matches_engine_setting() {
        let setup = small_setup();
        let with_opts = run_lockstep_checkpointed(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
            RunOptions { overestimation: 1.2, ..RunOptions::default() },
        )
        .unwrap();
        let mut engine = SimEngine::new(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
        )
        .unwrap();
        engine.set_overestimation(1.2).unwrap();
        for policy in lanes(&setup) {
            let _ = engine.add_policy(policy);
        }
        let _ = engine.run_to_end().unwrap();
        let reference = engine.into_outcomes().unwrap();
        assert_eq!(with_opts, reference, "RunOptions φ must equal set_overestimation");
    }

    #[test]
    fn incompatible_checkpoint_is_ignored() {
        let setup = small_setup();
        let dir = std::env::temp_dir().join("coca_runtime_test_incompat");
        let path = dir.join("ckpt.json");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "{not json").unwrap();
        let out = run_lockstep_checkpointed(
            Arc::clone(&setup.cluster),
            &setup.trace,
            setup.cost,
            setup.rec_total,
            lanes(&setup),
            RunOptions {
                ckpt: Some(Checkpointing::new(&path, 24, true)),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.len(), 1, "run falls back to a fresh start");
    }
}
