//! # coca-experiments — the figure-reproduction harness
//!
//! Everything needed to regenerate the paper's evaluation (Sec. 5):
//!
//! * [`setup`] — builds the paper's scenario: the 216 K-server fleet (or a
//!   scaled-down variant), the FIU/MSR year traces, and the carbon budget
//!   calibrated exactly as in Sec. 5.1 (92 % of the carbon-unaware
//!   consumption; 40 % off-site renewables / 60 % RECs; on-site ≈ 20 % of
//!   consumption).
//! * [`figures`] — one function per figure; each returns printable
//!   [`report::Series`] so the `repro` binary and the integration tests
//!   share the same code paths.
//! * [`report`] — plain-text table/series printing and CSV output.
//! * [`parallel`] — order-preserving multi-threaded sweeps for independent
//!   experiment points.
//! * [`runtime`] — checkpointed lockstep runs: frame-boundary snapshots of
//!   the engine state so interrupted reproductions resume with
//!   `repro --resume`.
//!
//! Run `cargo run --release -p coca-experiments --bin repro -- all` to
//! regenerate everything; see `EXPERIMENTS.md` for recorded results.

#![deny(missing_docs, unsafe_code)]

pub mod figures;
pub mod parallel;
pub mod report;
pub mod runtime;
pub mod setup;

pub use report::Series;
pub use setup::{ExperimentScale, PaperSetup};
