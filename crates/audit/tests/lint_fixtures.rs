//! Lint-pass self-test: runs the audit rules against fixture files with
//! known violations — checking rule ids, line numbers, and waiver status
//! per rule — and then against the live workspace, which must carry zero
//! unwaived violations.
//!
//! Fixtures live in `crates/audit/fixtures/` (outside any `src/` tree) so
//! they are neither compiled nor picked up by [`coca_audit::run_lint`];
//! each test lints one under a *pretend* path so the path-gated rules
//! (hot-path, must-use crates) fire deterministically.

use std::path::Path;

use coca_audit::{lint_source, lint_sources, run_lint, Report};

/// Lints fixture `text` as if it lived at `pretend_path`.
fn lint_fixture(pretend_path: &str, text: &str) -> Report {
    let mut report = Report::default();
    lint_source(pretend_path, text, &mut report);
    report
}

/// `(rule, line, waived)` triples in file order, for compact assertions.
fn triples(report: &Report) -> Vec<(&str, usize, bool)> {
    report.violations.iter().map(|v| (v.rule, v.line, v.waived)).collect()
}

#[test]
fn no_panic_fixture_flags_each_panic_site() {
    let r = lint_fixture(
        "crates/opt/src/waterfill.rs",
        include_str!("../fixtures/no_panic.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("no-panic", 5, false),  // bare `.unwrap()`
            ("no-panic", 6, false),  // bare `.expect(...)`
            ("no-panic", 8, false),  // `panic!`
            ("no-panic", 12, false), // `unreachable!`
            ("no-panic", 18, true),  // waived via audit:allow(no-panic)
        ],
        "{r}"
    );
}

#[test]
fn no_panic_fixture_is_quiet_outside_hot_paths() {
    let r = lint_fixture(
        "crates/experiments/src/fixture.rs",
        include_str!("../fixtures/no_panic.rs"),
    );
    assert_eq!(triples(&r), vec![], "{r}");
}

#[test]
fn float_eq_fixture_flags_raw_float_comparisons() {
    let r = lint_fixture(
        "crates/traces/src/fixture.rs",
        include_str!("../fixtures/float_eq.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("float-eq", 5, false),  // power == 0.0
            ("float-eq", 9, false),  // q != 0.0
            ("float-eq", 13, false), // x * 1.5 == target
            ("float-eq", 22, true),  // waived via audit:allow(float-eq)
        ],
        "{r}"
    );
}

#[test]
fn nan_guard_fixture_flags_unguarded_operations() {
    let r = lint_fixture(
        "crates/opt/src/dual.rs",
        include_str!("../fixtures/nan_guard.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("nan-guard", 5, false),  // unguarded .ln()
            ("nan-guard", 9, false),  // unguarded .sqrt()
            ("nan-guard", 13, false), // unguarded identifier division
            ("nan-guard", 31, true),  // waived via audit:allow(nan-guard)
        ],
        "{r}"
    );
}

#[test]
fn must_use_fixture_flags_unannotated_result_types() {
    let r = lint_fixture(
        "crates/opt/src/fixture.rs",
        include_str!("../fixtures/must_use.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("must-use", 6, false), // FixtureSolution lacks #[must_use]
            ("must-use", 26, true), // waived via audit:allow(must-use)
        ],
        "{r}"
    );
}

#[test]
fn hot_alloc_fixture_flags_allocations_in_declared_regions_only() {
    let r = lint_fixture(
        "crates/traces/src/fixture.rs",
        include_str!("../fixtures/hot_alloc.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("hot-alloc", 10, false), // `.to_vec()` in the delta-update path
            ("hot-alloc", 12, false), // `format!` in the delta-update path
            ("hot-alloc", 24, true),  // waived via audit:allow(hot-alloc)
        ],
        "{r}"
    );
}

#[test]
fn slot_loop_fixture_flags_hand_rolled_slot_loops() {
    let r = lint_fixture(
        "crates/experiments/src/fixture.rs",
        include_str!("../fixtures/slot_loop.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("slot-loop", 6, false),  // for t in 0..trace.len()
            ("slot-loop", 14, false), // for slot in 0..env_trace.len()
            ("slot-loop", 22, false), // for t in 0..num_slots
            ("slot-loop", 39, true),  // waived via audit:allow(slot-loop)
        ],
        "{r}"
    );
}

#[test]
fn slot_loop_fixture_is_quiet_in_engine_and_traces() {
    for allowed in ["crates/dcsim/src/engine.rs", "crates/traces/src/fixture.rs"] {
        let r = lint_fixture(allowed, include_str!("../fixtures/slot_loop.rs"));
        assert!(
            r.violations.iter().all(|v| v.rule != "slot-loop"),
            "{allowed}: {r}"
        );
    }
}

#[test]
fn no_print_fixture_flags_each_print_site() {
    let r = lint_fixture(
        "crates/experiments/src/fixture.rs",
        include_str!("../fixtures/no_print.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("no-print", 5, false),  // println!
            ("no-print", 9, false),  // eprintln!
            ("no-print", 13, false), // dbg!
            ("no-print", 17, false), // print!
            ("no-print", 22, true),  // waived via audit:allow(no-print)
        ],
        "{r}"
    );
}

#[test]
fn no_print_fixture_is_quiet_on_designated_print_surfaces() {
    for allowed in [
        "crates/scenarios/src/bin/repro.rs",
        "crates/obs/src/logger.rs",
        "crates/audit/src/main.rs",
    ] {
        let r = lint_fixture(allowed, include_str!("../fixtures/no_print.rs"));
        assert!(
            r.violations.iter().all(|v| v.rule != "no-print"),
            "{allowed}: {r}"
        );
    }
}

#[test]
fn unit_mix_fixture_flags_cross_unit_arithmetic() {
    let r = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/unit_mix.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("unit-mix", 5, false),  // battery_kwh + total_usd (suffix inference)
            ("unit-mix", 11, false), // annotated kWh binding < cost_usd
            ("unit-mix", 30, true),  // waived via audit:allow(unit-mix)
            ("unit-mix", 35, false), // float-eq waiver does not cover unit-mix
        ],
        "{r}"
    );
}

#[test]
fn atomic_ordering_fixture_flags_each_contract_gap() {
    let r = lint_fixture(
        "crates/obs/src/fixture.rs",
        include_str!("../fixtures/atomic_ordering.rs"),
    );
    assert_eq!(
        triples(&r),
        vec![
            ("atomic-ordering", 8, false),  // load without a contract annotation
            ("atomic-ordering", 18, false), // audit:atomic() with empty contract
            ("atomic-ordering", 23, false), // CAS failure ordering stronger than success
            ("atomic-ordering", 28, false), // CAS result silently dropped
            ("atomic-ordering", 37, true),  // waived via audit:allow(atomic-ordering)
            ("atomic-ordering", 42, false), // no-print waiver does not cover atomic-ordering
        ],
        "{r}"
    );
}

#[test]
fn deprecated_api_fixture_flags_cross_file_uses_only() {
    let sources = vec![
        (
            "crates/dcsim/src/fixture_old.rs".to_string(),
            include_str!("../fixtures/deprecated_def.rs").to_string(),
        ),
        (
            "crates/dcsim/src/fixture_new.rs".to_string(),
            include_str!("../fixtures/deprecated_use.rs").to_string(),
        ),
    ];
    let r = lint_sources(&sources);
    let dep: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "deprecated-api")
        .map(|v| (v.file.as_str(), v.line, v.waived))
        .collect();
    assert_eq!(
        dep,
        vec![
            // The defining file's own mirror writes never appear here.
            ("crates/dcsim/src/fixture_new.rs", 5, false),  // OldFacade in a signature
            ("crates/dcsim/src/fixture_new.rs", 6, false),  // OldFacade constructed
            ("crates/dcsim/src/fixture_new.rs", 10, false), // deprecated mirror field read
            ("crates/dcsim/src/fixture_new.rs", 18, true),  // waived compat test
            ("crates/dcsim/src/fixture_new.rs", 25, false), // unit-mix waiver does not cover it
        ],
        "{r}"
    );
}

#[test]
fn clean_fixture_passes_every_rule_even_on_a_hot_path() {
    let r = lint_fixture(
        "crates/core/src/solver.rs",
        include_str!("../fixtures/clean.rs"),
    );
    assert_eq!(triples(&r), vec![], "{r}");
}

#[test]
fn live_workspace_has_no_unwaived_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_lint(&root).expect("workspace lint run");
    assert_eq!(report.unwaived_count(), 0, "unwaived violations:\n{report}");
    assert!(report.is_clean());
    // The documented waivers (e.g. the protocol panics in the distributed
    // GSD loop) must stay visible in the report rather than vanish.
    assert!(report.waived_count() > 0, "expected documented waivers:\n{report}");
    // Fixtures sit outside src/ and must not be swept into the real run.
    assert!(
        report.violations.iter().all(|v| !v.file.contains("fixtures/")),
        "{report}"
    );
}
