//! Interprocedural-pass self-tests: the `unit-flow`, `hot-path-reach`,
//! and `stale-waiver` analyses against fixture files whose defects are
//! invisible to the per-file rules. Every test drives
//! [`coca_audit::lint_sources`] — the only entry point where the
//! dataflow passes run — under *pretend* workspace paths, like the
//! per-file fixture tests.

use coca_audit::{lint_sources, Report};

/// Lints fixture texts as if they lived at the given workspace paths.
fn lint(files: &[(&str, &str)]) -> Report {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(path, text)| (path.to_string(), text.to_string()))
        .collect();
    lint_sources(&sources)
}

/// `(rule, file, line, waived)` tuples in report order.
fn tuples(report: &Report) -> Vec<(&str, &str, usize, bool)> {
    report
        .violations
        .iter()
        .map(|v| (v.rule, v.file.as_str(), v.line, v.waived))
        .collect()
}

const FLOW_LIB: &str = "crates/core/src/flow_lib.rs";
const FLOW_USE: &str = "crates/core/src/flow_use.rs";
const HOT_FIX: &str = "crates/core/src/hot_fixture.rs";
const STALE_FIX: &str = "crates/core/src/stale_fixture.rs";

#[test]
fn unit_flow_fixture_flags_cross_file_defects_only() {
    let r = lint(&[
        (FLOW_LIB, include_str!("../fixtures/unit_flow_lib.rs")),
        (FLOW_USE, include_str!("../fixtures/unit_flow_use.rs")),
    ]);
    assert_eq!(
        tuples(&r),
        vec![
            // Conflicting inference lands on the callee's definition.
            ("unit-flow", FLOW_LIB, 20, false), // `scale`'s `amount`: kWh vs USD callers
            ("unit-flow", FLOW_USE, 6, false),  // kWh return into USD parameter
            ("unit-flow", FLOW_USE, 7, false),  // inferred kWh − local USD
            ("unit-flow", FLOW_USE, 23, true),  // waived via audit:allow(unit-flow)
        ],
        "{r}"
    );
}

#[test]
fn unit_flow_findings_carry_the_cross_file_evidence() {
    let r = lint(&[
        (FLOW_LIB, include_str!("../fixtures/unit_flow_lib.rs")),
        (FLOW_USE, include_str!("../fixtures/unit_flow_use.rs")),
    ]);
    // Argument-vs-parameter: related location points at the declaration.
    let arg = r
        .violations
        .iter()
        .find(|v| v.file == FLOW_USE && v.line == 6)
        .expect("arg-vs-param finding");
    assert!(arg.message.contains("total_usd"), "{}", arg.message);
    assert_eq!(arg.related.len(), 1, "{arg:?}");
    assert_eq!((arg.related[0].file.as_str(), arg.related[0].line), (FLOW_LIB, 15));
    // Inferred mix: related location explains where kWh was inferred.
    let mix = r
        .violations
        .iter()
        .find(|v| v.file == FLOW_USE && v.line == 7)
        .expect("inferred-mix finding");
    assert_eq!((mix.related[0].file.as_str(), mix.related[0].line), (FLOW_LIB, 6));
    assert!(mix.related[0].message.contains("kWh"), "{:?}", mix.related[0]);
    // Conflict: each contributing call site is a related location.
    let conflict = r
        .violations
        .iter()
        .find(|v| v.file == FLOW_LIB && v.line == 20)
        .expect("conflict finding");
    let sites: Vec<(&str, usize)> =
        conflict.related.iter().map(|rl| (rl.file.as_str(), rl.line)).collect();
    assert_eq!(sites, vec![(FLOW_USE, 13), (FLOW_USE, 18)], "{conflict:?}");
}

#[test]
fn hot_reach_fixture_flags_hidden_sinks_and_defers_direct_ones() {
    let r = lint(&[(HOT_FIX, include_str!("../fixtures/hot_reach.rs"))]);
    assert_eq!(
        tuples(&r),
        vec![
            ("hot-path-reach", HOT_FIX, 32, false), // refresh → rebuild → Vec::with_capacity
            // The in-region `format!` stays with hot-alloc — reachability
            // never double-reports a direct hot-region site.
            ("hot-alloc", HOT_FIX, 33, false),
            ("hot-path-reach", HOT_FIX, 34, false), // ping → pong → to_string (cycle terminates)
        ],
        "{r}"
    );
}

#[test]
fn hot_reach_chain_is_rendered_hop_by_hop() {
    let r = lint(&[(HOT_FIX, include_str!("../fixtures/hot_reach.rs"))]);
    let v = r
        .violations
        .iter()
        .find(|v| v.rule == "hot-path-reach" && v.line == 32)
        .expect("two-hop finding");
    assert!(v.message.contains("2 calls deep"), "{}", v.message);
    let hops: Vec<usize> = v.related.iter().map(|rl| rl.line).collect();
    // refresh's def, rebuild's def, then the sink line itself.
    assert_eq!(hops, vec![5, 10, 11], "{v:?}");
    assert!(v.related[2].message.contains("Vec::with_capacity"), "{v:?}");
}

#[test]
fn stale_waiver_fixture_flags_each_hygiene_gap() {
    let r = lint(&[(STALE_FIX, include_str!("../fixtures/stale_waiver.rs"))]);
    assert_eq!(
        tuples(&r),
        vec![
            ("float-eq", STALE_FIX, 6, true),      // live waiver: stays used
            ("stale-waiver", STALE_FIX, 11, false), // no-panic waiver suppresses nothing
            ("stale-waiver", STALE_FIX, 16, false), // unknown rule id
            ("stale-waiver", STALE_FIX, 21, true),  // kept waiver, waived as such
            ("stale-waiver", STALE_FIX, 24, false), // audit:unit binds nothing
            ("stale-waiver", STALE_FIX, 26, false), // audit:atomic with no atomic op
        ],
        "{r}"
    );
}

const SNAP_FIX: &str = "crates/core/src/snap_fixture.rs";
const NONDET_FIX: &str = "crates/core/src/nondet_fixture.rs";

#[test]
fn snapshot_complete_fixture_flags_each_coverage_gap() {
    let r = lint(&[(SNAP_FIX, include_str!("../fixtures/snapshot_complete.rs"))]);
    assert_eq!(
        tuples(&r),
        vec![
            ("snapshot-complete", SNAP_FIX, 6, false), // `lost`: neither side
            ("snapshot-complete", SNAP_FIX, 8, true),  // `scratch`: reasoned transient
            ("snapshot-complete", SNAP_FIX, 10, false), // `half`: empty reason never waives
            ("stale-waiver", SNAP_FIX, 11, false), // transient on a fully covered field
            ("snapshot-complete", SNAP_FIX, 21, false), // `snap_only`: restore never writes it
        ],
        "{r}"
    );
}

#[test]
fn snapshot_complete_findings_name_the_field() {
    let r = lint(&[(SNAP_FIX, include_str!("../fixtures/snapshot_complete.rs"))]);
    let missing = r
        .violations
        .iter()
        .find(|v| v.rule == "snapshot-complete" && v.line == 6)
        .expect("neither-side finding");
    assert!(missing.message.contains("`lost`"), "{}", missing.message);
    assert!(missing.message.contains("`Ctl`"), "{}", missing.message);
    // The restore-side asymmetry lands on the restore definition and
    // points back at the field declaration.
    let asym = r
        .violations
        .iter()
        .find(|v| v.rule == "snapshot-complete" && v.line == 21)
        .expect("snap-only finding");
    assert!(asym.message.contains("`snap_only`"), "{}", asym.message);
    assert!(asym.message.contains("never writes"), "{}", asym.message);
    assert_eq!(asym.related.len(), 1, "{asym:?}");
    assert_eq!((asym.related[0].file.as_str(), asym.related[0].line), (SNAP_FIX, 13));
}

#[test]
fn nondet_reach_fixture_flags_each_sink_once() {
    let r = lint(&[(NONDET_FIX, include_str!("../fixtures/nondet_reach.rs"))]);
    assert_eq!(
        tuples(&r),
        vec![
            ("nondet-reach", NONDET_FIX, 10, false), // for-loop over hash map in to_json
            ("nondet-reach", NONDET_FIX, 23, false), // two-hop: encode → walk → .iter()
            ("nondet-reach", NONDET_FIX, 33, false), // through the ping/pong cycle, once
            ("nondet-reach", NONDET_FIX, 44, false), // Instant::now in sweep
            ("nondet-reach", NONDET_FIX, 59, true),  // waived via audit:ordered(…)
            ("stale-waiver", NONDET_FIX, 64, false), // ordered annotation excusing nothing
        ],
        "{r}"
    );
}

#[test]
fn nondet_reach_chain_is_rendered_hop_by_hop() {
    let r = lint(&[(NONDET_FIX, include_str!("../fixtures/nondet_reach.rs"))]);
    let v = r
        .violations
        .iter()
        .find(|v| v.rule == "nondet-reach" && v.line == 23)
        .expect("two-hop finding");
    assert!(v.message.contains("2 fns deep"), "{}", v.message);
    assert!(v.message.contains("`encode`"), "{}", v.message);
    // encode's def, walk's def, then the sink line itself.
    let hops: Vec<usize> = v.related.iter().map(|rl| rl.line).collect();
    assert_eq!(hops, vec![18, 22, 23], "{v:?}");
    assert!(v.related[0].message.contains("state-affecting root"), "{v:?}");
    assert!(v.related[2].message.contains("hash-ordered iteration"), "{v:?}");
}
