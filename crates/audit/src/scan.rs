//! Lexical pass over one Rust source file.
//!
//! Produces, per line: the sanitized text (string-literal contents and
//! comments blanked so token matching cannot fire inside them), whether
//! the line sits inside a `#[cfg(test)]` module, and any
//! `audit:allow(<rule>)` waivers declared on the line.

/// One analyzed source line.
#[derive(Debug)]
pub struct Line {
    /// Line text with string contents and comments replaced by spaces.
    pub code: String,
    /// Waiver rule ids declared in this line's comments.
    pub waivers: Vec<String>,
    /// True when the line is inside a `#[cfg(test)]` module body.
    pub in_test: bool,
    /// True when the line sits inside an `audit:hot-path` region — between
    /// a `// audit:hot-path: begin` and `// audit:hot-path: end` comment.
    pub in_hot: bool,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used in reports.
    pub path: String,
    /// Analyzed lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

/// Comment/string stripper state that survives across lines (Rust string
/// literals and block comments may both span multiple lines).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    BlockComment(u32),
    Str,
    RawString(u32),
}

impl SourceFile {
    /// Scans `text` into per-line records.
    pub fn parse(path: &str, text: &str) -> Self {
        let mut lines = Vec::new();
        let mut mode = Mode::Code;
        // Brace depth at which the innermost `#[cfg(test)]` module opened;
        // while `Some`, lines belong to test code.
        let mut depth: i64 = 0;
        let mut test_region_depth: Option<i64> = None;
        // A `#[cfg(test)]` attribute was seen and we are waiting for the
        // item it decorates to open its brace.
        let mut test_attr_armed = false;
        // Inside a declared `audit:hot-path` region. The begin/end marker
        // lines themselves are comment-only and count as outside.
        let mut in_hot = false;

        for raw in text.lines() {
            let (code, comment, next_mode) = sanitize(raw, mode);
            mode = next_mode;

            let waivers = extract_waivers(&comment);
            let in_test = test_region_depth.is_some();
            let marker = hot_marker(&comment);
            if marker == Some(false) {
                in_hot = false;
            }
            let line_in_hot = in_hot;
            if marker == Some(true) {
                in_hot = true;
            }

            if code.contains("#[cfg(test)]") {
                test_attr_armed = true;
            }
            for ch in code.chars() {
                match ch {
                    '{' => {
                        if test_attr_armed {
                            test_region_depth.get_or_insert(depth);
                            test_attr_armed = false;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if test_region_depth == Some(depth) {
                            test_region_depth = None;
                        }
                    }
                    _ => {}
                }
            }

            lines.push(Line { code, waivers, in_test, in_hot: line_in_hot });
        }
        SourceFile { path: path.to_string(), lines }
    }

    /// True when `line_idx` (0-based) carries a waiver for `rule`, either
    /// on the line itself or on the immediately preceding line.
    pub fn waived(&self, line_idx: usize, rule: &str) -> bool {
        let on = |idx: usize| {
            self.lines
                .get(idx)
                .is_some_and(|l| l.waivers.iter().any(|w| w == rule))
        };
        on(line_idx) || (line_idx > 0 && on(line_idx - 1))
    }
}

/// Blanks string-literal contents and comments from one line, returning
/// `(code, comment_text, state_for_next_line)`. Lengths are preserved for
/// `code` so column positions keep meaning.
fn sanitize(raw: &str, start: Mode) -> (String, String, Mode) {
    let bytes: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut mode = start;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::BlockComment(n) => {
                comment.push(c);
                code.push(' ');
                if c == '*' && next == Some('/') {
                    comment.push('/');
                    code.push(' ');
                    i += 1;
                    mode = if n > 1 { Mode::BlockComment(n - 1) } else { Mode::Code };
                } else if c == '/' && next == Some('*') {
                    comment.push('*');
                    code.push(' ');
                    i += 1;
                    mode = Mode::BlockComment(n + 1);
                }
            }
            Mode::Str => {
                if c == '\\' {
                    code.push(' ');
                    if next.is_some() {
                        code.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                } else {
                    code.push(' ');
                }
            }
            Mode::RawString(hashes) => {
                code.push(' ');
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += hashes as usize;
                        mode = Mode::Code;
                    }
                }
            }
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    comment.extend(&bytes[i..]);
                    while code.len() < raw.chars().count() {
                        code.push(' ');
                    }
                    break;
                }
                '/' if next == Some('*') => {
                    comment.push_str("/*");
                    code.push(' ');
                    code.push(' ');
                    i += 1;
                    mode = Mode::BlockComment(1);
                }
                'r' if next == Some('"') => {
                    code.push(' ');
                    code.push(' ');
                    i += 1;
                    mode = Mode::RawString(0);
                }
                'r' if next == Some('#') => {
                    // Count hashes; raw string only if a quote follows.
                    let mut h = 0usize;
                    while bytes.get(i + 1 + h) == Some(&'#') {
                        h += 1;
                    }
                    if bytes.get(i + 1 + h) == Some(&'"') {
                        for _ in 0..h + 2 {
                            code.push(' ');
                        }
                        i += h + 1;
                        mode = Mode::RawString(h as u32);
                    } else {
                        code.push(c);
                    }
                }
                '"' => {
                    code.push('"');
                    mode = Mode::Str;
                }
                '\'' => {
                    // Char literal or lifetime: treat as a char literal
                    // only when a closing quote appears within a few
                    // characters (`'a'`, `'\n'`, `'"'`); otherwise it is a
                    // lifetime and stays in the code text.
                    let close = (2..=4).find(|&k| bytes.get(i + k) == Some(&'\''));
                    if let Some(k) = close {
                        for _ in 0..=k {
                            code.push(' ');
                        }
                        i += k;
                    } else {
                        code.push(c);
                    }
                }
                _ => code.push(c),
            },
        }
        i += 1;
    }
    (code, comment, mode)
}

/// Detects a hot-path region marker: `Some(true)` for begin, `Some(false)`
/// for end. The comment must *start* with the marker (after the comment
/// leader), so prose that merely mentions the marker — e.g. this crate's
/// own rule documentation — does not toggle a region.
fn hot_marker(comment: &str) -> Option<bool> {
    let t = comment.trim_start_matches(['/', '*', '!']).trim_start();
    if t.starts_with("audit:hot-path: begin") {
        Some(true)
    } else if t.starts_with("audit:hot-path: end") {
        Some(false)
    } else {
        None
    }
}

/// Pulls every `audit:allow(a, b)` rule list out of a comment.
///
/// Doc comments (`///`, `//!`, `/**`, `/*!`) never declare waivers: they
/// are rendered prose, and this crate's own rule documentation mentions
/// the marker constantly. Only plain comments carry waivers. (Caveat:
/// continuation lines of a multi-line block doc comment lose the leader
/// during sanitization and are not recognized — the workspace convention
/// is line doc comments, where this cannot arise.)
fn extract_waivers(comment: &str) -> Vec<String> {
    let t = comment.trim_start();
    if t.starts_with("///") || t.starts_with("//!") || t.starts_with("/**") || t.starts_with("/*!")
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("audit:allow(") {
        rest = &rest[pos + "audit:allow(".len()..];
        if let Some(end) = rest.find(')') {
            for rule in rest[..end].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    out.push(rule.to_string());
                }
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let s = \"a.unwrap() / b\"; // real unwrap() here\nlet t = x.unwrap();\n",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[1].code.contains("unwrap"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("x.rs", "/* panic!\n still comment */ let a = 1;\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[1].code.contains("let a = 1"));
    }

    #[test]
    fn cfg_test_region_tracked() {
        let src = "fn real() { work(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "body of cfg(test) mod");
        assert!(!f.lines[5].in_test, "after the mod closes");
    }

    #[test]
    fn waivers_parsed_from_comments() {
        let f = SourceFile::parse(
            "x.rs",
            "// audit:allow(no-panic, float-eq)\nlet x = y.unwrap();\nlet z = 1; // audit:allow(nan-guard)\n",
        );
        assert_eq!(f.lines[0].waivers, vec!["no-panic", "float-eq"]);
        assert!(f.waived(1, "no-panic"), "waiver on preceding line applies");
        assert!(f.waived(1, "float-eq"));
        assert!(!f.waived(1, "nan-guard"));
        assert!(f.waived(2, "nan-guard"), "same-line waiver applies");
    }

    #[test]
    fn doc_comments_do_not_declare_waivers() {
        let src = "\
/// Findings can be waived with `audit:allow(no-panic)` comments.
//! Module prose mentioning audit:allow(float-eq) is not a waiver.
fn f() {}
let x = y.unwrap(); // audit:allow(no-panic)
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.lines[0].waivers.is_empty(), "/// prose is not a waiver");
        assert!(f.lines[1].waivers.is_empty(), "//! prose is not a waiver");
        assert_eq!(f.lines[3].waivers, vec!["no-panic"], "plain comments still waive");
    }

    #[test]
    fn hot_path_regions_tracked() {
        let src = "\
fn cold() { work(); }
// audit:hot-path: begin — per-proposal delta update
fn hot(&mut self) {
    self.counts[i] += 1;
}
// audit:hot-path: end
fn cold_again() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[0].in_hot, "before the region");
        assert!(!f.lines[1].in_hot, "begin marker line itself is outside");
        assert!(f.lines[2].in_hot, "region body");
        assert!(f.lines[4].in_hot, "region body end");
        assert!(!f.lines[5].in_hot, "end marker line itself is outside");
        assert!(!f.lines[6].in_hot, "after the region");
    }

    #[test]
    fn string_literals_span_lines() {
        let src = "let s = format!(\"first line \\\n    second /divisor line\");\nlet x = a / b;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.lines[1].code.contains("divisor"), "{}", f.lines[1].code);
        assert!(f.lines[2].code.contains("a / b"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let f = SourceFile::parse("x.rs", "let q = '\"'; let u = v.unwrap();\n");
        assert!(f.lines[0].code.contains("unwrap"));
    }

    #[test]
    fn lifetimes_survive() {
        let f = SourceFile::parse("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(f.lines[0].code.contains("str"));
    }
}
