//! The lint rules. Each rule walks a [`SourceFile`]'s sanitized lines and
//! records [`Violation`]s; waiver lookup is shared via [`emit`].

use crate::report::{Report, Violation};
use crate::scan::SourceFile;

/// Rule id: no `unwrap()`/`expect(`/`panic!` in solver hot paths.
pub const NO_PANIC: &str = "no-panic";
/// Rule id: no raw f64 `==`/`!=` comparisons.
pub const FLOAT_EQ: &str = "float-eq";
/// Rule id: no unguarded `ln`/`sqrt`/identifier division in hot paths.
pub const NAN_GUARD: &str = "nan-guard";
/// Rule id: solver result types must be `#[must_use]`.
pub const MUST_USE: &str = "must-use";
/// Rule id: no heap allocation inside declared `audit:hot-path` regions.
pub const HOT_ALLOC: &str = "hot-alloc";
/// Rule id: no hand-rolled slot loops outside the streaming engine.
pub const SLOT_LOOP: &str = "slot-loop";
/// Rule id: no direct `println!`/`eprintln!`/`dbg!` outside the designated
/// print surfaces.
pub const NO_PRINT: &str = "no-print";

/// Solver hot paths: a panic or NaN here aborts or corrupts the per-slot
/// control loop whose behavior the paper's Theorem 2 bounds.
const HOT_PATHS: &[&str] = &[
    "crates/opt/src/waterfill.rs",
    "crates/opt/src/bisect.rs",
    "crates/opt/src/dual.rs",
    "crates/opt/src/gibbs.rs",
    "crates/core/src/gsd.rs",
    "crates/core/src/gsd_distributed.rs",
    "crates/core/src/solver.rs",
    "crates/core/src/symmetric.rs",
];

/// Crates whose public `*Solution`/`*Outcome`/`*Result` structs must be
/// `#[must_use]`.
const MUST_USE_CRATES: &[&str] = &["crates/opt/", "crates/core/", "crates/dcsim/"];

/// Files allowed to iterate slot indices by hand: the streaming engine
/// itself, and the traces crate (trace synthesis/serialization is inherently
/// an indexed pass and produces the very data the engine streams).
const SLOT_LOOP_ALLOWED: &[&str] = &["crates/dcsim/src/engine.rs", "crates/traces/"];

/// Paths allowed to print directly: the repro binary (stdout result tables
/// are its product), the observability crate (the logger owns the single
/// stderr emitter), and the audit CLI itself. Everything else must route
/// diagnostics through `coca_obs::logger`.
const PRINT_ALLOWED: &[&str] = &[
    "crates/scenarios/src/bin/",
    "crates/obs/src/",
    "crates/audit/src/main.rs",
    "crates/audit/src/bin/",
    "crates/serve/src/bin/",
];

/// How many preceding lines count as "nearby" when looking for a guard
/// before a NaN-capable operation.
const GUARD_WINDOW: usize = 12;

/// Runs every rule applicable to `file`.
pub fn apply_all(file: &SourceFile, report: &mut Report) {
    let hot = HOT_PATHS.iter().any(|p| file.path.ends_with(p));
    if hot {
        no_panic(file, report);
        nan_guard(file, report);
    }
    float_eq(file, report);
    hot_alloc(file, report);
    if !SLOT_LOOP_ALLOWED.iter().any(|p| file.path.contains(p)) {
        slot_loop(file, report);
    }
    if !PRINT_ALLOWED.iter().any(|p| file.path.contains(p)) {
        no_print(file, report);
    }
    if MUST_USE_CRATES.iter().any(|p| file.path.contains(p)) {
        must_use(file, report);
    }
}

fn emit(file: &SourceFile, idx: usize, rule: &'static str, message: String, report: &mut Report) {
    report.push(Violation {
        file: file.path.clone(),
        line: idx + 1,
        rule,
        message,
        waived: file.waived(idx, rule),
        related: Vec::new(),
    });
}

/// `no-panic`: bare `unwrap()`, `expect(...)`, or `panic!` in hot-path
/// non-test code.
fn no_panic(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, what) in [
            (".unwrap()", "bare `unwrap()`"),
            (".expect(", "bare `expect(...)`"),
            ("panic!", "`panic!`"),
            ("unreachable!", "`unreachable!`"),
        ] {
            if line.code.contains(needle) {
                emit(
                    file,
                    idx,
                    NO_PANIC,
                    format!("{what} in solver hot path; return a typed error instead"),
                    report,
                );
            }
        }
    }
}

/// True when `segment` contains evidence of a floating-point operand: an
/// `f64`/`f32` token, or a float literal (`1.0`, `2.`, `1e-6`).
fn has_float_evidence(segment: &str) -> bool {
    if segment.contains("f64") || segment.contains("f32") {
        return true;
    }
    let chars: Vec<char> = segment.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_digit()
            && (i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_'))
        {
            let mut j = i;
            while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
            // `12.` or `12.3` is a float literal unless it opens a range
            // (`12..`) or a method call (`12.max(...)`).
            if j < chars.len() && chars[j] == '.' {
                let after = chars.get(j + 1).copied();
                if after != Some('.') && !after.is_some_and(|c| c.is_alphabetic() || c == '_') {
                    return true;
                }
            }
            // Exponent form `1e-6` / `3E5`.
            if j < chars.len() && (chars[j] == 'e' || chars[j] == 'E') {
                let mut k = j + 1;
                if matches!(chars.get(k), Some('+' | '-')) {
                    k += 1;
                }
                if chars.get(k).is_some_and(char::is_ascii_digit) {
                    return true;
                }
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    false
}

/// Extracts the operand text to the left/right of an operator occurrence,
/// bounded by expression delimiters.
fn operand_segments(code: &str, op_start: usize, op_len: usize) -> (String, String) {
    let bytes = code.as_bytes();
    let is_boundary = |b: u8| matches!(b, b',' | b';' | b'(' | b')' | b'{' | b'}' | b'[' | b']');
    let mut l = op_start;
    while l > 0 {
        let b = bytes[l - 1];
        if is_boundary(b) || (b == b'&' && l >= 2 && bytes[l - 2] == b'&') {
            break;
        }
        // A single `=` (assignment / let binding) bounds the left operand;
        // without this, type annotations like `Option<f64>` on a binding
        // would leak float evidence into the comparison.
        if b == b'=' && (l < 2 || !matches!(bytes[l - 2], b'=' | b'<' | b'>' | b'!')) && bytes.get(l) != Some(&b'=') {
            break;
        }
        l -= 1;
    }
    let mut r = op_start + op_len;
    while r < bytes.len() {
        let b = bytes[r];
        if is_boundary(b) || (b == b'&' && r + 1 < bytes.len() && bytes[r + 1] == b'&') {
            break;
        }
        r += 1;
    }
    (
        code[l..op_start].trim().to_string(),
        code[op_start + op_len..r].trim().to_string(),
    )
}

/// `float-eq`: `==` or `!=` where either operand shows float evidence.
fn float_eq(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let bytes = code.as_bytes();
        let mut pos = 0;
        while pos + 1 < bytes.len() {
            let two = &bytes[pos..pos + 2];
            let is_eq = two == b"==";
            let is_ne = two == b"!=";
            if !(is_eq || is_ne) {
                pos += 1;
                continue;
            }
            // Reject `<=`, `>=`, `===`-like runs, `=>`, and `a != =`.
            let prev = pos.checked_sub(1).map(|p| bytes[p]);
            let next = bytes.get(pos + 2).copied();
            if is_eq && matches!(prev, Some(b'<' | b'>' | b'=' | b'!' | b'+' | b'-' | b'*' | b'/')) {
                pos += 2;
                continue;
            }
            if next == Some(b'=') {
                pos += 3;
                continue;
            }
            let (left, right) = operand_segments(code, pos, 2);
            if has_float_evidence(&left) || has_float_evidence(&right) {
                emit(
                    file,
                    idx,
                    FLOAT_EQ,
                    format!(
                        "raw float {} comparison (`{}` {} `{}`); compare against a tolerance",
                        if is_eq { "equality" } else { "inequality" },
                        left,
                        if is_eq { "==" } else { "!=" },
                        right,
                    ),
                    report,
                );
            }
            pos += 2;
        }
    }
}

/// Markers that count as a guard for a NaN-capable operation when found
/// near the operand: assertions, finiteness checks, clamps to a floor, or
/// explicit sign/zero checks.
const GUARD_MARKERS: &[&str] = &[
    "assert", "is_finite", "is_nan", ".max(", "clamp", "> 0", ">= ", "!= 0", "pos(", "abs()",
    "is_empty", "min_positive",
];

/// True when a guard marker appears on `line_idx` or within the preceding
/// window, mentioning `ident` when one is known.
fn guarded(file: &SourceFile, line_idx: usize, ident: Option<&str>) -> bool {
    let lo = line_idx.saturating_sub(GUARD_WINDOW);
    file.lines[lo..=line_idx].iter().any(|l| {
        GUARD_MARKERS.iter().any(|m| l.code.contains(m))
            && ident.is_none_or(|id| l.code.contains(id))
    })
}

/// Extracts the trailing simple identifier of the expression ending at
/// byte `end` (exclusive), e.g. `self.queue.q` → `q`.
fn trailing_ident(code: &str, end: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut s = end;
    while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
        s -= 1;
    }
    if s == end || bytes[s].is_ascii_digit() {
        return None;
    }
    Some(code[s..end].to_string())
}

/// Leading simple identifier starting at byte `start`.
fn leading_ident(code: &str, start: usize) -> Option<String> {
    let bytes = code.as_bytes();
    if start >= bytes.len() || !(bytes[start].is_ascii_alphabetic() || bytes[start] == b'_') {
        return None;
    }
    let mut e = start;
    while e < bytes.len() && (bytes[e].is_ascii_alphanumeric() || bytes[e] == b'_') {
        e += 1;
    }
    Some(code[start..e].to_string())
}

/// `nan-guard`: `ln()`/`sqrt()` calls and identifier divisions in hot-path
/// non-test code must have a nearby guard on the operand.
fn nan_guard(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for method in [".ln()", ".sqrt()"] {
            let mut from = 0;
            while let Some(off) = code[from..].find(method) {
                let at = from + off;
                let ident = trailing_ident(code, at);
                if !guarded(file, idx, ident.as_deref()) {
                    emit(
                        file,
                        idx,
                        NAN_GUARD,
                        format!(
                            "`{}{method}` without a nearby guard on the operand",
                            ident.as_deref().unwrap_or("<expr>")
                        ),
                        report,
                    );
                }
                from = at + method.len();
            }
        }
        // Identifier divisions: `a / b` where the divisor is a plain
        // identifier (a literal divisor cannot be zero at runtime).
        let bytes = code.as_bytes();
        for (pos, &b) in bytes.iter().enumerate() {
            if b != b'/' {
                continue;
            }
            // Not `//` (stripped anyway), `/=`, or a closing `*/`.
            if matches!(bytes.get(pos + 1), Some(b'/' | b'=')) || matches!(prev_byte(bytes, pos), Some(b'/' | b'*')) {
                continue;
            }
            let mut d = pos + 1;
            while d < bytes.len() && bytes[d] == b' ' {
                d += 1;
            }
            let Some(div) = leading_ident(code, d) else { continue };
            // A path like `std::f64::EPSILON` or a call `f(x)` is treated
            // as a complex divisor; only flag plain value identifiers.
            let after = d + div.len();
            if matches!(bytes.get(after), Some(b':' | b'(' | b'!')) {
                continue;
            }
            // Constants by convention (SCREAMING_SNAKE) are not runtime
            // zeros; skip them.
            if div.chars().all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit()) {
                continue;
            }
            // Dotted divisor `a / x.len()`-style: use the full receiver's
            // last segment after the dot chain.
            let divisor_end = {
                let mut e = after;
                while e < bytes.len()
                    && (bytes[e].is_ascii_alphanumeric() || bytes[e] == b'_' || bytes[e] == b'.')
                {
                    e += 1;
                }
                e
            };
            let full = &code[d..divisor_end];
            let key = full.rsplit('.').next().unwrap_or(full).to_string();
            if !guarded(file, idx, Some(key.as_str())) {
                emit(
                    file,
                    idx,
                    NAN_GUARD,
                    format!("division by `{full}` without a nearby guard"),
                    report,
                );
            }
        }
    }
}

fn prev_byte(bytes: &[u8], pos: usize) -> Option<u8> {
    pos.checked_sub(1).map(|p| bytes[p])
}

/// Allocation keywords that must not appear inside an `audit:hot-path`
/// region: a per-proposal delta update runs ~500× per slot, and a hidden
/// allocation there silently erodes the O(1) contract the incremental
/// engine's speedup rests on. Reusing pre-sized scratch buffers
/// (`clear()` + `push` into retained capacity) is fine; *acquiring* fresh
/// heap memory is not.
const ALLOC_KEYWORDS: &[(&str, &str)] = &[
    ("Vec::new", "`Vec::new()`"),
    ("vec![", "`vec![...]`"),
    (".to_vec(", "`.to_vec()`"),
    (".clone()", "`.clone()`"),
    (".collect(", "`.collect()`"),
    ("Box::new", "`Box::new(...)`"),
    ("format!", "`format!`"),
    ("String::new", "`String::new()`"),
    ("with_capacity", "`with_capacity`"),
    (".to_string(", "`.to_string()`"),
];

/// `hot-alloc`: no heap-allocating keyword inside a declared
/// `// audit:hot-path: begin` / `end` region (any file — the regions are
/// opt-in markers) without an `audit:allow(hot-alloc)` waiver.
fn hot_alloc(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !line.in_hot || line.in_test {
            continue;
        }
        for (needle, what) in ALLOC_KEYWORDS {
            if line.code.contains(needle) {
                emit(
                    file,
                    idx,
                    HOT_ALLOC,
                    format!("{what} allocates inside an `audit:hot-path` region; reuse a scratch buffer instead"),
                    report,
                );
            }
        }
    }
}

/// `slot-loop`: a hand-rolled per-slot simulation loop (`for t in
/// 0..trace.len()` and friends) in non-test code outside the engine
/// module. Every per-slot pass must go through `SimEngine`/`SlotSource`
/// so lockstep runs, checkpointing, and record routing stay uniform; a
/// bespoke loop silently forks the simulation semantics.
///
/// A loop is "slotty" when it ranges over `0..bound` and either the loop
/// variable is `t`/`slot`, or the bound mentions a trace/env/slot-named
/// quantity. Plain index loops (`for pi in 0..parts.len()`) are untouched.
fn slot_loop(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut from = 0;
        while let Some(off) = code[from..].find("for ") {
            let at = from + off;
            from = at + 4;
            // Word boundary: don't fire inside identifiers like `wait_for `.
            if at > 0 {
                let b = code.as_bytes()[at - 1];
                if b.is_ascii_alphanumeric() || b == b'_' {
                    continue;
                }
            }
            let Some(var) = leading_ident(code, at + 4) else { continue };
            let rest = &code[at + 4 + var.len()..];
            let Some(range) = rest.strip_prefix(" in 0..") else { continue };
            let range = range.strip_prefix('=').unwrap_or(range);
            let bound: String = range
                .chars()
                .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | '(' | ')'))
                .collect();
            if bound.is_empty() {
                continue;
            }
            let slotty_var = var == "t" || var == "slot";
            let receiver = bound.strip_suffix(".len()").unwrap_or(&bound);
            let recv_key = receiver.rsplit('.').next().unwrap_or(receiver).to_lowercase();
            let slotty_bound =
                recv_key.contains("trace") || recv_key.contains("env") || recv_key.contains("slot");
            let over_len = bound.ends_with(".len()");
            if (over_len && (slotty_var || slotty_bound)) || (slotty_var && slotty_bound) {
                emit(
                    file,
                    idx,
                    SLOT_LOOP,
                    format!(
                        "hand-rolled slot loop `for {var} in 0..{bound}`; \
                         drive slots through `SimEngine`/`SlotSource` instead"
                    ),
                    report,
                );
            }
        }
    }
}

/// True when `name` occurs in `code` at a position not preceded by an
/// identifier character — so `println!` does not also match inside
/// `eprintln!`.
fn macro_site(code: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find(name) {
        let at = from + off;
        let boundary = at == 0 || {
            let b = code.as_bytes()[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if boundary {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// `no-print`: no `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in
/// non-test code outside the designated print surfaces. Library and
/// harness diagnostics must go through `coca_obs::logger` (span context,
/// `--quiet` gating) so CI-parsed stdout/stderr stays structured.
fn no_print(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, what) in [
            ("eprintln!", "`eprintln!`"),
            ("println!", "`println!`"),
            ("eprint!", "`eprint!`"),
            ("print!", "`print!`"),
            ("dbg!", "`dbg!`"),
        ] {
            if macro_site(&line.code, needle) {
                emit(
                    file,
                    idx,
                    NO_PRINT,
                    format!("{what} in library code; route diagnostics through `coca_obs::logger`"),
                    report,
                );
                break; // one finding per line: eprintln! must not double-report as print!
            }
        }
    }
}

/// `must-use`: `pub struct Foo{Solution,Outcome,Result}` must carry
/// `#[must_use]` among its attributes.
fn must_use(file: &SourceFile, report: &mut Report) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.trim_start();
        let Some(rest) = code.strip_prefix("pub struct ") else { continue };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !(name.ends_with("Solution") || name.ends_with("Outcome") || name.ends_with("Result")) {
            continue;
        }
        let lo = idx.saturating_sub(8);
        let annotated = file.lines[lo..idx]
            .iter()
            .any(|l| l.code.contains("#[must_use]"));
        if !annotated {
            emit(
                file,
                idx,
                MUST_USE,
                format!("solver result type `{name}` lacks `#[must_use]`"),
                report,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Report {
        let mut r = Report::default();
        crate::lint_source(path, src, &mut r);
        r
    }

    #[test]
    fn no_panic_fires_only_on_hot_paths() {
        let src = "fn f() { x.unwrap(); }\n";
        let hot = lint("crates/opt/src/waterfill.rs", src);
        assert_eq!(hot.unwaived().filter(|v| v.rule == NO_PANIC).count(), 1);
        let cold = lint("crates/experiments/src/report.rs", src);
        assert_eq!(cold.unwaived().filter(|v| v.rule == NO_PANIC).count(), 0);
    }

    #[test]
    fn no_panic_skips_tests_and_waivers() {
        let src = "\
fn f() {
    // audit:allow(no-panic)
    x.unwrap();
}
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); panic!(); }
}
";
        let r = lint("crates/core/src/gsd.rs", src);
        assert_eq!(r.unwaived_count(), 0, "{r}");
        assert_eq!(r.waived_count(), 1);
    }

    #[test]
    fn float_eq_detects_literal_comparisons() {
        let r = lint("crates/dcsim/src/metrics.rs", "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(r.unwaived().filter(|v| v.rule == FLOAT_EQ).count(), 1);
        let ok = lint(
            "crates/dcsim/src/metrics.rs",
            "fn f(x: f64) -> bool { (x - 0.5).abs() < 1e-9 }\nfn g(n: usize) -> bool { n == 0 }\n",
        );
        assert_eq!(ok.unwaived().filter(|v| v.rule == FLOAT_EQ).count(), 0, "{ok}");
    }

    #[test]
    fn float_eq_ignores_int_and_compound_operators() {
        let src = "fn f(n: usize, x: f64) { if n != 3 && x <= 2.0 && x >= 1.0 { g(); } }\n";
        let r = lint("crates/core/src/lyapunov.rs", src);
        assert_eq!(r.unwaived_count(), 0, "{r}");
    }

    #[test]
    fn nan_guard_requires_guard_for_ln() {
        let bad = lint("crates/opt/src/dual.rs", "fn f(x: f64) -> f64 { x.ln() }\n");
        assert_eq!(bad.unwaived().filter(|v| v.rule == NAN_GUARD).count(), 1);
        let good = lint(
            "crates/opt/src/dual.rs",
            "fn f(x: f64) -> f64 {\n    assert!(x > 0.0);\n    x.ln()\n}\n",
        );
        assert_eq!(good.unwaived().filter(|v| v.rule == NAN_GUARD).count(), 0, "{good}");
    }

    #[test]
    fn nan_guard_division_by_identifier() {
        let bad = lint("crates/core/src/solver.rs", "fn f(a: f64, b: f64) -> f64 { a / b }\n");
        assert_eq!(bad.unwaived().filter(|v| v.rule == NAN_GUARD).count(), 1);
        let clamped = lint(
            "crates/core/src/solver.rs",
            "fn f(a: f64, b: f64) -> f64 { a / b.max(1e-12) }\n",
        );
        assert_eq!(clamped.unwaived_count(), 0, "{clamped}");
        let literal = lint("crates/core/src/solver.rs", "fn f(a: f64) -> f64 { a / 2.0 }\n");
        assert_eq!(literal.unwaived_count(), 0, "{literal}");
        let constant = lint("crates/core/src/solver.rs", "fn f(a: f64) -> f64 { a / SCALE }\n");
        assert_eq!(constant.unwaived_count(), 0, "{constant}");
    }

    #[test]
    fn must_use_fires_on_unannotated_result_types() {
        let bad = "/// Doc.\npub struct FooSolution {\n    pub x: f64,\n}\n";
        let r = lint("crates/opt/src/foo.rs", bad);
        assert_eq!(r.unwaived().filter(|v| v.rule == MUST_USE).count(), 1);
        let good = "/// Doc.\n#[must_use]\npub struct FooSolution {\n    pub x: f64,\n}\n";
        let r = lint("crates/opt/src/foo.rs", good);
        assert_eq!(r.unwaived().filter(|v| v.rule == MUST_USE).count(), 0);
        let other_crate = lint("crates/traces/src/foo.rs", bad);
        assert_eq!(other_crate.unwaived_count(), 0);
    }

    #[test]
    fn hot_alloc_fires_only_inside_declared_regions() {
        let src = "\
fn setup() -> Vec<f64> { Vec::new() }
// audit:hot-path: begin
fn delta(&mut self, xs: &[usize]) {
    let copy = xs.to_vec();
    self.scratch.clear();
    self.scratch.push(1.0);
}
// audit:hot-path: end
fn teardown() -> Vec<f64> { vec![0.0] }
";
        let r = lint("crates/dcsim/src/engine.rs", src);
        let hits: Vec<usize> = r
            .unwaived()
            .filter(|v| v.rule == HOT_ALLOC)
            .map(|v| v.line)
            .collect();
        assert_eq!(hits, vec![4], "{r}");
    }

    #[test]
    fn hot_alloc_honors_waivers() {
        let src = "\
// audit:hot-path: begin
fn delta(&mut self) {
    // Error path only, never taken per-proposal. audit:allow(hot-alloc)
    let msg = format!(\"bad\");
}
// audit:hot-path: end
";
        let r = lint("crates/opt/src/waterfill.rs", src);
        assert_eq!(r.unwaived().filter(|v| v.rule == HOT_ALLOC).count(), 0, "{r}");
        assert_eq!(r.violations.iter().filter(|v| v.rule == HOT_ALLOC).count(), 1);
    }

    #[test]
    fn float_eq_not_fooled_by_binding_type_annotations() {
        let src = "fn f(w: usize) { let m: Option<f64> = if w == 0 { Some(0.5) } else { None }; }\n";
        let r = lint("crates/dcsim/src/engine.rs", src);
        assert_eq!(r.unwaived_count(), 0, "{r}");
    }

    #[test]
    fn slot_loop_flags_trace_iteration_outside_the_engine() {
        let bad = "fn f(trace: &[f64]) { for t in 0..trace.len() { g(t); } }\n";
        let r = lint("crates/experiments/src/figures.rs", bad);
        assert_eq!(r.unwaived().filter(|v| v.rule == SLOT_LOOP).count(), 1, "{r}");
        let planner = "fn f(num_slots: usize) { for t in 0..num_slots { g(t); } }\n";
        let r = lint("crates/baselines/src/offline.rs", planner);
        assert_eq!(r.unwaived().filter(|v| v.rule == SLOT_LOOP).count(), 1, "{r}");
    }

    #[test]
    fn slot_loop_allows_engine_traces_and_plain_index_loops() {
        let bad = "fn f(trace: &[f64]) { for t in 0..trace.len() { g(t); } }\n";
        let engine = lint("crates/dcsim/src/engine.rs", bad);
        assert_eq!(engine.unwaived().filter(|v| v.rule == SLOT_LOOP).count(), 0, "{engine}");
        let traces = lint("crates/traces/src/csv.rs", bad);
        assert_eq!(traces.unwaived().filter(|v| v.rule == SLOT_LOOP).count(), 0, "{traces}");
        let plain = "fn f(parts: &[f64]) { for pi in 0..parts.len() { g(pi); } }\n";
        let r = lint("crates/core/src/symmetric.rs", plain);
        assert_eq!(r.unwaived().filter(|v| v.rule == SLOT_LOOP).count(), 0, "{r}");
    }

    #[test]
    fn no_print_fires_outside_allowed_paths_only() {
        let src = "fn f() { println!(\"x\"); }\n";
        let lib = lint("crates/experiments/src/runtime.rs", src);
        assert_eq!(lib.unwaived().filter(|v| v.rule == NO_PRINT).count(), 1);
        for allowed in [
            "crates/scenarios/src/bin/repro.rs",
            "crates/obs/src/logger.rs",
            "crates/audit/src/main.rs",
        ] {
            let r = lint(allowed, src);
            assert_eq!(r.unwaived().filter(|v| v.rule == NO_PRINT).count(), 0, "{allowed}");
        }
    }

    #[test]
    fn no_print_reports_once_per_line_and_skips_strings() {
        let r = lint("crates/core/src/gsd.rs", "fn f() { eprintln!(\"println! here\"); }\n");
        assert_eq!(r.violations.iter().filter(|v| v.rule == NO_PRINT).count(), 1, "{r}");
        assert!(r.violations.iter().any(|v| v.message.contains("`eprintln!`")), "{r}");
        let quiet = lint("crates/core/src/gsd.rs", "fn f() { let s = \"println!\"; use_it(s); }\n");
        assert_eq!(quiet.violations.iter().filter(|v| v.rule == NO_PRINT).count(), 0, "{quiet}");
    }

    #[test]
    fn float_evidence_heuristics() {
        assert!(has_float_evidence("0.0"));
        assert!(has_float_evidence("x as f64"));
        assert!(has_float_evidence("1e-9"));
        assert!(has_float_evidence("2."));
        assert!(!has_float_evidence("n"));
        assert!(!has_float_evidence("vec[0]"));
        assert!(!has_float_evidence("0..10"));
        assert!(!has_float_evidence("3.max(k)"));
    }
}
