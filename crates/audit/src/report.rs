//! Violation records, the aggregated lint report, and its machine-readable
//! renderings (JSON and SARIF 2.1.0).

use std::fmt;

use serde::Value;

/// A secondary source location attached to a finding — e.g. one hop of
/// the call chain a hot-path reachability finding walked, or the callee
/// definition a unit-flow finding inferred its unit from. Rendered as
/// SARIF `relatedLocations`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What this location contributes to the finding.
    pub message: String,
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (e.g. `no-panic`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// True when an `audit:allow` comment covers this site.
    pub waived: bool,
    /// Secondary locations (call chains, inference sources); empty for
    /// purely local findings.
    pub related: Vec<Related>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}]{} {}",
            self.file,
            self.line,
            self.rule,
            if self.waived { " (waived)" } else { "" },
            self.message
        )?;
        for r in &self.related {
            write!(f, "\n    ↳ {}:{}: {}", r.file, r.line, r.message)?;
        }
        Ok(())
    }
}

/// Aggregated result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, waived and unwaived, in file/line order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Records a finding.
    pub fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// Findings not covered by a waiver comment.
    pub fn unwaived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.waived)
    }

    /// Number of unwaived findings.
    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.violations.len() - self.unwaived_count()
    }

    /// True when the run should exit zero.
    pub fn is_clean(&self) -> bool {
        self.unwaived_count() == 0
    }

    /// Stable-sorts findings by `(file, line, rule)` so multi-rule,
    /// multi-pass runs render deterministically.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// The report as a JSON value (shape pinned by
    /// `schemas/audit.schema.json`).
    fn json_value(&self) -> Value {
        let violations = self
            .violations
            .iter()
            .map(|v| {
                let related = v
                    .related
                    .iter()
                    .map(|r| {
                        Value::Map(vec![
                            ("file".into(), Value::Str(r.file.clone())),
                            ("line".into(), Value::Int(r.line as i64)),
                            ("message".into(), Value::Str(r.message.clone())),
                        ])
                    })
                    .collect();
                Value::Map(vec![
                    ("file".into(), Value::Str(v.file.clone())),
                    ("line".into(), Value::Int(v.line as i64)),
                    ("rule".into(), Value::Str(v.rule.to_string())),
                    ("message".into(), Value::Str(v.message.clone())),
                    ("waived".into(), Value::Bool(v.waived)),
                    ("related".into(), Value::Seq(related)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("version".into(), Value::Int(2)),
            (
                "summary".into(),
                Value::Map(vec![
                    ("total".into(), Value::Int(self.violations.len() as i64)),
                    ("waived".into(), Value::Int(self.waived_count() as i64)),
                    ("unwaived".into(), Value::Int(self.unwaived_count() as i64)),
                ]),
            ),
            ("violations".into(), Value::Seq(violations)),
        ])
    }

    /// Renders the report as the v2 JSON format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.json_value()).expect("report JSON has no non-finite floats")
    }

    /// Renders the report as a SARIF 2.1.0 log: one run, one result per
    /// finding. Unwaived findings are `error`-level, waived ones `note` —
    /// so GitHub's SARIF ingestion annotates the diff with exactly the
    /// findings that fail the build, while waivers stay visible.
    pub fn to_sarif(&self, rule_ids: &[&str]) -> String {
        let rules = rule_ids
            .iter()
            .map(|id| Value::Map(vec![("id".into(), Value::Str((*id).to_string()))]))
            .collect();
        // The `physicalLocation` field for a (file, line) pair.
        let physical = |file: &str, line: usize| {
            (
                "physicalLocation".to_string(),
                Value::Map(vec![
                    (
                        "artifactLocation".into(),
                        Value::Map(vec![("uri".into(), Value::Str(file.to_string()))]),
                    ),
                    (
                        "region".into(),
                        Value::Map(vec![("startLine".into(), Value::Int(line as i64))]),
                    ),
                ]),
            )
        };
        let results = self
            .violations
            .iter()
            .map(|v| {
                let mut fields = vec![
                    ("ruleId".into(), Value::Str(v.rule.to_string())),
                    (
                        "level".into(),
                        Value::Str(if v.waived { "note" } else { "error" }.into()),
                    ),
                    (
                        "message".into(),
                        Value::Map(vec![("text".into(), Value::Str(v.message.clone()))]),
                    ),
                    (
                        "locations".into(),
                        Value::Seq(vec![Value::Map(vec![physical(&v.file, v.line)])]),
                    ),
                ];
                if !v.related.is_empty() {
                    let related = v
                        .related
                        .iter()
                        .map(|r| {
                            Value::Map(vec![
                                physical(&r.file, r.line),
                                (
                                    "message".into(),
                                    Value::Map(vec![(
                                        "text".into(),
                                        Value::Str(r.message.clone()),
                                    )]),
                                ),
                            ])
                        })
                        .collect();
                    fields.push(("relatedLocations".into(), Value::Seq(related)));
                }
                Value::Map(fields)
            })
            .collect();
        let sarif = Value::Map(vec![
            (
                "$schema".into(),
                Value::Str("https://json.schemastore.org/sarif-2.1.0.json".into()),
            ),
            ("version".into(), Value::Str("2.1.0".into())),
            (
                "runs".into(),
                Value::Seq(vec![Value::Map(vec![
                    (
                        "tool".into(),
                        Value::Map(vec![(
                            "driver".into(),
                            Value::Map(vec![
                                ("name".into(), Value::Str("coca-audit".into())),
                                ("rules".into(), Value::Seq(rules)),
                            ]),
                        )]),
                    ),
                    ("results".into(), Value::Seq(results)),
                ])]),
            ),
        ]);
        serde_json::to_string(&sarif).expect("SARIF value has no non-finite floats")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        write!(
            f,
            "audit: {} violation(s), {} waived, {} unwaived",
            self.violations.len(),
            self.waived_count(),
            self.unwaived_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_cleanliness() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.push(Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "no-panic",
            message: "bare unwrap".into(),
            waived: false,
            related: Vec::new(),
        });
        r.push(Violation {
            file: "a.rs".into(),
            line: 9,
            rule: "nan-guard",
            message: "unguarded ln".into(),
            waived: true,
            related: Vec::new(),
        });
        assert_eq!(r.unwaived_count(), 1);
        assert_eq!(r.waived_count(), 1);
        assert!(!r.is_clean());
        let text = r.to_string();
        assert!(text.contains("a.rs:3: [no-panic] bare unwrap"));
        assert!(text.contains("(waived)"));
        assert!(text.contains("2 violation(s), 1 waived, 1 unwaived"));
    }

    fn sample() -> Report {
        let mut r = Report::default();
        r.push(Violation {
            file: "b.rs".into(),
            line: 9,
            rule: "unit-mix",
            message: "mixes".into(),
            waived: true,
            related: Vec::new(),
        });
        r.push(Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "no-panic",
            message: "bare unwrap".into(),
            waived: false,
            related: vec![Related {
                file: "c.rs".into(),
                line: 7,
                message: "called from here".into(),
            }],
        });
        r.sort();
        r
    }

    #[test]
    fn sort_orders_by_file_line_rule() {
        let r = sample();
        assert_eq!(r.violations[0].file, "a.rs");
        assert_eq!(r.violations[1].file, "b.rs");
    }

    #[test]
    fn json_rendering_round_trips_and_counts() {
        let r = sample();
        let v: serde::Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(v.get_field("version"), Some(&Value::Int(2)));
        let summary = v.get_field("summary").unwrap();
        assert_eq!(summary.get_field("total"), Some(&Value::Int(2)));
        assert_eq!(summary.get_field("waived"), Some(&Value::Int(1)));
        assert_eq!(summary.get_field("unwaived"), Some(&Value::Int(1)));
        let violations = v.get_field("violations").unwrap().as_seq().unwrap();
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].get_field("rule"), Some(&Value::Str("no-panic".into())));
        assert_eq!(violations[0].get_field("waived"), Some(&Value::Bool(false)));
        let related = violations[0].get_field("related").unwrap().as_seq().unwrap();
        assert_eq!(related.len(), 1);
        assert_eq!(related[0].get_field("file"), Some(&Value::Str("c.rs".into())));
        assert_eq!(related[0].get_field("line"), Some(&Value::Int(7)));
        assert!(violations[1].get_field("related").unwrap().as_seq().unwrap().is_empty());
    }

    #[test]
    fn sarif_rendering_levels_and_locations() {
        let r = sample();
        let v: serde::Value = serde_json::from_str(&r.to_sarif(&["no-panic", "unit-mix"])).unwrap();
        assert_eq!(v.get_field("version"), Some(&Value::Str("2.1.0".into())));
        let runs = v.get_field("runs").unwrap().as_seq().unwrap();
        let results = runs[0].get_field("results").unwrap().as_seq().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get_field("level"), Some(&Value::Str("error".into())));
        assert_eq!(results[1].get_field("level"), Some(&Value::Str("note".into())));
        let loc = results[0].get_field("locations").unwrap().as_seq().unwrap()[0]
            .get_field("physicalLocation")
            .unwrap();
        assert_eq!(
            loc.get_field("artifactLocation").unwrap().get_field("uri"),
            Some(&Value::Str("a.rs".into()))
        );
        assert_eq!(
            loc.get_field("region").unwrap().get_field("startLine"),
            Some(&Value::Int(3))
        );
        // The no-panic finding carries one related location; the waived
        // unit-mix one carries none (field omitted entirely).
        let rel = results[0].get_field("relatedLocations").unwrap().as_seq().unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(
            rel[0]
                .get_field("physicalLocation")
                .unwrap()
                .get_field("artifactLocation")
                .unwrap()
                .get_field("uri"),
            Some(&Value::Str("c.rs".into()))
        );
        assert_eq!(
            rel[0].get_field("message").unwrap().get_field("text"),
            Some(&Value::Str("called from here".into()))
        );
        assert!(results[1].get_field("relatedLocations").is_none());
    }
}
