//! Violation records and the aggregated lint report.

use std::fmt;

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (e.g. `no-panic`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// True when an `audit:allow` comment covers this site.
    pub waived: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}]{} {}",
            self.file,
            self.line,
            self.rule,
            if self.waived { " (waived)" } else { "" },
            self.message
        )
    }
}

/// Aggregated result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, waived and unwaived, in file/line order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// Records a finding.
    pub fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// Findings not covered by a waiver comment.
    pub fn unwaived(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.waived)
    }

    /// Number of unwaived findings.
    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    /// Number of waived findings.
    pub fn waived_count(&self) -> usize {
        self.violations.len() - self.unwaived_count()
    }

    /// True when the run should exit zero.
    pub fn is_clean(&self) -> bool {
        self.unwaived_count() == 0
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        write!(
            f,
            "audit: {} violation(s), {} waived, {} unwaived",
            self.violations.len(),
            self.waived_count(),
            self.unwaived_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_cleanliness() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.push(Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "no-panic",
            message: "bare unwrap".into(),
            waived: false,
        });
        r.push(Violation {
            file: "a.rs".into(),
            line: 9,
            rule: "nan-guard",
            message: "unguarded ln".into(),
            waived: true,
        });
        assert_eq!(r.unwaived_count(), 1);
        assert_eq!(r.waived_count(), 1);
        assert!(!r.is_clean());
        let text = r.to_string();
        assert!(text.contains("a.rs:3: [no-panic] bare unwrap"));
        assert!(text.contains("(waived)"));
        assert!(text.contains("2 violation(s), 1 waived, 1 unwaived"));
    }
}
