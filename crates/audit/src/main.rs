//! `coca-audit` — the workspace lint driver.
//!
//! ```text
//! cargo run -p coca-audit -- lint [--root <workspace-root>]
//! ```
//!
//! Prints every finding (waived ones are marked) and exits non-zero when
//! any unwaived violation remains. See the crate docs of `coca_audit` for
//! the rule set and the `// audit:allow(<rule>)` waiver convention.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: coca-audit lint [--root <workspace-root>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { return usage() };
    if cmd != "lint" {
        return usage();
    }
    let mut root: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    // Under `cargo run` the manifest dir is crates/audit; the workspace
    // root is two levels up. Outside cargo, fall back to the current dir.
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|m| PathBuf::from(m).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });

    match coca_audit::run_lint(&root) {
        Ok(report) => {
            println!("{report}");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("coca-audit: failed to scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
