//! `coca-audit` — the workspace lint driver.
//!
//! ```text
//! cargo run -p coca-audit -- lint [--root <workspace-root>] [--format text|json|sarif]
//! cargo run -p coca-audit -- explain [<rule-id>]
//! ```
//!
//! `text` (default) prints every finding with waived ones marked; `json`
//! emits the v2 report format pinned by `schemas/audit.schema.json`;
//! `sarif` emits a SARIF 2.1.0 log suitable for GitHub code-scanning
//! annotations. All formats exit non-zero when any unwaived violation
//! remains. `explain` prints a rule's contract, its annotation syntax,
//! and a minimal example (bare `explain` lists every rule id). See the
//! crate docs of `coca_audit` for the rule set and the
//! `// audit:allow(<rule>)` waiver convention.

//! Invoking the binary with no arguments is equivalent to `lint` with the
//! defaults.

use std::path::PathBuf;
use std::process::ExitCode;

/// Output rendering of the lint report.
enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: coca-audit lint [--root <workspace-root>] [--format text|json|sarif]\n\
         \x20      coca-audit explain [<rule-id>]"
    );
    ExitCode::from(2)
}

/// `explain [<rule-id>]`: rule contract + annotation syntax + example.
/// Unknown ids exit 2 with the listing on stderr.
fn explain(rule: Option<&str>) -> ExitCode {
    match rule {
        None => {
            println!("{}", coca_audit::explain::listing());
            ExitCode::SUCCESS
        }
        Some(rule) => match coca_audit::explain::explain(rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("coca-audit: unknown rule id `{rule}`\n");
                eprintln!("{}", coca_audit::explain::listing());
                ExitCode::from(2)
            }
        },
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if let Some(cmd) = args.next() {
        if cmd == "explain" {
            let rule = args.next();
            if args.next().is_some() {
                return usage();
            }
            return explain(rule.as_deref());
        }
        if cmd != "lint" {
            return usage();
        }
    }
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    // Under `cargo run` the manifest dir is crates/audit; the workspace
    // root is two levels up. Outside cargo, fall back to the current dir.
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|m| PathBuf::from(m).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });

    match coca_audit::run_lint(&root) {
        Ok(report) => {
            match format {
                Format::Text => println!("{report}"),
                Format::Json => println!("{}", report.to_json()),
                Format::Sarif => println!("{}", report.to_sarif(coca_audit::ALL_RULES)),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("coca-audit: failed to scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
