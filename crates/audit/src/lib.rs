//! Static lint pass for the COCA workspace — line rules plus an AST
//! engine with semantic rules (v2).
//!
//! The build environment has no registry access, so this cannot lean on
//! syn/quote or an off-the-shelf linter. v1 was a pure line/token pass;
//! v2 adds a hand-rolled AST layer ([`ast`]: span-tracking lexer with
//! comment trivia, balanced token trees, a run visitor) and rebuilds the
//! pass as two cooperating engines over the same sources:
//!
//! **Line rules** ([`rules`], over [`scan::SourceFile`]):
//!
//! - [`rules::NO_PANIC`] — no bare `unwrap()` / `expect(` / `panic!` in
//!   solver hot paths; hot paths must surface typed errors.
//! - [`rules::FLOAT_EQ`] — no raw f64 `==`/`!=` comparisons in non-test
//!   code; continuous quantities compare against tolerances.
//! - [`rules::NAN_GUARD`] — no `ln`/`sqrt`/identifier division in hot
//!   paths without a nearby guard on the operand.
//! - [`rules::MUST_USE`] — solver result types must carry `#[must_use]`.
//! - [`rules::HOT_ALLOC`] — no heap allocation inside declared
//!   `audit:hot-path` regions.
//! - [`rules::SLOT_LOOP`] — no hand-rolled per-slot loops outside the
//!   streaming engine; slots flow through `SimEngine`/`SlotSource`.
//! - [`rules::NO_PRINT`] — diagnostics go through `coca_obs::logger`, not
//!   direct prints, outside the designated print surfaces.
//!
//! **Semantic rules** ([`semantic`], over [`ast::Ast`]):
//!
//! - [`semantic::UNIT_MIX`] — units-of-measure dataflow: terms tagged
//!   kWh / kW / USD (identifier suffixes, `// audit:unit(<tag>)`
//!   annotations, known core types) must not meet across `+`, `-`,
//!   compound assignment, or comparisons.
//! - [`semantic::ATOMIC_ORDERING`] — every atomic op carries an
//!   `// audit:atomic(<contract>)` annotation; CAS failure ordering must
//!   not exceed success ordering; CAS results must not be dropped.
//! - [`semantic::DEPRECATED_API`] — no internal use of items the
//!   workspace marks `#[deprecated]`, outside the defining file and
//!   explicitly waived compat tests. (This rule is cross-file: the
//!   driver indexes the whole workspace before linting.)
//!
//! **Interprocedural rules** ([`dataflow`], over a workspace symbol
//! table and call graph; multi-file driver only):
//!
//! - `unit-flow` — kWh / kW / USD tags propagated through parameters and
//!   returns to a fixpoint; a mis-unitted argument is caught any number
//!   of calls from the annotation that tagged it.
//! - `hot-path-reach` — allocation, locking, or IO transitively
//!   reachable from calls on `audit:hot-path` lines, with the call chain
//!   attached as related locations.
//! - `snapshot-complete` — every struct with a snapshot/restore pair
//!   accounts for each declared field; non-checkpointed state is
//!   declared `// audit:transient(<reason>)`.
//! - `nondet-reach` — hash-ordered iteration, wall-clock reads, and
//!   channel receives reachable from state-affecting roots (engine
//!   stepping, checkpointing, serializers, batch orchestration); waived
//!   sink-by-sink with `// audit:ordered(<contract>)`.
//! - `stale-waiver` — waivers and annotations that no longer suppress or
//!   tag anything must be deleted; iterated to a fixpoint since
//!   staleness is itself waivable.
//!
//! Any finding can be waived with `// audit:allow(<rule>)` on the
//! offending line or the line above; waivers are reported and counted but
//! do not fail the run. The `coca-audit` binary
//! (`cargo run -p coca-audit -- lint [--format text|json|sarif]`) exits
//! non-zero on unwaived violations, and `coca-audit explain <rule-id>`
//! ([`explain`]) prints any rule's contract, annotation syntax, and a
//! minimal example; `schemas/audit.schema.json` pins the
//! JSON format and the `validate-audit` binary ([`schema`]) checks it in
//! CI. The lint engines are dependency-free; the machine formats reuse
//! the workspace's vendored serde/serde_json shims.

#![deny(missing_docs, unsafe_code)]

pub mod ast;
pub mod dataflow;
pub mod explain;
pub mod report;
pub mod rules;
pub mod scan;
pub mod schema;
pub mod semantic;

use std::path::{Path, PathBuf};

pub use report::{Report, Violation};
pub use scan::SourceFile;

/// Directories under the workspace root whose `src/` trees are linted.
/// Bench and test harness code is intentionally out of scope: panics are
/// the correct failure mode there.
const LINTED_CRATES: &[&str] = &[
    "crates/audit",
    "crates/baselines",
    "crates/core",
    "crates/dcsim",
    "crates/experiments",
    "crates/obs",
    "crates/opt",
    "crates/scenarios",
    "crates/serve",
    "crates/traces",
];

/// Every rule id the pass can emit, in stable order (used by the SARIF
/// driver metadata and the JSON schema's enum).
pub const ALL_RULES: &[&str] = &[
    rules::NO_PANIC,
    rules::FLOAT_EQ,
    rules::NAN_GUARD,
    rules::MUST_USE,
    rules::HOT_ALLOC,
    rules::SLOT_LOOP,
    rules::NO_PRINT,
    semantic::UNIT_MIX,
    semantic::ATOMIC_ORDERING,
    semantic::DEPRECATED_API,
    dataflow::UNIT_FLOW,
    dataflow::HOT_PATH_REACH,
    dataflow::SNAPSHOT_COMPLETE,
    dataflow::NONDET_REACH,
    dataflow::STALE_WAIVER,
];

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.collect::<std::io::Result<Vec<_>>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every in-scope source file under `workspace_root` and returns the
/// aggregated report.
///
/// # Errors
/// Returns an I/O error if the workspace layout cannot be read, or if no
/// in-scope sources exist under `workspace_root` at all — a mistyped root
/// must not produce a vacuously clean report.
pub fn run_lint(workspace_root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for krate in LINTED_CRATES {
        let src = workspace_root.join(krate).join("src");
        if src.is_dir() {
            rust_files(&src, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no linted crate sources under {}", workspace_root.display()),
        ));
    }
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, text));
    }
    Ok(lint_sources(&sources))
}

/// Lints a set of in-memory sources with the full multi-pass pipeline:
/// pass 1 parses everything and indexes `#[deprecated]` items across the
/// set; pass 2 applies every line and semantic rule per file; pass 3 runs
/// the interprocedural [`dataflow`] analyses (`unit-flow`,
/// `hot-path-reach`, and finally `stale-waiver` hygiene over the
/// accumulated findings). The report is sorted by `(file, line, rule)`.
pub fn lint_sources(sources: &[(String, String)]) -> Report {
    let parsed: Vec<(SourceFile, ast::Ast)> = sources
        .iter()
        .map(|(rel, text)| (SourceFile::parse(rel, text), ast::Ast::parse(rel, text)))
        .collect();
    let index = semantic::deprecated::DeprecatedIndex::build(parsed.iter().map(|(_, a)| a));
    let mut report = Report::default();
    for (file, ast) in &parsed {
        rules::apply_all(file, &mut report);
        semantic::apply_all(file, ast, &index, &mut report);
    }
    dataflow::apply_all(&parsed, &mut report);
    report.sort();
    report
}

/// Lints a single file's contents (entry point shared by the fixture
/// self-tests and the rule unit tests). Cross-file state degenerates: the
/// deprecated index covers only this file, uses inside the defining
/// file are exempt by design, and the interprocedural [`dataflow`]
/// analyses do not run at all — use [`lint_sources`] to exercise
/// `deprecated-api`, `unit-flow`, `hot-path-reach`, or `stale-waiver`.
pub fn lint_source(rel_path: &str, text: &str, report: &mut Report) {
    let file = SourceFile::parse(rel_path, text);
    let ast = ast::Ast::parse(rel_path, text);
    let index = semantic::deprecated::DeprecatedIndex::build([&ast]);
    rules::apply_all(&file, report);
    semantic::apply_all(&file, &ast, &index, report);
    report.sort();
}
