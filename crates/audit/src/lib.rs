//! Dependency-free static lint pass for the COCA workspace.
//!
//! The build environment has no registry access, so this cannot lean on
//! syn/quote or an off-the-shelf linter: the scanner in [`scan`] is a
//! line/token pass that strips comments and string literals, tracks
//! `#[cfg(test)]` regions by brace depth, and collects
//! `// audit:allow(<rule>)` waiver comments. The rules in [`rules`] encode
//! conventions that protect the paper-level guarantees:
//!
//! - [`rules::NO_PANIC`] — no bare `unwrap()` / `expect(` / `panic!` in
//!   solver hot paths. A panic mid-slot would abort the control loop the
//!   paper's Theorem 2 bounds depend on; hot paths must surface typed
//!   errors instead.
//! - [`rules::FLOAT_EQ`] — no raw f64 `==`/`!=` comparisons anywhere in
//!   non-test code. KKT residuals, deficit queues, and acceptance
//!   probabilities are all continuous quantities; exact comparison hides
//!   tolerance bugs.
//! - [`rules::NAN_GUARD`] — no `ln`/`sqrt`/identifier division in hot
//!   paths without a nearby guard (`assert`/`is_finite`/`.max(`/explicit
//!   bound check) on the operand. NaN is absorbing through every solver
//!   recurrence.
//! - [`rules::MUST_USE`] — solver result types (`*Solution`, `*Outcome`,
//!   `*Result` structs in `coca-opt`/`coca-core`/`coca-dcsim`) must carry
//!   `#[must_use]` so a dropped solve is a compile-time warning.
//! - [`rules::HOT_ALLOC`] — no heap-allocation keywords (`Vec::new`,
//!   `vec![`, `.to_vec(`, `.clone()`, `.collect(`, `Box::new`, `format!`,
//!   `String::new`, `with_capacity`, `.to_string(`) inside a declared
//!   `// audit:hot-path: begin` / `end` region. These regions mark the
//!   per-proposal delta-update paths of the incremental P3 engine, which
//!   run ~500× per slot and must stay allocation-free; reusing retained
//!   scratch capacity (`clear()` + `push`) is allowed.
//! - [`rules::SLOT_LOOP`] — no hand-rolled per-slot simulation loops
//!   (`for t in 0..trace.len()` patterns) in non-test code outside
//!   `crates/dcsim/src/engine.rs` and the traces crate. All per-slot
//!   passes must flow through `SimEngine`/`SlotSource` so lockstep runs,
//!   checkpointing, and record routing share one set of semantics.
//! - [`rules::NO_PRINT`] — no direct `println!`/`eprintln!`/`print!`/
//!   `eprint!`/`dbg!` in non-test code outside the designated print
//!   surfaces (`crates/experiments/src/bin/`, `crates/obs/src/`, and the
//!   audit CLI). Diagnostics must go through `coca_obs::logger`, which
//!   carries span context and honors `repro --quiet`.
//!
//! Any finding can be waived with a `// audit:allow(<rule>)` comment on
//! the offending line or the line above it; waivers are reported and
//! counted but do not fail the run. The `coca-audit` binary
//! (`cargo run -p coca-audit -- lint`) exits non-zero on unwaived
//! violations.

#![deny(missing_docs, unsafe_code)]

pub mod report;
pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

pub use report::{Report, Violation};
pub use scan::SourceFile;

/// Directories under the workspace root whose `src/` trees are linted.
/// Bench and test harness code is intentionally out of scope: panics are
/// the correct failure mode there.
const LINTED_CRATES: &[&str] = &[
    "crates/audit",
    "crates/baselines",
    "crates/core",
    "crates/dcsim",
    "crates/experiments",
    "crates/obs",
    "crates/opt",
    "crates/traces",
];

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.collect::<std::io::Result<Vec<_>>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every in-scope source file under `workspace_root` and returns the
/// aggregated report.
///
/// # Errors
/// Returns an I/O error if the workspace layout cannot be read, or if no
/// in-scope sources exist under `workspace_root` at all — a mistyped root
/// must not produce a vacuously clean report.
pub fn run_lint(workspace_root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for krate in LINTED_CRATES {
        let src = workspace_root.join(krate).join("src");
        if src.is_dir() {
            rust_files(&src, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no linted crate sources under {}", workspace_root.display()),
        ));
    }
    let mut report = Report::default();
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        lint_source(&rel, &text, &mut report);
    }
    Ok(report)
}

/// Lints a single file's contents (entry point shared by the binary and
/// the fixture self-tests).
pub fn lint_source(rel_path: &str, text: &str, report: &mut Report) {
    let file = SourceFile::parse(rel_path, text);
    rules::apply_all(&file, report);
}
