//! Minimal JSON-Schema subset validator for the audit report format.
//!
//! `schemas/audit.schema.json` pins the shape of `coca-audit lint
//! --format json`, and the `validate-audit` binary checks a live report
//! against it in CI — so a format drift (renamed field, stringly-typed
//! line number) fails the build instead of silently breaking downstream
//! consumers. Full JSON-Schema is far more than that needs; this module
//! implements the subset the checked-in schema uses:
//!
//! `type` (object / array / string / integer / number / boolean),
//! `required`, `properties`, `items`, `enum` (strings and integers), and
//! `minimum`. Unknown keywords are ignored, like every JSON-Schema
//! validator; *using* an unsupported keyword in the schema therefore
//! weakens the check rather than failing it, which is the standard
//! trade-off.

use serde::Value;

/// Validates `value` against `schema`, returning every failure as a
/// `path: message` line.
///
/// # Errors
/// Returns the list of failed requirements (empty-list success is
/// expressed as `Ok`).
pub fn validate(schema: &Value, value: &Value) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    check(schema, value, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Int(_) => "integer",
        Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "array",
        Value::Map(_) => "object",
    }
}

fn check(schema: &Value, value: &Value, path: &str, errors: &mut Vec<String>) {
    if let Some(Value::Str(want)) = schema.get_field("type") {
        let got = type_name(value);
        let ok = match want.as_str() {
            "number" => matches!(value, Value::Int(_) | Value::Float(_)),
            w => w == got,
        };
        if !ok {
            errors.push(format!("{path}: expected {want}, got {got}"));
            return; // further keyword checks would only cascade
        }
    }
    if let Some(Value::Int(min)) = schema.get_field("minimum") {
        let below = match value {
            Value::Int(i) => i < min,
            Value::Float(f) => *f < *min as f64,
            _ => false,
        };
        if below {
            errors.push(format!("{path}: value below minimum {min}"));
        }
    }
    if let Some(Value::Seq(allowed)) = schema.get_field("enum") {
        if !allowed.contains(value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }
    if let Some(Value::Seq(required)) = schema.get_field("required") {
        for name in required {
            if let Value::Str(name) = name {
                if value.get_field(name).is_none() {
                    errors.push(format!("{path}: missing required field `{name}`"));
                }
            }
        }
    }
    if let Some(props) = schema.get_field("properties").and_then(Value::as_map) {
        for (name, sub) in props {
            if let Some(field) = value.get_field(name) {
                check(sub, field, &format!("{path}.{name}"), errors);
            }
        }
    }
    if let Some(items) = schema.get_field("items") {
        if let Some(seq) = value.as_seq() {
            for (i, item) in seq.iter().enumerate() {
                check(items, item, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::from_str(s).unwrap()
    }

    #[test]
    fn accepts_conforming_value() {
        let schema = parse(
            r#"{"type":"object","required":["n","xs"],
                "properties":{"n":{"type":"integer","minimum":1},
                              "xs":{"type":"array","items":{"type":"string","enum":["a","b"]}}}}"#,
        );
        let value = parse(r#"{"n":3,"xs":["a","b","a"]}"#);
        assert_eq!(validate(&schema, &value), Ok(()));
    }

    #[test]
    fn reports_each_failure_with_a_path() {
        let schema = parse(
            r#"{"type":"object","required":["n","missing"],
                "properties":{"n":{"type":"integer","minimum":5},
                              "xs":{"type":"array","items":{"type":"string"}}}}"#,
        );
        let value = parse(r#"{"n":3,"xs":["ok",7]}"#);
        let errs = validate(&schema, &value).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing required field `missing`")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("$.n") && e.contains("minimum")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("$.xs[1]") && e.contains("string")), "{errs:?}");
    }

    #[test]
    fn type_mismatch_short_circuits_nested_checks() {
        let schema = parse(r#"{"type":"object","required":["a"]}"#);
        let errs = validate(&schema, &parse("[1]")).unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
    }

    #[test]
    fn number_accepts_both_int_and_float() {
        let schema = parse(r#"{"type":"number"}"#);
        assert!(validate(&schema, &parse("1")).is_ok());
        assert!(validate(&schema, &parse("1.5")).is_ok());
        assert!(validate(&schema, &parse("\"1\"")).is_err());
    }
}
