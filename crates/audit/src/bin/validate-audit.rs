//! `validate-audit` — checks a `coca-audit lint --format json` report
//! against the checked-in schema.
//!
//! ```text
//! validate-audit <report.json> <schema.json>
//! ```
//!
//! Exits 0 when the report conforms, 1 with the full list of failed
//! requirements otherwise, and 2 on usage or I/O errors. CI runs this
//! against `schemas/audit.schema.json` so a format drift in the JSON
//! emitter fails the build instead of silently breaking downstream
//! consumers of the report.

use std::process::ExitCode;

use serde::Value;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(report_path), Some(schema_path), None) = (args.next(), args.next(), args.next())
    else {
        eprintln!("usage: validate-audit <report.json> <schema.json>");
        return ExitCode::from(2);
    };
    let read_json = |path: &str| -> Result<Value, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let (report, schema) = match (read_json(&report_path), read_json(&schema_path)) {
        (Ok(r), Ok(s)) => (r, s),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("validate-audit: {e}");
            return ExitCode::from(2);
        }
    };
    match coca_audit::schema::validate(&schema, &report) {
        Ok(()) => {
            let findings = report
                .get_field("summary")
                .and_then(|s| s.get_field("total"))
                .map_or_else(
                    || "?".to_string(),
                    |v| match v {
                        serde::Value::Int(n) => n.to_string(),
                        other => format!("{other:?}"),
                    },
                );
            println!(
                "validate-audit: {report_path} satisfies {schema_path} ({findings} findings)"
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            eprintln!("validate-audit: {report_path} fails {schema_path}:");
            for e in &errors {
                eprintln!("  {e}");
            }
            ExitCode::FAILURE
        }
    }
}
