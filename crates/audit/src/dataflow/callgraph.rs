//! Call-site extraction and the workspace call graph.
//!
//! A *raw call* is any of the three syntactic call shapes the token trees
//! expose: `recv.name(args)` method calls, `Qualifier::name(args)`
//! qualified calls, and bare `name(args)` free calls. Macros (`name!(…)`)
//! are naturally excluded — the `!` breaks ident/group adjacency — and
//! uppercase-initial bare calls (`Some(x)`, tuple-struct constructors)
//! are skipped. The same extractor serves the call graph (edges per
//! function body) and the hot-path analysis (root sites per file line).

use std::collections::HashMap;

use super::symbols::{CallKind, FnId, SymbolTable, KEYWORDS};
use crate::ast::tree::{Delim, Group, Node};
use crate::ast::visit::{find_method_calls, split_commas, term_spanning, RunVisitor};
use crate::ast::visit::Term;

/// One syntactic call site, before resolution.
#[derive(Debug)]
pub struct RawCall {
    /// Callee name as written (last path segment).
    pub name: String,
    /// 1-based line of the callee name token.
    pub line: usize,
    /// Number of arguments in the parentheses.
    pub argc: usize,
    /// `Type` in `Type::name(…)` calls, when syntactically present.
    pub qualifier: Option<String>,
    /// Which call shape this site is.
    pub kind: CallKind,
    /// Per-argument single-chain terms (`None` for compound arguments
    /// like `a + b`) — the unit-flow analysis reads units off these.
    pub args: Vec<Option<Term>>,
}

/// Argument count of a call's parentheses group.
pub fn arg_count(args: &Group) -> usize {
    if args.children.is_empty() {
        0
    } else {
        split_commas(args).len()
    }
}

/// Per-argument spanning terms of a call's parentheses group.
fn arg_terms(args: &Group) -> Vec<Option<Term>> {
    if args.children.is_empty() {
        Vec::new()
    } else {
        split_commas(args).iter().map(|s| term_spanning(s)).collect()
    }
}

/// Collects every raw call in a forest (all runs, depth-first).
pub fn raw_calls(nodes: &[Node]) -> Vec<RawCall> {
    struct Calls(Vec<RawCall>);
    impl RunVisitor for Calls {
        fn run(&mut self, run: &[Node], _depth: usize) {
            for call in find_method_calls(run) {
                self.0.push(RawCall {
                    name: call.name.to_string(),
                    line: call.line,
                    argc: arg_count(call.args),
                    qualifier: None,
                    kind: CallKind::Method,
                    args: arg_terms(call.args),
                });
            }
            for i in 0..run.len() {
                let Some(tok) = run[i].tok() else { continue };
                if tok.kind != crate::ast::TokKind::Ident
                    || KEYWORDS.contains(&tok.text.as_str())
                    || tok.text.starts_with(|c: char| c.is_ascii_uppercase())
                {
                    continue;
                }
                let Some(args) = run.get(i + 1).and_then(Node::group) else { continue };
                if args.delim != Delim::Paren {
                    continue;
                }
                let prev = i.checked_sub(1).map(|k| &run[k]);
                if prev.is_some_and(|p| p.is_punct(".") || p.is_ident("fn")) {
                    continue; // method call (handled above) or definition
                }
                let qualifier = match prev {
                    Some(p) if p.is_punct("::") => run
                        .get(i.wrapping_sub(2))
                        .and_then(Node::ident)
                        .map(str::to_string),
                    _ => None,
                };
                let kind = if qualifier.is_some() { CallKind::Qualified } else { CallKind::Free };
                self.0.push(RawCall {
                    name: tok.text.clone(),
                    line: tok.line,
                    argc: arg_count(args),
                    qualifier,
                    kind,
                    args: arg_terms(args),
                });
            }
        }
    }
    let mut v = Calls(Vec::new());
    crate::ast::visit::walk_runs(nodes, &mut v);
    v.0
}

/// One resolved call-graph edge.
#[derive(Debug)]
pub struct CallSite {
    /// Callee candidate this edge points at.
    pub callee: FnId,
    /// 1-based line of the call in the *caller's* file.
    pub line: usize,
    /// Callee name as written at the site.
    pub name: String,
}

/// The workspace call graph: resolved outgoing edges per function.
pub struct CallGraph {
    /// Outgoing edges, indexed by caller [`FnId`]. One raw call with N
    /// candidate resolutions contributes N edges.
    pub calls: Vec<Vec<CallSite>>,
    /// Callers per callee — the transpose, for worklist scheduling.
    pub callers: Vec<Vec<FnId>>,
}

impl CallGraph {
    /// Resolves every function body's raw calls against the table.
    pub fn build(symbols: &SymbolTable) -> Self {
        let n = symbols.fns.len();
        let mut calls = Vec::with_capacity(n);
        let mut callers: Vec<Vec<FnId>> = vec![Vec::new(); n];
        for (caller, f) in symbols.fns.iter().enumerate() {
            let mut edges = Vec::new();
            for raw in raw_calls(&f.body.children) {
                for callee in
                    symbols.resolve(&raw.name, raw.argc, raw.qualifier.as_deref(), raw.kind)
                {
                    if !callers[callee].contains(&caller) {
                        callers[callee].push(caller);
                    }
                    edges.push(CallSite { callee, line: raw.line, name: raw.name.clone() });
                }
            }
            calls.push(edges);
        }
        CallGraph { calls, callers }
    }

    /// Deduplicated callee set of one function (used by reachability).
    pub fn callees(&self, id: FnId) -> Vec<FnId> {
        let mut out: Vec<FnId> = self.calls[id].iter().map(|c| c.callee).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Convenience: name → FnId lookup map for tests and diagnostics.
pub fn name_index(symbols: &SymbolTable) -> HashMap<&str, FnId> {
    symbols
        .fns
        .iter()
        .enumerate()
        .map(|(id, f)| (f.name.as_str(), id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ast;
    use crate::scan::SourceFile;

    fn graph(src: &str) -> (SymbolTable, CallGraph) {
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let ast = Ast::parse("crates/core/src/x.rs", src);
        let symbols = SymbolTable::build(&[(file, ast)]);
        let g = CallGraph::build(&symbols);
        (symbols, g)
    }

    #[test]
    fn free_method_and_qualified_calls_resolve() {
        let src = "\
fn leaf(x: f64) -> f64 { x }
struct S;
impl S {
    fn new() -> S { S }
    fn step(&self) -> f64 { leaf(1.0) }
}
fn driver(s: &S) -> f64 {
    let s2 = S::new();
    s.step() + leaf(2.0)
}
";
        let (sym, g) = graph(src);
        let ids = name_index(&sym);
        let driver_edges = &g.calls[ids["driver"]];
        let mut names: Vec<&str> = driver_edges.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["leaf", "new", "step"]);
        assert_eq!(g.callees(ids["step"]), vec![ids["leaf"]]);
        assert!(g.callers[ids["leaf"]].contains(&ids["driver"]));
        assert!(g.callers[ids["leaf"]].contains(&ids["step"]));
    }

    #[test]
    fn macros_and_constructors_are_not_calls() {
        let src = "fn f() -> Option<u8> {\n    format!(\"x\");\n    Some(1)\n}\n";
        let (sym, g) = graph(src);
        let ids = name_index(&sym);
        assert!(g.calls[ids["f"]].is_empty());
    }

    #[test]
    fn foreign_assoc_fns_resolve_to_nothing() {
        let src = "fn new() -> u8 { 0 }\nfn f() -> Vec<u8> { let v = Vec::new(); v }\n";
        let (sym, g) = graph(src);
        let ids = name_index(&sym);
        assert!(
            g.calls[ids["f"]].is_empty(),
            "Vec::new must not alias the workspace free fn `new`"
        );
    }

    #[test]
    fn std_colliding_method_names_resolve_only_when_qualified() {
        let src = "\
struct Q;
impl Q {
    fn push(&self, x: u8) -> u8 { x }
}
fn driver(q: &Q, v: &mut Vec<u8>) {
    v.push(1);
    q.push(2);
    Q::push(q, 3);
}
";
        let (sym, g) = graph(src);
        let ids = name_index(&sym);
        let edges = &g.calls[ids["driver"]];
        assert_eq!(
            edges.len(),
            1,
            "bare `.push(…)` must not alias the workspace method: {edges:?}"
        );
        assert_eq!(edges[0].callee, ids["push"]);
        assert_eq!(edges[0].line, 8, "only the qualified `Q::push` call resolves");
    }

    #[test]
    fn recursion_forms_a_cycle() {
        let src = "fn a(n: u8) { b(n) }\nfn b(n: u8) { a(n) }\n";
        let (sym, g) = graph(src);
        let ids = name_index(&sym);
        assert_eq!(g.callees(ids["a"]), vec![ids["b"]]);
        assert_eq!(g.callees(ids["b"]), vec![ids["a"]]);
    }
}
