//! `nondet-reach`: nondeterminism reachable from state-affecting paths.
//!
//! The workspace's replay guarantees (lockstep ≡ lanes, crash-resume ≡
//! uninterrupted, stream ≡ batch) are checked dynamically by byte-compare
//! tests — which only cover the paths they run. This analysis walks the
//! call graph from every *state-affecting root* and flags each reachable
//! *nondeterminism sink*, with the discovered call chain attached as
//! related locations (rendered as SARIF `relatedLocations`, like
//! `hot-path-reach`).
//!
//! **Roots** ([`ROOTS`], name-matched with an optional owner filter):
//! engine advance paths (`step`, `step_wait`, `run_to_end`,
//! `run_service`, `run_lockstep`), checkpoint serializers (`snapshot`,
//! `restore`, `snapshot_state`, `restore_state`, `checkpoint`),
//! serialized-output and wire encoders (`to_json`, `to_prometheus`,
//! `to_line`, `encode`), scenario identity hashing (`run_id`,
//! `canonical_json`, `canonicalize`, `materialize`), batch orchestration
//! (`BatchRunner::run`, `sweep`), and trace ingestion (`read_vm_cpu`,
//! `read_task_usage` — their output *is* replayed state).
//!
//! **Sinks** found in reachable non-test bodies:
//!
//! - iteration over a binding the analysis knows to be a std `HashMap` /
//!   `HashSet` (a field of the owning type — scoped to that type's own
//!   methods — or a param / local declared type, or a `HashMap::new()`
//!   initializer) — via `.iter()`-family calls or `for … in` loops —
//!   *unless* the statement collects into a `BTreeMap` / `BTreeSet` or
//!   the collected binding is sorted later in the same block. `Fx`-hashed maps (`BuildHasherDefault`) iterate in
//!   deterministic (insertion-history) order per seed and are exempt;
//! - wall-clock reads: `Instant::now`, `SystemTime::now`;
//! - channel receives (`.recv()`, `.try_recv()`, `.recv_timeout()`),
//!   whose arrival order depends on worker scheduling.
//!
//! Findings land on the *sink line* — the place a fix or a contract
//! belongs — waivable there with `// audit:ordered(<contract>)` (the
//! contract must be non-empty) or a plain `audit:allow(nondet-reach)`.
//! Type knowledge is name-based with no inference; a map reached through
//! a lock guard or an alias is invisible (DESIGN.md §18).

use std::collections::{HashMap, HashSet, VecDeque};

use super::callgraph::CallGraph;
use super::symbols::{type_text, FnDef, FnId, SymbolTable};
use crate::ast::visit::{find_method_calls, RunVisitor};
use crate::ast::{Ast, Node, TokKind};
use crate::report::{Related, Violation};
use crate::scan::SourceFile;
use crate::Report;

/// Root set: `(fn name, required impl owner)` — `None` matches any
/// definition of that name (free fns and methods alike).
pub const ROOTS: &[(&str, Option<&str>)] = &[
    ("step", Some("SimEngine")),
    ("step_wait", Some("SimEngine")),
    ("run_to_end", Some("SimEngine")),
    ("run_service", Some("SimEngine")),
    ("run_lockstep", None),
    ("snapshot", None),
    ("restore", None),
    ("snapshot_state", None),
    ("restore_state", None),
    ("checkpoint", None),
    ("to_json", None),
    ("to_prometheus", None),
    ("to_line", None),
    ("encode", None),
    ("run_id", None),
    ("canonical_json", None),
    ("canonicalize", None),
    ("materialize", None),
    ("run", Some("BatchRunner")),
    ("sweep", None),
    ("read_vm_cpu", None),
    ("read_task_usage", None),
];

/// Iterator-yielding methods whose order follows the hasher.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys", "into_values",
    "drain",
];

/// Channel-receive methods (arrival order is scheduler-dependent).
const RECV_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout"];

/// Sort-family methods that restore a deterministic order.
const SORT_METHODS: &[&str] = &[
    "sort", "sort_unstable", "sort_by", "sort_by_key", "sort_unstable_by",
    "sort_unstable_by_key", "sort_by_cached_key",
];

/// True when a rendered type names a randomly-seeded std hash container.
fn hashy_type(ty: &str) -> bool {
    (ty.contains("HashMap") || ty.contains("HashSet"))
        && !ty.contains("Fx")
        && !ty.contains("BuildHasherDefault")
}

/// One nondeterminism sink found in a function body.
#[derive(Debug)]
struct Sink {
    line: usize,
    what: String,
}

/// Last identifier of a receiver-chain slice (`self.per_vm_hour` →
/// `per_vm_hour`; `rx` → `rx`).
fn chain_key(chain: &[Node]) -> Option<&str> {
    chain.iter().rev().find_map(Node::ident)
}

/// Names of hash-container bindings *local* to one body: `let [mut] name:
/// Ty = …` with a hashy declared type, or `let [mut] name = HashMap::…`.
fn local_hashy_names(nodes: &[Node], out: &mut HashSet<String>) {
    struct Locals<'a>(&'a mut HashSet<String>);
    impl RunVisitor for Locals<'_> {
        fn run(&mut self, run: &[Node], _depth: usize) {
            for i in 0..run.len() {
                if !run[i].is_ident("let") {
                    continue;
                }
                let mut k = i + 1;
                while run.get(k).is_some_and(|n| n.is_ident("mut") || n.is_ident("ref")) {
                    k += 1;
                }
                let Some(name) = run.get(k).and_then(Node::ident) else { continue };
                // Statement text from the binding to the terminator.
                let end = (k..run.len())
                    .find(|&j| run[j].is_punct(";"))
                    .unwrap_or(run.len());
                if hashy_type(&type_text(&run[k + 1..end])) {
                    self.0.insert(name.to_string());
                }
            }
        }
    }
    let mut v = Locals(out);
    crate::ast::visit::walk_runs(nodes, &mut v);
}

/// Statement start for suppression purposes: unlike
/// [`stmt_start`], a top-level brace group (a preceding `for`/`if`/`match`
/// statement body) also ends the previous statement — `let` bindings right
/// after a loop must still be recognized as `let` statements.
fn suppress_stmt_start(run: &[Node], idx: usize) -> usize {
    (0..idx)
        .rev()
        .find(|&k| {
            run[k].is_punct(";")
                || matches!(&run[k], Node::Group(g) if g.delim == crate::ast::Delim::Brace)
        })
        .map_or(0, |k| k + 1)
}

/// True when the sink's statement (or a later sort of its binding in the
/// same block) restores a deterministic order.
fn order_restored(run: &[Node], idx: usize) -> bool {
    let s = suppress_stmt_start(run, idx);
    let e = (idx..run.len()).find(|&j| run[j].is_punct(";")).unwrap_or(run.len());
    let stmt = &run[s..e];
    if stmt.iter().any(|n| n.is_ident("BTreeMap") || n.is_ident("BTreeSet")) {
        return true;
    }
    let sorted_here = find_method_calls(stmt)
        .iter()
        .any(|c| SORT_METHODS.contains(&c.name));
    if sorted_here {
        return true;
    }
    // `let [mut] binding = <hash iteration>.collect(); … binding.sort…()`
    if stmt.first().is_some_and(|n| n.is_ident("let")) {
        let mut k = 1;
        while stmt.get(k).is_some_and(|n| n.is_ident("mut") || n.is_ident("ref")) {
            k += 1;
        }
        if let Some(binding) = stmt.get(k).and_then(Node::ident) {
            return find_method_calls(&run[e..]).iter().any(|c| {
                SORT_METHODS.contains(&c.name)
                    && chain_key(&run[e + c.recv_start..e + c.dot_idx]) == Some(binding)
            });
        }
    }
    false
}

/// Scans one body for nondeterminism sinks given the known hashy names.
fn body_sinks(f: &FnDef, field_names: &HashSet<String>) -> Vec<Sink> {
    let mut hashy: HashSet<String> = field_names.clone();
    for (name, ty) in f.params.iter().zip(&f.param_tys) {
        if hashy_type(ty) {
            hashy.insert(name.clone());
        }
    }
    local_hashy_names(&f.body.children, &mut hashy);

    struct Sinks<'a> {
        hashy: &'a HashSet<String>,
        out: Vec<Sink>,
    }
    impl RunVisitor for Sinks<'_> {
        fn run(&mut self, run: &[Node], _depth: usize) {
            for call in find_method_calls(run) {
                let key = chain_key(&run[call.recv_start..call.dot_idx]);
                if ITER_METHODS.contains(&call.name) {
                    if let Some(key) = key.filter(|k| self.hashy.contains(*k)) {
                        if !order_restored(run, call.dot_idx) {
                            self.out.push(Sink {
                                line: call.line,
                                what: format!(
                                    "hash-ordered iteration (`.{}()` on `{key}`)",
                                    call.name
                                ),
                            });
                        }
                    }
                } else if RECV_METHODS.contains(&call.name) {
                    self.out.push(Sink {
                        line: call.line,
                        what: format!("channel-arrival-order receive (`.{}()`)", call.name),
                    });
                }
            }
            for i in 0..run.len() {
                let Some(tok) = run[i].tok() else { continue };
                if tok.kind != TokKind::Ident {
                    continue;
                }
                // `for <pat> in <hashy>` loops.
                if tok.is_ident("for") {
                    let in_idx = (i + 1..run.len())
                        .take_while(|&j| {
                            !matches!(&run[j], Node::Group(g) if g.delim == crate::ast::Delim::Brace)
                        })
                        .find(|&j| run[j].is_ident("in"));
                    if let Some(in_idx) = in_idx {
                        let key = crate::ast::visit::term_after(run, in_idx + 1)
                            .map(|t| t.key);
                        if let Some(key) = key.filter(|k| self.hashy.contains(k)) {
                            if !order_restored(run, in_idx) {
                                self.out.push(Sink {
                                    line: tok.line,
                                    what: format!("for-loop over hash-ordered `{key}`"),
                                });
                            }
                        }
                    }
                }
                // `Instant::now()` / `SystemTime::now()` wall-clock reads.
                if (tok.is_ident("Instant") || tok.is_ident("SystemTime"))
                    && run.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && run.get(i + 2).is_some_and(|n| n.is_ident("now"))
                {
                    self.out.push(Sink {
                        line: tok.line,
                        what: format!("wall-clock read (`{}::now`)", tok.text),
                    });
                }
            }
        }
    }
    let mut v = Sinks { hashy: &hashy, out: Vec::new() };
    crate::ast::visit::walk_runs(&f.body.children, &mut v);
    v.out
}

/// Runs the analysis and reports `nondet-reach` findings.
pub fn check(
    files: &[(SourceFile, Ast)],
    symbols: &SymbolTable,
    graph: &CallGraph,
    report: &mut Report,
) {
    let file_of: HashMap<&str, usize> =
        files.iter().enumerate().map(|(i, (f, _))| (f.path.as_str(), i)).collect();

    // Hash-container field names, scoped per owning struct: tainting by
    // bare name workspace-wide would condemn every `items` because *one*
    // struct has a hashy `items` field. A body only inherits the fields
    // of the type its `impl` block names; cross-struct field access
    // (`other.map.iter()`) is invisible (DESIGN.md §18).
    let empty: HashSet<String> = HashSet::new();
    let mut fields_of: HashMap<&str, HashSet<String>> = HashMap::new();
    for s in symbols.structs.iter().filter(|s| !s.in_test) {
        let hashy: HashSet<String> = s
            .fields
            .iter()
            .filter(|f| hashy_type(&f.ty))
            .map(|f| f.name.clone())
            .collect();
        fields_of.entry(s.name.as_str()).or_default().extend(hashy);
    }

    // Multi-source BFS: every root seeds the queue; first discovery wins
    // the chain. Roots are visited in symbol order, so output is stable.
    let roots: Vec<FnId> = symbols
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.in_test
                && ROOTS.iter().any(|(name, owner)| {
                    f.name == *name && owner.is_none_or(|o| f.owner.as_deref() == Some(o))
                })
        })
        .map(|(id, _)| id)
        .collect();

    let mut parent: HashMap<FnId, FnId> = HashMap::new();
    let mut visited: HashSet<FnId> = roots.iter().copied().collect();
    let mut queue: VecDeque<FnId> = roots.iter().copied().collect();
    let mut order: Vec<FnId> = Vec::new();
    while let Some(cur) = queue.pop_front() {
        order.push(cur);
        for next in graph.callees(cur) {
            if !visited.contains(&next) {
                visited.insert(next);
                parent.insert(next, cur);
                queue.push_back(next);
            }
        }
    }

    let mut reported: HashSet<(String, usize, String)> = HashSet::new();
    for cur in order {
        let f = &symbols.fns[cur];
        if f.in_test {
            continue;
        }
        let Some(&fi) = file_of.get(f.file.as_str()) else { continue };
        let (sfile, sast) = &files[fi];
        let field_names = f
            .owner
            .as_deref()
            .and_then(|o| fields_of.get(o))
            .unwrap_or(&empty);
        for sink in body_sinks(f, field_names) {
            if sfile
                .lines
                .get(sink.line.saturating_sub(1))
                .is_some_and(|l| l.in_test)
            {
                continue;
            }
            let key = (f.file.clone(), sink.line, sink.what.clone());
            if !reported.insert(key) {
                continue;
            }
            // Chain: discovered root → … → cur, then the sink line.
            let mut chain = vec![cur];
            while let Some(&p) = parent.get(chain.last().unwrap()) {
                chain.push(p);
            }
            chain.reverse();
            let root_def = &symbols.fns[chain[0]];
            let mut related: Vec<Related> = chain
                .iter()
                .enumerate()
                .map(|(hop, &id)| {
                    let d = &symbols.fns[id];
                    Related {
                        file: d.file.clone(),
                        line: d.line,
                        message: if hop == 0 {
                            format!("state-affecting root `{}`, defined here", d.name)
                        } else {
                            format!("via `{}`, defined here", d.name)
                        },
                    }
                })
                .collect();
            related.push(Related {
                file: f.file.clone(),
                line: sink.line,
                message: format!("{} here", sink.what),
            });
            // Waivable in place via a *contracted* ordered annotation (or
            // a plain audit:allow).
            let ordered = sast
                .annotation(sink.line, "ordered")
                .is_some_and(|contract| !contract.is_empty());
            let waived =
                ordered || sfile.waived(sink.line.saturating_sub(1), super::NONDET_REACH);
            let depth = chain.len();
            let message = format!(
                "state-affecting path from `{}` reaches {} in `{}` ({} fn{} deep) — \
                 make the order deterministic or annotate \
                 `// audit:ordered(<contract>)`",
                root_def.name,
                sink.what,
                f.name,
                depth,
                if depth == 1 { "" } else { "s" },
            );
            let dup = report.violations.iter().any(|v| {
                v.file == *f.file && v.line == sink.line && v.rule == super::NONDET_REACH
                    && v.message == message
            });
            if !dup {
                report.push(Violation {
                    file: f.file.clone(),
                    line: sink.line,
                    rule: super::NONDET_REACH,
                    message,
                    waived,
                    related,
                });
            }
        }
    }
}
