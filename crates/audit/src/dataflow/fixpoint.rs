//! Generic worklist fixpoint solver and the flat value lattice the
//! interprocedural analyses iterate over.
//!
//! The solver is deliberately tiny: analyses own their state (per-function
//! summaries), and the solver only schedules which node to revisit next.
//! Monotone transfer functions over a finite-height lattice terminate on
//! their own; a hard iteration cap backstops any non-monotone bug so a
//! lint run can never spin.

use std::collections::VecDeque;

/// A flat three-point lattice over `T`: ⊥ (`Unknown`) below every
/// `Known(t)`, ⊤ (`Conflict`) above all of them. `join` is the least
/// upper bound; two different `Known` values join to `Conflict`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lattice<T> {
    /// No information yet (⊥).
    #[default]
    Unknown,
    /// Exactly one value observed.
    Known(T),
    /// Contradictory values observed (⊤).
    Conflict,
}

impl<T: PartialEq + Copy> Lattice<T> {
    /// Joins `other` into `self`; returns true when `self` changed.
    pub fn join(&mut self, other: Self) -> bool {
        let next = match (*self, other) {
            (Lattice::Unknown, o) => o,
            (s, Lattice::Unknown) => s,
            (Lattice::Conflict, _) | (_, Lattice::Conflict) => Lattice::Conflict,
            (Lattice::Known(a), Lattice::Known(b)) => {
                if a == b {
                    Lattice::Known(a)
                } else {
                    Lattice::Conflict
                }
            }
        };
        let changed = next != *self;
        *self = next;
        changed
    }

    /// The single known value, if exactly one was observed.
    pub fn known(self) -> Option<T> {
        match self {
            Lattice::Known(t) => Some(t),
            _ => None,
        }
    }
}

/// Worklist of node ids with membership dedup: pushing an already-queued
/// id is a no-op, so each node appears at most once at a time.
pub struct Worklist {
    queue: VecDeque<usize>,
    queued: Vec<bool>,
}

impl Worklist {
    /// A worklist seeded with every id in `0..n` (the standard start
    /// state: every node's transfer function runs at least once).
    pub fn full(n: usize) -> Self {
        Worklist { queue: (0..n).collect(), queued: vec![true; n] }
    }

    /// Schedules `id` unless it is already pending.
    pub fn push(&mut self, id: usize) {
        if let Some(q) = self.queued.get_mut(id) {
            if !*q {
                *q = true;
                self.queue.push_back(id);
            }
        }
    }

    /// Next node to process, or `None` when the analysis has converged.
    pub fn pop(&mut self) -> Option<usize> {
        let id = self.queue.pop_front()?;
        self.queued[id] = false;
        Some(id)
    }
}

/// Runs `step` over a worklist seeded with all of `0..n` until it drains.
/// `step(id)` applies node `id`'s transfer function and returns the ids
/// whose inputs it changed; those are re-queued. Returns the number of
/// steps taken (tests assert convergence speed with it).
///
/// The cap of `64·n` steps is far above anything a monotone analysis over
/// the three-point lattice can need (each node's state can only move up
/// twice), and turns a hypothetical oscillation into a silent early stop
/// instead of a hung lint run.
pub fn solve(n: usize, mut step: impl FnMut(usize) -> Vec<usize>) -> usize {
    let mut wl = Worklist::full(n);
    let cap = 64 * n.max(1);
    let mut steps = 0usize;
    while let Some(id) = wl.pop() {
        steps += 1;
        if steps > cap {
            break;
        }
        for dep in step(id) {
            wl.push(dep);
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_join_moves_up_only() {
        let mut v: Lattice<u8> = Lattice::Unknown;
        assert!(!v.join(Lattice::Unknown));
        assert!(v.join(Lattice::Known(3)));
        assert!(!v.join(Lattice::Known(3)));
        assert_eq!(v.known(), Some(3));
        assert!(v.join(Lattice::Known(4)));
        assert_eq!(v, Lattice::Conflict);
        assert!(!v.join(Lattice::Known(9)), "top absorbs everything");
    }

    #[test]
    fn worklist_dedups_pending_ids() {
        let mut wl = Worklist::full(2);
        wl.push(0); // already queued: no-op
        assert_eq!(wl.pop(), Some(0));
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), None);
        wl.push(1);
        wl.push(1);
        assert_eq!(wl.pop(), Some(1));
        assert_eq!(wl.pop(), None);
    }

    #[test]
    fn solve_reaches_fixpoint_on_a_cycle() {
        // Two nodes propagating a max value around a cycle: converges.
        let mut vals = [0u32, 5u32];
        let steps = solve(2, |id| {
            let other = 1 - id;
            if vals[other] < vals[id] {
                vals[other] = vals[id];
                vec![other]
            } else {
                Vec::new()
            }
        });
        assert_eq!(vals, [5, 5]);
        assert!(steps <= 4, "converged in {steps} steps");
    }

    #[test]
    fn solve_caps_runaway_steps() {
        // Deliberately non-monotone step: always reports a change.
        let steps = solve(1, |_| vec![0]);
        assert_eq!(steps, 65, "capped at 64·n + the detecting step");
    }
}
