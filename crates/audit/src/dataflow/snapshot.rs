//! `snapshot-complete`: checkpoint field-coverage analysis.
//!
//! Every bit-exactness guarantee in the workspace — lockstep ≡ individual
//! lanes, crash-resume ≡ uninterrupted batches, stream ≡ batch service —
//! rests on snapshot/restore pairs capturing *all* decision-relevant
//! state. The failure mode is silent: add a field to `CocaController`,
//! forget to thread it through `snapshot`/`restore`, and every byte-compare
//! test still passes until the one resume path that exercises the field
//! diverges. This analysis catches that at lint time:
//!
//! 1. **Pair indexing** — every type owning both a snapshot-like method
//!    ([`SNAPSHOT_FNS`]: `snapshot`, `snapshot_state`, `checkpoint`) and a
//!    restore-like method ([`RESTORE_FNS`]: `restore`, `restore_state`) is
//!    indexed, provided its named-field `struct` declaration is in the
//!    linted set (trait defaults and blanket `impl … for Box<…>` bodies
//!    have no such struct and are skipped).
//! 2. **Coverage** — a field is *snapshot-covered* when any snapshot-like
//!    method of the pair mentions `self.<field>`, *restore-covered* when
//!    any restore-like method does. Mentions are syntactic: a read, a
//!    write, or a delegating call like `self.solver.snapshot_state()` all
//!    count (DESIGN.md §18 spells out the resulting soundness caveats).
//! 3. **Findings** — a field covered by *neither* side is flagged at its
//!    declaration unless annotated `// audit:transient(<reason>)` (empty
//!    reasons do not waive: every waiver carries its why). A field the
//!    snapshot captures but the restore never writes is flagged at the
//!    restore definition — this is the "deleted a field write from
//!    `restore`" regression, and it names the field. The reverse direction
//!    (restore-only mentions) is deliberately not flagged: restores
//!    legitimately *read* config fields for shape validation.
//!
//! A stale `audit:transient` (annotating a field that is in fact covered,
//! or not part of any indexed snapshot type) is flagged by the
//! [`super::hygiene`] pass.

use std::collections::{HashMap, HashSet};

use super::symbols::SymbolTable;
use crate::ast::visit::RunVisitor;
use crate::ast::{Ast, Node};
use crate::report::Violation;
use crate::scan::SourceFile;
use crate::Report;

/// Method names treated as the capture side of a checkpoint pair.
pub const SNAPSHOT_FNS: &[&str] = &["snapshot", "snapshot_state", "checkpoint"];
/// Method names treated as the restore side of a checkpoint pair.
pub const RESTORE_FNS: &[&str] = &["restore", "restore_state"];

/// Collects every field name mentioned as `self.<field>` in a body forest.
fn self_field_mentions(nodes: &[Node]) -> HashSet<String> {
    struct Mentions(HashSet<String>);
    impl RunVisitor for Mentions {
        fn run(&mut self, run: &[Node], _depth: usize) {
            for i in 0..run.len() {
                if run[i].is_ident("self")
                    && run.get(i + 1).is_some_and(|n| n.is_punct("."))
                {
                    if let Some(name) = run.get(i + 2).and_then(Node::ident) {
                        self.0.insert(name.to_string());
                    }
                }
            }
        }
    }
    let mut v = Mentions(HashSet::new());
    crate::ast::visit::walk_runs(nodes, &mut v);
    v.0
}

/// Runs the analysis and reports `snapshot-complete` findings.
pub fn check(files: &[(SourceFile, Ast)], symbols: &SymbolTable, report: &mut Report) {
    let file_of: HashMap<&str, usize> =
        files.iter().enumerate().map(|(i, (f, _))| (f.path.as_str(), i)).collect();

    // Owner type → (snapshot-side FnIds, restore-side FnIds).
    let mut pairs: HashMap<&str, (Vec<usize>, Vec<usize>)> = HashMap::new();
    for (id, f) in symbols.fns.iter().enumerate() {
        let Some(owner) = f.owner.as_deref() else { continue };
        if !f.has_self || f.in_test {
            continue;
        }
        if SNAPSHOT_FNS.contains(&f.name.as_str()) {
            pairs.entry(owner).or_default().0.push(id);
        } else if RESTORE_FNS.contains(&f.name.as_str()) {
            pairs.entry(owner).or_default().1.push(id);
        }
    }

    // Deterministic owner order for reporting.
    let mut owners: Vec<&str> = pairs.keys().copied().collect();
    owners.sort_unstable();

    for owner in owners {
        let (snaps, rests) = &pairs[owner];
        if snaps.is_empty() || rests.is_empty() {
            continue; // not a pair (e.g. a lone metrics `snapshot()`)
        }
        let Some(st) = symbols.struct_named(owner, &symbols.fns[snaps[0]].file) else {
            continue; // enum, tuple struct, or foreign/blanket owner
        };
        let snap_set: HashSet<String> = snaps
            .iter()
            .flat_map(|&id| self_field_mentions(&symbols.fns[id].body.children))
            .collect();
        let rest_set: HashSet<String> = rests
            .iter()
            .flat_map(|&id| self_field_mentions(&symbols.fns[id].body.children))
            .collect();

        let snap_name = &symbols.fns[snaps[0]].name;
        let rest = &symbols.fns[rests[0]];
        let Some(&struct_file) = file_of.get(st.file.as_str()) else { continue };
        let (sfile, sast) = &files[struct_file];

        for field in &st.fields {
            let in_snap = snap_set.contains(&field.name);
            let in_rest = rest_set.contains(&field.name);
            if !in_snap && !in_rest {
                // Waivable in place via a *reasoned* transient annotation
                // (or a plain audit:allow).
                let transient = sast
                    .annotation(field.line, "transient")
                    .is_some_and(|reason| !reason.is_empty());
                let waived = transient
                    || sfile.waived(field.line.saturating_sub(1), super::SNAPSHOT_COMPLETE);
                report.push(Violation {
                    file: sfile.path.clone(),
                    line: field.line,
                    rule: super::SNAPSHOT_COMPLETE,
                    message: format!(
                        "field `{}` of `{owner}` is covered by neither `{snap_name}` nor \
                         `{}`; checkpoints silently miss it — capture and restore it, or \
                         annotate `// audit:transient(<reason>)`",
                        field.name, rest.name,
                    ),
                    waived,
                    related: Vec::new(),
                });
            } else if in_snap && !in_rest {
                let Some(&rest_file) = file_of.get(rest.file.as_str()) else { continue };
                let (rfile, _) = &files[rest_file];
                super::emit(
                    rfile,
                    rest.line,
                    super::SNAPSHOT_COMPLETE,
                    format!(
                        "`{}` never writes field `{}` of `{owner}`, but `{snap_name}` \
                         captures it — a restored instance would keep stale state",
                        rest.name, field.name,
                    ),
                    vec![crate::report::Related {
                        file: st.file.clone(),
                        line: field.line,
                        message: format!("field `{}` declared here", field.name),
                    }],
                    report,
                );
            }
        }
    }
}
