//! Workspace-wide function symbol table.
//!
//! Pass 1 of the interprocedural analyses: walk every parsed file's token
//! forest and record each `fn` item with a body — free functions, inherent
//! methods (tagged with their `impl` type), and trait impl methods.
//! Trait *declarations* (`fn f(…);` without a body) are skipped: there is
//! nothing to analyze and resolving calls to them would only add noise.
//!
//! Resolution is name-based with arity filtering and owner-type
//! preference — see [`SymbolTable::resolve`] for the exact tiering and
//! `DESIGN.md` §14 for the soundness caveats. There is no type inference:
//! a method call resolves to *every* same-name same-arity method in the
//! workspace when the receiver type is unknown.

use std::collections::HashMap;

use crate::ast::tree::{Delim, Group, Node};
use crate::ast::{Ast, TokKind};
use crate::scan::SourceFile;

/// Index of a function in [`SymbolTable::fns`].
pub type FnId = usize;

/// One function definition with a body.
#[derive(Debug)]
pub struct FnDef {
    /// Function name (last path segment as written at the definition).
    pub name: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the `fn` name token.
    pub line: usize,
    /// Parameter names in order, excluding any `self` receiver. A
    /// parameter bound by a destructuring pattern gets an empty name.
    pub params: Vec<String>,
    /// Declared parameter types, parallel to `params`, rendered via
    /// [`type_text`] (container detection only).
    pub param_tys: Vec<String>,
    /// True for methods taking `self` (by value or reference).
    pub has_self: bool,
    /// The `impl` type this method belongs to, when directly inside an
    /// `impl` block (`impl Cluster { fn new … }` → `Some("Cluster")`).
    pub owner: Option<String>,
    /// True when the definition sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// The body token tree (cloned out of the file's forest).
    pub body: Group,
}

impl FnDef {
    /// Number of declared parameters, excluding `self`.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// One named field of a struct declaration.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name as written.
    pub name: String,
    /// 1-based line of the field-name token.
    pub line: usize,
    /// Declared type rendered as space-joined tokens (groups flattened) —
    /// enough for container detection, not a parseable type.
    pub ty: String,
}

/// One `struct Name { … }` declaration with named fields. Tuple structs,
/// unit structs, and enums are not collected: the field-coverage analyses
/// need named fields to cross-check against `self.<field>` accesses.
#[derive(Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// 1-based line of the struct-name token.
    pub line: usize,
    /// Declared fields in order.
    pub fields: Vec<FieldDef>,
    /// True when the declaration sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// All function definitions across the linted file set, indexed by name.
pub struct SymbolTable {
    /// Every collected definition; a [`FnId`] indexes this vector.
    pub fns: Vec<FnDef>,
    /// Every named-field struct declaration across the file set.
    pub structs: Vec<StructDef>,
    by_name: HashMap<String, Vec<FnId>>,
}

/// How a call site spells its callee — drives resolution tiering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(args)` — prefer methods (`self` receivers).
    Method,
    /// `Qualifier::name(args)` — prefer methods owned by `Qualifier`.
    Qualified,
    /// Bare `name(args)` — prefer free functions.
    Free,
}

impl SymbolTable {
    /// Builds the table over every parsed file.
    pub fn build(files: &[(SourceFile, Ast)]) -> Self {
        let mut fns = Vec::new();
        let mut structs = Vec::new();
        for (file, ast) in files {
            collect(&ast.nodes, file, None, &mut fns);
            collect_structs(&ast.nodes, file, &mut structs);
        }
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(id);
        }
        SymbolTable { fns, structs, by_name }
    }

    /// The non-test struct declaration named `name`, preferring one in
    /// `prefer_file` (the file its methods were found in). Returns `None`
    /// when the name is unknown, or ambiguous across files with no
    /// same-file candidate — analyses must skip rather than guess.
    pub fn struct_named(&self, name: &str, prefer_file: &str) -> Option<&StructDef> {
        let mut candidates = self
            .structs
            .iter()
            .filter(|s| s.name == name && !s.in_test);
        let first = candidates.next()?;
        match candidates.next() {
            None => Some(first),
            Some(_) => self
                .structs
                .iter()
                .find(|s| s.name == name && !s.in_test && s.file == prefer_file),
        }
    }

    /// Resolves a call to its candidate definitions, most specific tier
    /// first; an empty result means the callee is outside the workspace
    /// (std, vendored shims) or not a plain `fn` (closure, fn pointer).
    ///
    /// Tiering: (1) when the call is `Type::name(…)` and some candidate's
    /// `impl` owner matches `Type`, only those; a qualifier that matches
    /// *no* owner but starts uppercase is a foreign type and resolves to
    /// nothing (so `Vec::new()` never aliases a workspace `new`). A
    /// lowercase qualifier is a module path and falls through. (2) among
    /// the remaining candidates, exact arity matches win — `argc` against
    /// `arity()` for method calls and free functions, and additionally
    /// `arity()+1` for qualified calls passing the receiver explicitly.
    /// (3) otherwise every remaining candidate (tolerant fallback), so a
    /// default-argument-style wrapper mismatch degrades to over-reporting
    /// edges rather than silently dropping them.
    ///
    /// Exception to the tolerance: a bare `recv.name(…)` whose name
    /// collides with a ubiquitous std container method
    /// ([`STD_COLLIDING_METHODS`]) resolves to nothing — receiver-blind
    /// matching would attribute every `vec.push(x)` in the workspace to
    /// any workspace method that happens to be called `push`. Qualified
    /// calls (`Type::name(recv, …)`) still resolve, so such methods stay
    /// reachable when spelled unambiguously.
    pub fn resolve(&self, name: &str, argc: usize, qualifier: Option<&str>, kind: CallKind) -> Vec<FnId> {
        if kind == CallKind::Method && STD_COLLIDING_METHODS.contains(&name) {
            return Vec::new();
        }
        let Some(all) = self.by_name.get(name) else { return Vec::new() };
        let mut set: Vec<FnId> = all.clone();
        if let Some(q) = qualifier {
            let owned: Vec<FnId> =
                set.iter().copied().filter(|&id| self.fns[id].owner.as_deref() == Some(q)).collect();
            if !owned.is_empty() {
                set = owned;
            } else if q.starts_with(|c: char| c.is_ascii_uppercase()) {
                return Vec::new(); // foreign type's associated fn
            }
        }
        match kind {
            CallKind::Method => {
                set.retain(|&id| self.fns[id].has_self);
            }
            CallKind::Free => {
                set.retain(|&id| !self.fns[id].has_self);
            }
            CallKind::Qualified => {}
        }
        let exact: Vec<FnId> = set
            .iter()
            .copied()
            .filter(|&id| {
                let f = &self.fns[id];
                f.arity() == argc
                    || (kind == CallKind::Qualified && f.has_self && f.arity() + 1 == argc)
            })
            .collect();
        if exact.is_empty() {
            set
        } else {
            exact
        }
    }

    /// Every definition sharing `name`, regardless of arity — used for
    /// return-summary lookups where the argument count is unknown.
    pub fn by_name(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

/// Method names that collide with ubiquitous std container / iterator
/// methods (`Vec::push`, `HashMap::insert`, `Option::take`, …). A bare
/// `recv.name(…)` call with one of these names is overwhelmingly the std
/// method, so method-call resolution skips them (see
/// [`SymbolTable::resolve`]).
pub(crate) const STD_COLLIDING_METHODS: &[&str] = &[
    "push", "pop", "insert", "remove", "append", "extend", "clear", "contains", "get", "take",
    "next",
];

/// Keywords that can be followed by a parenthesized expression and must
/// never be read as a callee or a function name.
pub(crate) const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "return", "for", "loop", "in", "as", "move", "let", "mut",
    "ref", "break", "continue", "unsafe", "async", "await", "fn", "impl", "where", "pub", "use",
    "mod", "struct", "enum", "trait", "type", "const", "static", "dyn", "self", "Self", "super",
    "crate", "true", "false",
];

/// Maps each brace-group index in `run` that is an `impl` body to the
/// implemented type's name (`impl Foo { … }`, `impl Trait for Foo { … }`).
fn impl_bodies(run: &[Node]) -> HashMap<usize, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < run.len() {
        if !run[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // `impl` in type position (`-> impl Iterator`, `x: impl Fn()`,
        // `type X = impl T`) opens no body; only item-position `impl`
        // blocks do.
        let type_position = i > 0
            && run[i - 1]
                .tok()
                .is_some_and(|t| matches!(t.text.as_str(), "->" | ":" | "=" | "&" | "+" | ","));
        if type_position {
            i += 1;
            continue;
        }
        let mut angle = 0i32;
        let mut name: Option<String> = None;
        let mut j = i + 1;
        while j < run.len() {
            match &run[j] {
                Node::Tok(t) if t.is_punct("<") => angle += 1,
                Node::Tok(t) if t.is_punct(">") => angle -= 1,
                Node::Tok(t) if t.is_ident("for") && angle == 0 => name = None,
                Node::Tok(t) if t.kind == TokKind::Ident && angle == 0 && name.is_none() => {
                    let keyword = KEYWORDS.contains(&t.text.as_str());
                    // Skip path-prefix segments (`impl coca_core::Cluster`).
                    let prefixed = run.get(j + 1).is_some_and(|n| n.is_punct("::"));
                    if !keyword && !prefixed {
                        name = Some(t.text.clone());
                    }
                }
                Node::Group(g) if g.delim == Delim::Brace => {
                    if let Some(n) = name.take() {
                        out.insert(j, n);
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
    out
}

/// Walks one run, recording `fn` items and recursing into child groups
/// with the right `impl` owner.
fn collect(run: &[Node], file: &SourceFile, owner: Option<&str>, out: &mut Vec<FnDef>) {
    let impls = impl_bodies(run);
    for (i, n) in run.iter().enumerate() {
        if let Node::Group(g) = n {
            // Only a direct impl body confers ownership; any other group
            // (a fn body, a mod) starts a fresh scope.
            collect(&g.children, file, impls.get(&i).map(String::as_str), out);
        } else if n.is_ident("fn") {
            if let Some(def) = parse_fn(run, i, file, owner) {
                out.push(def);
            }
        }
    }
}

/// Parses the `fn` item whose `fn` keyword sits at `run[at]`. Returns
/// `None` for bodyless declarations and `fn(…)` pointer types.
fn parse_fn(run: &[Node], at: usize, file: &SourceFile, owner: Option<&str>) -> Option<FnDef> {
    let name_tok = run.get(at + 1)?.tok()?;
    if name_tok.kind != TokKind::Ident || KEYWORDS.contains(&name_tok.text.as_str()) {
        return None; // `fn(u8) -> u8` type syntax, or recovery junk
    }
    let mut angle = 0i32;
    let mut params: Option<&Group> = None;
    for node in run.iter().skip(at + 2) {
        match node {
            Node::Tok(t) if t.is_punct("<") => angle += 1,
            Node::Tok(t) if t.is_punct(">") => angle -= 1,
            Node::Tok(t) if t.is_punct(";") && angle == 0 => return None, // trait decl
            Node::Group(g) if g.delim == Delim::Paren && angle == 0 && params.is_none() => {
                params = Some(g);
            }
            Node::Group(g) if g.delim == Delim::Brace && angle == 0 => {
                let p = params?;
                let (names, tys, has_self) = param_names(p);
                let line = name_tok.line;
                return Some(FnDef {
                    name: name_tok.text.clone(),
                    file: file.path.clone(),
                    line,
                    params: names,
                    param_tys: tys,
                    has_self,
                    owner: owner.map(str::to_string),
                    in_test: file
                        .lines
                        .get(line.saturating_sub(1))
                        .is_some_and(|l| l.in_test),
                    body: g.clone(),
                });
            }
            _ => {}
        }
    }
    None
}

/// Walks one run collecting `struct Name { … }` declarations, recursing
/// into every child group (modules; structs inside fn bodies too).
fn collect_structs(run: &[Node], file: &SourceFile, out: &mut Vec<StructDef>) {
    for (i, n) in run.iter().enumerate() {
        if let Node::Group(g) = n {
            collect_structs(&g.children, file, out);
        } else if n.is_ident("struct") {
            if let Some(def) = parse_struct(run, i, file) {
                out.push(def);
            }
        }
    }
}

/// Parses the struct whose `struct` keyword sits at `run[at]`. Returns
/// `None` for tuple structs (`struct P(f64);`), unit structs, and
/// recovery junk. Generic parameters and `where` clauses are skipped via
/// angle-depth tracking (the lexer never glues `>>`, so depth bookkeeping
/// is exact in type position).
fn parse_struct(run: &[Node], at: usize, file: &SourceFile) -> Option<StructDef> {
    let name_tok = run.get(at + 1)?.tok()?;
    if name_tok.kind != TokKind::Ident || KEYWORDS.contains(&name_tok.text.as_str()) {
        return None;
    }
    let mut angle = 0i32;
    let mut in_where = false;
    for node in run.iter().skip(at + 2) {
        match node {
            Node::Tok(t) if t.is_punct("<") => angle += 1,
            Node::Tok(t) if t.is_punct(">") => angle -= 1,
            Node::Tok(t) if t.is_ident("where") && angle == 0 => in_where = true,
            Node::Tok(t) if t.is_punct(";") && angle == 0 => return None, // unit struct
            // A paren group in head position is a tuple struct; inside a
            // `where` clause it is an `Fn(…)` bound and decides nothing.
            Node::Group(g) if g.delim == Delim::Paren && angle == 0 && !in_where => return None,
            Node::Group(g) if g.delim == Delim::Brace && angle == 0 => {
                return Some(StructDef {
                    name: name_tok.text.clone(),
                    file: file.path.clone(),
                    line: name_tok.line,
                    fields: parse_struct_fields(g),
                    in_test: file
                        .lines
                        .get(name_tok.line.saturating_sub(1))
                        .is_some_and(|l| l.in_test),
                });
            }
            _ => {}
        }
    }
    None
}

/// Splits on commas at angle depth 0 — a plain
/// [`crate::ast::visit::split_commas`] would split inside `HashMap<K, V>`
/// generics. The lexer never glues `>>`, so single-`>` depth tracking is
/// exact.
fn split_commas_outside_generics(children: &[Node]) -> Vec<&[Node]> {
    let mut slices: Vec<&[Node]> = Vec::new();
    let mut angle = 0i32;
    let mut start = 0;
    for (i, n) in children.iter().enumerate() {
        if n.is_punct("<") {
            angle += 1;
        } else if n.is_punct(">") {
            angle -= 1;
        } else if n.is_punct(",") && angle == 0 {
            slices.push(&children[start..i]);
            start = i + 1;
        }
    }
    slices.push(&children[start..]);
    slices
}

/// Splits a struct body on commas outside generics and extracts
/// `[pub] name: Type` fields.
fn parse_struct_fields(body: &Group) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    for slice in split_commas_outside_generics(&body.children) {
        let mut k = 0;
        // Skip `#[…]` attributes and the optional `pub` / `pub(crate)`.
        while slice.get(k).is_some_and(|n| n.is_punct("#"))
            && slice.get(k + 1).and_then(Node::group).is_some_and(|g| g.delim == Delim::Bracket)
        {
            k += 2;
        }
        if slice.get(k).is_some_and(|n| n.is_ident("pub")) {
            k += 1;
            if slice.get(k).and_then(Node::group).is_some_and(|g| g.delim == Delim::Paren) {
                k += 1;
            }
        }
        let Some(name_tok) = slice.get(k).and_then(Node::tok) else { continue };
        if name_tok.kind != TokKind::Ident || !slice.get(k + 1).is_some_and(|n| n.is_punct(":")) {
            continue;
        }
        fields.push(FieldDef {
            name: name_tok.text.clone(),
            line: name_tok.line,
            ty: type_text(&slice[k + 2..]),
        });
    }
    fields
}

/// Renders a type slice as space-joined token texts, flattening groups —
/// `Mutex<HashMap<(u32, usize), f64>>` → `"Mutex < HashMap < ( u32 ,
/// usize ) , f64 > >"`. Container detection substring-matches this.
pub(crate) fn type_text(nodes: &[Node]) -> String {
    let mut out = String::new();
    fn push(nodes: &[Node], out: &mut String) {
        for n in nodes {
            match n {
                Node::Tok(t) => {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(&t.text);
                }
                Node::Group(g) => {
                    let (o, c) = match g.delim {
                        Delim::Paren => ("(", ")"),
                        Delim::Bracket => ("[", "]"),
                        Delim::Brace => ("{", "}"),
                    };
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(o);
                    push(&g.children, out);
                    out.push(' ');
                    out.push_str(c);
                }
            }
        }
    }
    push(nodes, &mut out);
    out
}

/// Extracts parameter names from a params group. `self` (with optional
/// `&`/`mut` prefixes) is reported separately, not as a parameter.
fn param_names(params: &Group) -> (Vec<String>, Vec<String>, bool) {
    let mut names = Vec::new();
    let mut tys = Vec::new();
    let mut has_self = false;
    for (idx, slice) in split_commas_outside_generics(&params.children).iter().enumerate() {
        if slice.is_empty() {
            continue;
        }
        // Name = last identifier before the first top-level `:` (skips
        // `mut` / `ref` prefixes); `self` receivers have no `:` at all.
        let colon = slice.iter().position(|n| n.is_punct(":"));
        let head = &slice[..colon.unwrap_or(slice.len())];
        if idx == 0 && colon.is_none() && head.iter().any(|n| n.is_ident("self")) {
            has_self = true;
            continue;
        }
        let name = head
            .iter()
            .rev()
            .find_map(Node::ident)
            .filter(|n| !matches!(*n, "mut" | "ref"))
            .unwrap_or_default();
        names.push(name.to_string());
        tys.push(colon.map_or_else(String::new, |c| type_text(&slice[c + 1..])));
    }
    (names, tys, has_self)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> SymbolTable {
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let ast = Ast::parse("crates/core/src/x.rs", src);
        SymbolTable::build(&[(file, ast)])
    }

    #[test]
    fn free_fns_and_methods_collected() {
        let t = table(
            "fn helper(a_kwh: f64, b: f64) -> f64 { a_kwh }\n\
             struct Cluster;\n\
             impl Cluster {\n    fn new(n: usize) -> Self { Cluster }\n\
                 fn step(&mut self, dt: f64) {}\n}\n",
        );
        assert_eq!(t.fns.len(), 3);
        let helper = &t.fns[t.by_name("helper")[0]];
        assert_eq!(helper.params, vec!["a_kwh", "b"]);
        assert!(!helper.has_self);
        assert_eq!(helper.owner, None);
        let new = &t.fns[t.by_name("new")[0]];
        assert_eq!(new.owner.as_deref(), Some("Cluster"));
        assert!(!new.has_self);
        let step = &t.fns[t.by_name("step")[0]];
        assert!(step.has_self);
        assert_eq!(step.params, vec!["dt"]);
    }

    #[test]
    fn trait_impl_owner_is_the_implementing_type() {
        let t = table("impl Display for Report {\n    fn fmt(&self, f: &mut F) -> R { todo() }\n}\n");
        assert_eq!(t.fns[0].owner.as_deref(), Some("Report"));
    }

    #[test]
    fn bodyless_decls_and_fn_pointer_types_skipped() {
        let t = table("trait T {\n    fn required(&self);\n}\nfn taker(f: fn(u8) -> u8) {}\n");
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "taker");
        assert_eq!(t.fns[0].params, vec!["f"]);
    }

    #[test]
    fn generics_do_not_confuse_param_detection() {
        let t = table("fn g<T: Into<Vec<u8>>>(xs: T, n_kw: f64) -> f64 where T: Clone { n_kw }\n");
        assert_eq!(t.fns[0].params, vec!["xs", "n_kw"]);
    }

    #[test]
    fn resolution_tiers_by_owner_and_arity() {
        let t = table(
            "impl A {\n    fn make(x: u8) -> A { A }\n}\n\
             impl B {\n    fn make(x: u8, y: u8) -> B { B }\n}\n\
             fn make() -> u8 { 0 }\n",
        );
        // Owner match beats everything.
        let a = t.resolve("make", 1, Some("A"), CallKind::Qualified);
        assert_eq!(a.len(), 1);
        assert_eq!(t.fns[a[0]].owner.as_deref(), Some("A"));
        // Unknown uppercase qualifier: foreign type, no edges.
        assert!(t.resolve("make", 0, Some("Vec"), CallKind::Qualified).is_empty());
        // Bare call prefers free fns of matching arity.
        let free = t.resolve("make", 0, None, CallKind::Free);
        assert_eq!(free.len(), 1);
        assert_eq!(t.fns[free[0]].owner, None);
        // Unknown name resolves to nothing.
        assert!(t.resolve("absent", 0, None, CallKind::Free).is_empty());
    }

    #[test]
    fn nested_fns_in_bodies_are_collected_without_owner() {
        let t = table("impl A {\n    fn outer(&self) {\n        fn inner(k: u8) {}\n    }\n}\n");
        let inner = &t.fns[t.by_name("inner")[0]];
        assert_eq!(inner.owner, None);
        assert_eq!(t.fns[t.by_name("outer")[0]].owner.as_deref(), Some("A"));
    }

    #[test]
    fn return_position_impl_is_not_an_impl_block() {
        let t = table(
            "fn it() -> impl Iterator<Item = u8> {\n    fn inner() {}\n    empty()\n}\n",
        );
        assert_eq!(t.fns[t.by_name("inner")[0]].owner, None);
        assert_eq!(t.fns[t.by_name("it")[0]].params, Vec::<String>::new());
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let t = table("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n");
        assert!(!t.fns[t.by_name("real")[0]].in_test);
        assert!(t.fns[t.by_name("helper")[0]].in_test);
    }

    #[test]
    fn struct_fields_collected_with_types() {
        let t = table(
            "pub struct Engine {\n    pub t: usize,\n    #[allow(dead_code)]\n    \
             index: std::collections::HashMap<String, u32>,\n    \
             lanes: Vec<(usize, f64)>,\n}\n",
        );
        let s = t.struct_named("Engine", "crates/core/src/x.rs").expect("Engine indexed");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["t", "index", "lanes"]);
        assert!(s.fields[1].ty.contains("HashMap"), "{:?}", s.fields[1]);
        assert!(s.fields[2].ty.contains("Vec"), "{:?}", s.fields[2]);
        assert_eq!(s.fields[0].line, 2);
    }

    #[test]
    fn unit_tuple_and_where_structs_are_not_field_structs() {
        let t = table(
            "struct Unit;\nstruct Pair(f64, f64);\n\
             struct Bound<F> where F: Fn(u8) -> u8 { f: F }\n",
        );
        assert!(t.struct_named("Unit", "crates/core/src/x.rs").is_none());
        assert!(t.struct_named("Pair", "crates/core/src/x.rs").is_none());
        // The where-clause `Fn(u8)` parens must not read as a tuple struct.
        let b = t.struct_named("Bound", "crates/core/src/x.rs").expect("Bound indexed");
        assert_eq!(b.fields.len(), 1);
        assert_eq!(b.fields[0].name, "f");
    }

    #[test]
    fn ambiguous_struct_names_resolve_same_file_or_not_at_all() {
        let a = SourceFile::parse("crates/core/src/a.rs", "struct S { x: f64 }\n");
        let a_ast = Ast::parse("crates/core/src/a.rs", "struct S { x: f64 }\n");
        let b = SourceFile::parse("crates/core/src/b.rs", "struct S { y: f64 }\n");
        let b_ast = Ast::parse("crates/core/src/b.rs", "struct S { y: f64 }\n");
        let t = SymbolTable::build(&[(a, a_ast), (b, b_ast)]);
        let same = t.struct_named("S", "crates/core/src/b.rs").expect("same-file candidate");
        assert_eq!(same.fields[0].name, "y");
        assert!(t.struct_named("S", "crates/core/src/other.rs").is_none());
    }

    #[test]
    fn param_types_recorded_alongside_names() {
        let t = table(
            "fn f(m: &std::collections::HashMap<u32, u32>, n: usize) -> usize { n }\n\
             struct K;\nimpl K {\n    fn g(&self, xs: Vec<f64>) {}\n}\n",
        );
        let f = &t.fns[t.by_name("f")[0]];
        assert_eq!(f.params, vec!["m", "n"]);
        assert!(f.param_tys[0].contains("HashMap"), "{:?}", f.param_tys);
        assert_eq!(f.param_tys[1], "usize");
        let g = &t.fns[t.by_name("g")[0]];
        assert!(g.has_self);
        assert!(g.param_tys[0].contains("Vec"), "{:?}", g.param_tys);
    }
}
