//! `hot-path-reach`: transitive allocation / locking / IO detection for
//! `audit:hot-path` regions.
//!
//! The v1 `hot-alloc` line rule flags allocation *directly on* hot-region
//! lines, and keeps doing so. What it cannot see is a hot line calling an
//! innocuous-looking helper that allocates two frames down. This analysis
//! takes every resolved call on a hot-region line as a *root*, walks the
//! call graph breadth-first, and scans each reachable body for sink
//! operations:
//!
//! - **allocation** — `Vec::new`, `vec![…]`, `Box::new`, `format!`,
//!   `with_capacity`, `.clone()`, `.to_vec()`, `.to_owned()`,
//!   `.to_string()`, `.collect()`, `String::new`/`from`;
//! - **locking** — `.lock()`, `.read()`, `.write()` (the blocking guard
//!   acquisitions);
//! - **IO** — `File::open`/`create`, `fs::…` calls, `read_to_string`,
//!   `read_dir`, stdout/stderr handles.
//!
//! `.push` is deliberately *not* a sink: the workspace's hot-path
//! contract is capacity reuse (push into pre-sized scratch is the whole
//! point), mirroring `hot-alloc`. Sinks on lines that are themselves
//! inside a hot region are skipped — `hot-alloc` owns those sites, so no
//! site is reported by both rules — and test code never sinks.
//!
//! Each finding lands on the *root call line* (waivable there with
//! `// audit:allow(hot-path-reach)`), carrying the discovered call chain
//! hop by hop as related locations, ending at the sink line.

use std::collections::HashMap;

use super::callgraph::{raw_calls, CallGraph};
use super::symbols::{FnId, SymbolTable};
use crate::ast::visit::{find_method_calls, RunVisitor};
use crate::ast::{Ast, Node, TokKind};
use crate::report::Related;
use crate::scan::SourceFile;
use crate::Report;

/// Method-call sinks: `(name, what)` flagged when called with no
/// turbofish directly as `.name(…)`.
const METHOD_SINKS: &[(&str, &str)] = &[
    ("clone", "allocates (`.clone()`)"),
    ("to_vec", "allocates (`.to_vec()`)"),
    ("to_owned", "allocates (`.to_owned()`)"),
    ("to_string", "allocates (`.to_string()`)"),
    ("collect", "allocates (`.collect()`)"),
    ("with_capacity", "allocates (`with_capacity`)"),
    ("lock", "takes a lock (`.lock()`)"),
    ("read", "takes a lock (`.read()`)"),
    ("write", "takes a lock (`.write()`)"),
    ("read_to_string", "performs IO (`read_to_string`)"),
    ("write_all", "performs IO (`write_all`)"),
    ("flush", "performs IO (`flush`)"),
];

/// Qualified sinks: `Qualifier::name` paths.
const PATH_SINKS: &[(&str, &str, &str)] = &[
    ("Vec", "new", "allocates (`Vec::new`)"),
    ("Vec", "with_capacity", "allocates (`Vec::with_capacity`)"),
    ("String", "new", "allocates (`String::new`)"),
    ("String", "from", "allocates (`String::from`)"),
    ("String", "with_capacity", "allocates (`String::with_capacity`)"),
    ("Box", "new", "allocates (`Box::new`)"),
    ("HashMap", "new", "allocates (`HashMap::new`)"),
    ("BTreeMap", "new", "allocates (`BTreeMap::new`)"),
    ("VecDeque", "new", "allocates (`VecDeque::new`)"),
    ("File", "open", "performs IO (`File::open`)"),
    ("File", "create", "performs IO (`File::create`)"),
    ("fs", "read_to_string", "performs IO (`fs::read_to_string`)"),
    ("fs", "read_dir", "performs IO (`fs::read_dir`)"),
    ("fs", "write", "performs IO (`fs::write`)"),
    ("io", "stdout", "performs IO (`io::stdout`)"),
    ("io", "stderr", "performs IO (`io::stderr`)"),
];

/// Macro sinks: `name!(…)`.
const MACRO_SINKS: &[(&str, &str)] = &[
    ("vec", "allocates (`vec![…]`)"),
    ("format", "allocates (`format!`)"),
];

/// One sink operation found in a function body.
#[derive(Debug)]
struct Sink {
    line: usize,
    what: &'static str,
}

/// Scans a body forest for sink operations.
fn body_sinks(nodes: &[Node]) -> Vec<Sink> {
    struct Sinks(Vec<Sink>);
    impl RunVisitor for Sinks {
        fn run(&mut self, run: &[Node], _depth: usize) {
            for call in find_method_calls(run) {
                if let Some((_, what)) = METHOD_SINKS.iter().find(|(n, _)| *n == call.name) {
                    self.0.push(Sink { line: call.line, what });
                }
            }
            for i in 0..run.len() {
                let Some(tok) = run[i].tok() else { continue };
                if tok.kind != TokKind::Ident {
                    continue;
                }
                // `Qualifier::name` sink paths.
                if run.get(i + 1).is_some_and(|n| n.is_punct("::")) {
                    if let Some(name) = run.get(i + 2).and_then(Node::ident) {
                        if let Some((_, _, what)) = PATH_SINKS
                            .iter()
                            .find(|(q, n, _)| tok.is_ident(q) && *n == name)
                        {
                            self.0.push(Sink { line: tok.line, what });
                        }
                    }
                }
                // `name!(…)` macro sinks.
                if run.get(i + 1).is_some_and(|n| n.is_punct("!"))
                    && run.get(i + 2).and_then(Node::group).is_some()
                {
                    if let Some((_, what)) = MACRO_SINKS.iter().find(|(n, _)| tok.is_ident(n)) {
                        self.0.push(Sink { line: tok.line, what });
                    }
                }
            }
        }
    }
    let mut v = Sinks(Vec::new());
    crate::ast::visit::walk_runs(nodes, &mut v);
    v.0
}

/// Runs the analysis and reports `hot-path-reach` findings.
pub fn check(
    files: &[(SourceFile, Ast)],
    symbols: &SymbolTable,
    graph: &CallGraph,
    report: &mut Report,
) {
    let file_of: HashMap<&str, usize> =
        files.iter().enumerate().map(|(i, (f, _))| (f.path.as_str(), i)).collect();
    // Sinks per function, minus hot-region lines (`hot-alloc` territory)
    // and test code.
    let sinks: Vec<Vec<Sink>> = symbols
        .fns
        .iter()
        .map(|f| {
            let file = &files[file_of[f.file.as_str()]].0;
            body_sinks(&f.body.children)
                .into_iter()
                .filter(|s| {
                    let line = file.lines.get(s.line.saturating_sub(1));
                    line.is_some_and(|l| !l.in_hot && !l.in_test)
                })
                .collect()
        })
        .collect();

    // Roots: resolved calls sitting on hot-region lines, per file.
    for (file, ast) in files {
        for raw in raw_calls(&ast.nodes) {
            let on_hot = file
                .lines
                .get(raw.line.saturating_sub(1))
                .is_some_and(|l| l.in_hot && !l.in_test);
            if !on_hot {
                continue;
            }
            let roots = symbols.resolve(&raw.name, raw.argc, raw.qualifier.as_deref(), raw.kind);
            for root in roots {
                // BFS with first-discovery parents for chain rendering.
                let mut parent: HashMap<FnId, FnId> = HashMap::new();
                let mut queue = std::collections::VecDeque::from([root]);
                let mut visited = vec![root];
                let mut reported = Vec::new();
                while let Some(cur) = queue.pop_front() {
                    for sink in &sinks[cur] {
                        let key = (symbols.fns[cur].file.clone(), sink.line, sink.what);
                        if reported.contains(&key) {
                            continue;
                        }
                        reported.push(key);
                        // Chain: root → … → cur, then the sink line.
                        let mut chain = vec![cur];
                        while let Some(&p) = parent.get(chain.last().unwrap()) {
                            chain.push(p);
                        }
                        chain.reverse();
                        let mut related: Vec<Related> = chain
                            .iter()
                            .map(|&id| {
                                let f = &symbols.fns[id];
                                Related {
                                    file: f.file.clone(),
                                    line: f.line,
                                    message: format!("via `{}`, defined here", f.name),
                                }
                            })
                            .collect();
                        related.push(Related {
                            file: symbols.fns[cur].file.clone(),
                            line: sink.line,
                            message: format!("{} here", sink.what),
                        });
                        let depth = chain.len();
                        super::emit(
                            file,
                            raw.line,
                            super::HOT_PATH_REACH,
                            format!(
                                "hot-path call `{}` reaches code that {} in `{}` \
                                 ({} call{} deep)",
                                raw.name,
                                sink.what,
                                symbols.fns[cur].name,
                                depth,
                                if depth == 1 { "" } else { "s" }
                            ),
                            related,
                            report,
                        );
                    }
                    for next in graph.callees(cur) {
                        if !visited.contains(&next) {
                            visited.push(next);
                            parent.insert(next, cur);
                            queue.push_back(next);
                        }
                    }
                }
            }
        }
    }
}
