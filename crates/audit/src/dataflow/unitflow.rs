//! `unit-flow`: interprocedural units-of-measure inference.
//!
//! The per-file `unit-mix` rule only sees units spelled *locally* —
//! suffixes, annotations, ascriptions in the same file. This analysis
//! propagates those same tags **through calls**: argument units flow into
//! parameter summaries, return-expression units flow out as return
//! summaries, and both iterate to a fixpoint over the call graph, so a
//! kWh produced two calls away from any annotation still carries its
//! dimension. Three checks ride on the converged summaries:
//!
//! 1. **argument vs declared parameter** — a call passing a kWh term into
//!    a parameter whose own name/annotation declares USD;
//! 2. **conflicting inference** — an undeclared parameter that receives
//!    *different* known units from different call sites (the lattice hits
//!    ⊤); each contributing site becomes a related location;
//! 3. **inferred arithmetic mix** — a `+`/`-`/comparison whose operand
//!    unit was only discoverable through a call's return summary (the
//!    callee's name carries no suffix). Purely local mixes stay with
//!    `unit-mix`; this check reports only what v1 cannot see, so no site
//!    is double-reported.
//!
//! Findings are waivable at the *call/operator* site with
//! `// audit:allow(unit-flow)`, and test code is exempt throughout.

use std::collections::HashMap;

use super::callgraph::{raw_calls, RawCall};
use super::fixpoint::{solve, Lattice};
use super::symbols::{CallKind, FnId, SymbolTable};
use crate::ast::visit::{term_after, term_before, term_spanning, RunVisitor, Term};
use crate::ast::{Ast, Node, TokKind};
use crate::report::Related;
use crate::scan::SourceFile;
use crate::semantic::units::{build_env, suffix_unit, Env, Unit};
use crate::Report;

/// Operators requiring both operands to share a dimension. Bare `<`/`>`
/// are excluded here — disambiguating them from generic brackets is the
/// per-file rule's job, and re-deciding it would risk disagreeing.
const SAME_DIM_OPS: &[&str] = &["+", "-", "+=", "-=", "<=", ">=", "==", "!="];

/// Per-function summary: one lattice point per parameter plus the return.
#[derive(Default)]
struct Summary {
    params: Vec<Lattice<Unit>>,
    ret: Lattice<Unit>,
}

/// A resolved call with argument terms, cached per caller.
struct Call {
    raw: RawCall,
    cands: Vec<FnId>,
}

/// Maps a call's argument index to the callee's parameter index —
/// `Type::method(recv, a)` passes the receiver as argument 0.
fn param_index(call: &Call, callee: &super::symbols::FnDef, arg: usize) -> Option<usize> {
    if call.raw.kind == CallKind::Qualified
        && callee.has_self
        && call.raw.argc == callee.arity() + 1
    {
        arg.checked_sub(1)
    } else {
        Some(arg)
    }
}

/// Return-expression terms of a body: every `return <term>` plus the
/// single-chain tail expression, if any.
fn return_terms(body: &crate::ast::Group) -> Vec<Term> {
    struct Rets(Vec<Term>);
    impl RunVisitor for Rets {
        fn run(&mut self, run: &[Node], _depth: usize) {
            for (i, n) in run.iter().enumerate() {
                if n.is_ident("return") {
                    if let Some(t) = term_after(run, i + 1) {
                        self.0.push(t);
                    }
                }
            }
        }
    }
    let mut v = Rets(Vec::new());
    crate::ast::visit::walk_runs(&body.children, &mut v);
    let run = &body.children;
    // The tail expression starts after the last top-level `;` *or* the
    // last top-level brace group — `for`/`while`/`if` statements end in a
    // block, not a semicolon. A body whose tail *is* a block expression
    // yields no term here, an accepted miss (§14 soundness caveats).
    let tail_start = (0..run.len())
        .rev()
        .find(|&k| {
            run[k].is_punct(";")
                || matches!(&run[k], Node::Group(g) if g.delim == crate::ast::Delim::Brace)
        })
        .map_or(0, |k| k + 1);
    if let Some(t) = term_spanning(&run[tail_start..]) {
        v.0.push(t);
    }
    v.0
}

/// The analysis context shared by seeding, transfer, and reporting.
struct Flow<'a> {
    symbols: &'a SymbolTable,
    envs: Vec<Env>,
    file_of: HashMap<&'a str, usize>,
    calls: Vec<Vec<Call>>,
    rets: Vec<Vec<Term>>,
    declared: Vec<Vec<Option<Unit>>>,
    ret_declared: Vec<Option<Unit>>,
    state: Vec<Summary>,
    /// Functions whose transfer must rerun when fn `k`'s summary moves.
    dependents: Vec<Vec<FnId>>,
}

impl<'a> Flow<'a> {
    fn build(files: &'a [(SourceFile, Ast)], symbols: &'a SymbolTable) -> Self {
        let envs: Vec<Env> = files.iter().map(|(_, ast)| build_env(ast).0).collect();
        let file_of: HashMap<&str, usize> =
            files.iter().enumerate().map(|(i, (f, _))| (f.path.as_str(), i)).collect();
        let n = symbols.fns.len();
        let mut calls = Vec::with_capacity(n);
        let mut rets = Vec::with_capacity(n);
        let mut declared = Vec::with_capacity(n);
        let mut ret_declared = Vec::with_capacity(n);
        let mut state = Vec::with_capacity(n);
        for f in &symbols.fns {
            let env = &envs[file_of[f.file.as_str()]];
            calls.push(
                raw_calls(&f.body.children)
                    .into_iter()
                    .map(|raw| {
                        let cands =
                            symbols.resolve(&raw.name, raw.argc, raw.qualifier.as_deref(), raw.kind);
                        Call { raw, cands }
                    })
                    .collect::<Vec<_>>(),
            );
            rets.push(return_terms(&f.body));
            declared.push(f.params.iter().map(|p| env.unit_of(p)).collect());
            ret_declared.push(env.unit_of(&f.name));
            state.push(Summary { params: vec![Lattice::Unknown; f.arity()], ret: Lattice::Unknown });
        }
        // Dependency edges: fn k's summary feeds every fn whose body
        // names k — as a direct call or as a call term in an argument or
        // return position.
        let mut dependents: Vec<Vec<FnId>> = vec![Vec::new(); n];
        for (c, cs) in calls.iter().enumerate() {
            let mut note = |name: &str| {
                for &k in symbols.by_name(name) {
                    if !dependents[k].contains(&c) {
                        dependents[k].push(c);
                    }
                }
            };
            for call in cs {
                note(&call.raw.name);
                for t in call.raw.args.iter().flatten() {
                    if t.is_call {
                        note(&t.key);
                    }
                }
            }
            for t in &rets[c] {
                if t.is_call {
                    note(&t.key);
                }
            }
        }
        let mut flow = Flow {
            symbols,
            envs,
            file_of,
            calls,
            rets,
            declared,
            ret_declared,
            state,
            dependents,
        };
        // Seed: declared parameter/return units are facts, not inferences.
        for k in 0..n {
            for (i, d) in flow.declared[k].clone().into_iter().enumerate() {
                if let Some(u) = d {
                    flow.state[k].params[i].join(Lattice::Known(u));
                }
            }
            if let Some(u) = flow.ret_declared[k] {
                flow.state[k].ret.join(Lattice::Known(u));
            }
        }
        flow
    }

    /// Joined return summary of every workspace fn named `name`; falls
    /// back to the suffix convention for out-of-workspace callees.
    fn ret_unit(&self, name: &str) -> Option<Unit> {
        let ids = self.symbols.by_name(name);
        if ids.is_empty() {
            return suffix_unit(name);
        }
        let mut acc = Lattice::Unknown;
        for &k in ids {
            acc.join(self.state[k].ret);
        }
        acc.known()
    }

    /// Unit of a term in `env`'s file: local lookup for plain chains,
    /// return summary for call chains.
    fn term_unit(&self, term: &Term, env: &Env) -> Option<Unit> {
        if term.is_call {
            self.ret_unit(&term.key)
        } else {
            env.unit_of(&term.key)
        }
    }

    /// True when `term`'s unit was only discoverable interprocedurally:
    /// a call whose callee name carries no suffix but has a workspace
    /// return summary. (`env` lookups and suffixed callees are v1
    /// territory.)
    fn inferred_only(&self, term: &Term) -> bool {
        term.is_call
            && suffix_unit(&term.key).is_none()
            && !self.symbols.by_name(&term.key).is_empty()
    }

    /// One transfer step for caller `c`: push argument units into callee
    /// parameter summaries, recompute `c`'s return summary. Returns the
    /// fns whose inputs changed.
    fn step(&mut self, c: FnId) -> Vec<FnId> {
        let mut changed = Vec::new();
        let env_idx = self.file_of[self.symbols.fns[c].file.as_str()];
        for ci in 0..self.calls[c].len() {
            for ki in 0..self.calls[c][ci].cands.len() {
                let k = self.calls[c][ci].cands[ki];
                for ai in 0..self.calls[c][ci].raw.args.len() {
                    let Some(u) = self.calls[c][ci].raw.args[ai]
                        .as_ref()
                        .and_then(|t| self.term_unit(t, &self.envs[env_idx]))
                    else {
                        continue;
                    };
                    let Some(pi) =
                        param_index(&self.calls[c][ci], &self.symbols.fns[k], ai)
                    else {
                        continue;
                    };
                    if pi < self.state[k].params.len()
                        && self.state[k].params[pi].join(Lattice::Known(u))
                        && !changed.contains(&k)
                    {
                        changed.push(k);
                    }
                }
            }
        }
        let mut ret = Lattice::Unknown;
        for t in &self.rets[c] {
            if let Some(u) = self.term_unit(t, &self.envs[env_idx]) {
                ret.join(Lattice::Known(u));
            }
        }
        if self.state[c].ret.join(ret) {
            for &d in &self.dependents[c] {
                if !changed.contains(&d) {
                    changed.push(d);
                }
            }
        }
        changed
    }
}

/// Contributing call site for an undeclared parameter:
/// (file index, line, inferred unit, argument text).
type ArgSite = (usize, usize, Unit, String);

/// Runs the analysis and reports `unit-flow` findings.
pub fn check(files: &[(SourceFile, Ast)], symbols: &SymbolTable, report: &mut Report) {
    let mut flow = Flow::build(files, symbols);
    let n = symbols.fns.len();
    solve(n, |c| flow.step(c));

    let in_test = |file: &SourceFile, line: usize| {
        file.lines.get(line.saturating_sub(1)).is_some_and(|l| l.in_test)
    };

    // Check 1: argument unit vs declared parameter unit, per call site.
    for c in 0..n {
        let fi = flow.file_of[symbols.fns[c].file.as_str()];
        let (file, _) = &files[fi];
        for call in &flow.calls[c] {
            if in_test(file, call.raw.line) {
                continue;
            }
            for &k in &call.cands {
                let callee = &symbols.fns[k];
                for (ai, term) in call.raw.args.iter().enumerate() {
                    let Some(term) = term else { continue };
                    let Some(u) = flow.term_unit(term, &flow.envs[fi]) else { continue };
                    let Some(pi) = param_index(call, callee, ai) else { continue };
                    let Some(d) = flow.declared[k].get(pi).copied().flatten() else { continue };
                    if d != u {
                        super::emit(
                            file,
                            call.raw.line,
                            super::UNIT_FLOW,
                            format!(
                                "`{}` ({}) flows into parameter `{}` ({}) of `{}`",
                                term.text,
                                u.label(),
                                callee.params[pi],
                                d.label(),
                                callee.name
                            ),
                            vec![Related {
                                file: callee.file.clone(),
                                line: callee.line,
                                message: format!(
                                    "parameter `{}` declared {} here",
                                    callee.params[pi],
                                    d.label()
                                ),
                            }],
                            report,
                        );
                    }
                }
            }
        }
    }

    // Check 2: undeclared parameters inferred to conflicting units.
    // Recollect contributing sites so each one becomes a related location.
    let mut sites: HashMap<(FnId, usize), Vec<ArgSite>> = HashMap::new();
    for c in 0..n {
        let fi = flow.file_of[symbols.fns[c].file.as_str()];
        for call in &flow.calls[c] {
            for &k in &call.cands {
                for (ai, term) in call.raw.args.iter().enumerate() {
                    let Some(term) = term else { continue };
                    let Some(u) = flow.term_unit(term, &flow.envs[fi]) else { continue };
                    let Some(pi) = param_index(call, &symbols.fns[k], ai) else { continue };
                    if pi < symbols.fns[k].arity() {
                        sites
                            .entry((k, pi))
                            .or_default()
                            .push((fi, call.raw.line, u, term.text.clone()));
                    }
                }
            }
        }
    }
    let mut conflicts: Vec<(&(FnId, usize), &Vec<ArgSite>)> =
        sites.iter().filter(|((k, pi), v)| {
            flow.declared[*k].get(*pi).copied().flatten().is_none()
                && !symbols.fns[*k].in_test
                && v.iter().any(|s| s.2 != v[0].2)
        }).collect();
    conflicts.sort_by_key(|((k, pi), _)| (*k, *pi));
    for ((k, pi), contributions) in conflicts {
        let callee = &symbols.fns[*k];
        let fi = flow.file_of[callee.file.as_str()];
        let labels: Vec<&str> = {
            let mut us: Vec<&str> = contributions.iter().map(|s| s.2.label()).collect();
            us.sort_unstable();
            us.dedup();
            us
        };
        let related = contributions
            .iter()
            .map(|(sfi, line, u, text)| Related {
                file: files[*sfi].0.path.clone(),
                line: *line,
                message: format!("`{}` ({}) passed here", text, u.label()),
            })
            .collect();
        super::emit(
            &files[fi].0,
            callee.line,
            super::UNIT_FLOW,
            format!(
                "parameter `{}` of `{}` receives conflicting units ({}) across call sites",
                callee.params[*pi],
                callee.name,
                labels.join(" vs ")
            ),
            related,
            report,
        );
    }

    // Check 3: same-dimension operators whose mix is only visible through
    // an inferred return summary.
    for (fi, (file, ast)) in files.iter().enumerate() {
        struct MixVisitor<'x, 'a> {
            flow: &'x Flow<'a>,
            fi: usize,
            findings: Vec<(usize, String, Vec<Related>)>,
        }
        impl RunVisitor for MixVisitor<'_, '_> {
            fn run(&mut self, nodes: &[Node], _depth: usize) {
                for (i, nd) in nodes.iter().enumerate() {
                    let Some(op) = nd.tok().filter(|t| t.kind == TokKind::Punct) else { continue };
                    if !SAME_DIM_OPS.contains(&op.text.as_str()) {
                        continue;
                    }
                    let Some(lhs) = term_before(nodes, i) else { continue };
                    let Some(rhs) = term_after(nodes, i + 1) else { continue };
                    if !(self.flow.inferred_only(&lhs) || self.flow.inferred_only(&rhs)) {
                        continue; // v1's unit-mix already covers local tags
                    }
                    let env = &self.flow.envs[self.fi];
                    let (Some(lu), Some(ru)) =
                        (self.flow.term_unit(&lhs, env), self.flow.term_unit(&rhs, env))
                    else {
                        continue;
                    };
                    if lu == ru {
                        continue;
                    }
                    let mut related = Vec::new();
                    for t in [&lhs, &rhs] {
                        if self.flow.inferred_only(t) {
                            for &k in self.flow.symbols.by_name(&t.key) {
                                if let Some(u) = self.flow.state[k].ret.known() {
                                    related.push(Related {
                                        file: self.flow.symbols.fns[k].file.clone(),
                                        line: self.flow.symbols.fns[k].line,
                                        message: format!(
                                            "`{}` returns {} (inferred here)",
                                            t.key,
                                            u.label()
                                        ),
                                    });
                                }
                            }
                        }
                    }
                    self.findings.push((
                        op.line,
                        format!(
                            "`{}` ({}) {} `{}` ({}) mixes units inferred across calls",
                            lhs.text,
                            lu.label(),
                            op.text,
                            rhs.text,
                            ru.label()
                        ),
                        related,
                    ));
                }
            }
        }
        let mut v = MixVisitor { flow: &flow, fi, findings: Vec::new() };
        crate::ast::visit::walk_runs(&ast.nodes, &mut v);
        for (line, msg, related) in v.findings {
            if in_test(file, line) {
                continue;
            }
            super::emit(file, line, super::UNIT_FLOW, msg, related, report);
        }
    }
}
