//! `stale-waiver`: waiver and annotation hygiene.
//!
//! Waivers and annotations are load-bearing documentation — a
//! `// audit:allow(no-panic)` that no longer suppresses anything, or an
//! `// audit:atomic(…)` next to code that stopped being atomic, is a lie
//! waiting to mislead the next reader. This pass runs *after* every other
//! rule and flags:
//!
//! - an `audit:allow(<rule>)` waiver that no finding of `<rule>` resolves
//!   through (on its line or the line below);
//! - an `audit:allow(<rule>)` naming a rule id the pass does not have;
//! - an `audit:unit(<tag>)` annotation that binds no identifier;
//! - an `audit:atomic(<contract>)` annotation with no atomic operation on
//!   its line or the line below;
//! - an `audit:transient(<reason>)` annotation with no `snapshot-complete`
//!   finding on its line or the line below — the field it once excused is
//!   now covered (or was never part of an indexed snapshot type);
//! - an `audit:ordered(<contract>)` annotation with no `nondet-reach`
//!   finding on its line or the line below.
//!
//! Staleness is itself waivable — `audit:allow(stale-waiver)` on a waiver
//! kept deliberately (e.g. documenting a rule that fires only on some
//! platforms). That makes usage *depend on the pass's own findings*, so
//! the check iterates to a fixpoint: each round recomputes which waivers
//! are used given the findings of the previous round, until the finding
//! set stabilizes. `stale-waiver` waivers themselves are exempt from
//! staleness (a self-justifying waiver would oscillate forever — see the
//! `self_waiver_does_not_oscillate` test).

use std::collections::HashSet;

use crate::ast::Ast;
use crate::report::Report;
use crate::scan::SourceFile;
use crate::semantic::{atomic, units};
use crate::Violation;

/// One declared waiver site: file index, 0-based line index, rule id.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WaiverSite {
    file: usize,
    line_idx: usize,
    rule: String,
}

/// Computes which declared waivers are *used* by the given findings: a
/// waived violation at 1-based line L resolves through a waiver on line
/// index L-1 or L-2 (same resolution order as [`SourceFile::waived`]).
fn used_waivers<'a>(
    files: &[(SourceFile, Ast)],
    findings: impl Iterator<Item = &'a Violation>,
) -> HashSet<WaiverSite> {
    let mut used = HashSet::new();
    for v in findings.filter(|v| v.waived) {
        let Some(file) = files.iter().position(|(f, _)| f.path == v.file) else { continue };
        let lines = &files[file].0.lines;
        let has = |idx: usize| {
            lines.get(idx).is_some_and(|l| l.waivers.iter().any(|w| w == v.rule))
        };
        let idx = v.line.saturating_sub(1);
        if has(idx) {
            used.insert(WaiverSite { file, line_idx: idx, rule: v.rule.to_string() });
        } else if idx > 0 && has(idx - 1) {
            used.insert(WaiverSite { file, line_idx: idx - 1, rule: v.rule.to_string() });
        }
    }
    used
}

/// Runs the pass and appends `stale-waiver` findings to `report`.
/// `known_rules` is the full rule-id vocabulary ([`crate::ALL_RULES`]).
pub fn check(files: &[(SourceFile, Ast)], known_rules: &[&str], report: &mut Report) {
    // Annotation hygiene is independent of waiver usage: compute once.
    let mut base: Vec<Violation> = Vec::new();
    for (file, ast) in files {
        for issue in build_unit_issues(ast) {
            base.push(finding(
                file,
                issue.line,
                format!("`audit:unit({})` does not cover any binding", issue.tag),
            ));
        }
        let ops = atomic::op_lines(ast);
        for c in &ast.comments {
            if crate::ast::annotation_payload(&c.text, "audit:atomic(").is_none() {
                continue;
            }
            if !ops.iter().any(|&l| l == c.line || l == c.line + 1) {
                base.push(finding(
                    file,
                    c.line,
                    "`audit:atomic(…)` annotation with no atomic operation on its line \
                     or the line below"
                        .to_string(),
                ));
            }
        }
        // Field-coverage and ordering annotations are earned by the
        // findings they waive: an annotation with no finding of its rule
        // on its line or the line below excuses nothing and is stale.
        // (The covered finding may itself be unwaived — an empty-reason
        // annotation — in which case that finding already carries the
        // signal and staleness stays quiet.)
        for (needle, rule, syntax) in [
            ("audit:transient(", super::SNAPSHOT_COMPLETE, "audit:transient(…)"),
            ("audit:ordered(", super::NONDET_REACH, "audit:ordered(…)"),
        ] {
            for c in &ast.comments {
                if crate::ast::annotation_payload(&c.text, needle).is_none() {
                    continue;
                }
                let covers = report.violations.iter().any(|v| {
                    v.rule == rule
                        && v.file == file.path
                        && (v.line == c.line || v.line == c.line + 1)
                });
                if !covers {
                    base.push(finding(
                        file,
                        c.line,
                        format!(
                            "`{syntax}` annotation with no `{rule}` finding on its line \
                             or the line below; delete the stale annotation"
                        ),
                    ));
                }
            }
        }
    }

    // Declared waivers, except `stale-waiver` ones (exempt from
    // staleness to keep the fixpoint well-founded).
    let mut declared: Vec<WaiverSite> = Vec::new();
    for (fi, (file, _)) in files.iter().enumerate() {
        for (idx, line) in file.lines.iter().enumerate() {
            for rule in &line.waivers {
                if rule != super::STALE_WAIVER {
                    declared.push(WaiverSite { file: fi, line_idx: idx, rule: rule.clone() });
                }
            }
        }
    }

    // Fixpoint over waiver usage: `audit:allow(stale-waiver)` waivers are
    // used exactly when they suppress one of this pass's own findings.
    let mut extra: Vec<Violation> = Vec::new();
    for _round in 0..4 {
        let used = used_waivers(
            files,
            report.violations.iter().chain(&base).chain(&extra),
        );
        let mut next = Vec::new();
        for site in &declared {
            let (file, _) = &files[site.file];
            if !known_rules.contains(&site.rule.as_str()) {
                next.push(finding(
                    file,
                    site.line_idx + 1,
                    format!("`audit:allow({})` names an unknown rule id", site.rule),
                ));
            } else if !used.contains(site) {
                next.push(finding(
                    file,
                    site.line_idx + 1,
                    format!(
                        "`audit:allow({})` suppresses no finding; delete the stale waiver",
                        site.rule
                    ),
                ));
            }
        }
        if next == extra {
            break;
        }
        extra = next;
    }

    for v in base.into_iter().chain(extra) {
        report.push(v);
    }
}

/// Builds a `stale-waiver` violation at a 1-based line, resolving its own
/// waiver status.
fn finding(file: &SourceFile, line: usize, message: String) -> Violation {
    Violation {
        file: file.path.clone(),
        line,
        rule: super::STALE_WAIVER,
        message,
        waived: file.waived(line.saturating_sub(1), super::STALE_WAIVER),
        related: Vec::new(),
    }
}

/// Unbound `audit:unit` annotations of one file.
fn build_unit_issues(ast: &Ast) -> Vec<units::EnvIssue> {
    let (_, issues) = units::build_env(ast);
    issues.into_iter().filter(|i| !i.unknown_tag).collect()
}
