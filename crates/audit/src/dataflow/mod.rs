//! Interprocedural dataflow engine (v3 + v4).
//!
//! The per-file engines ([`crate::rules`], [`crate::semantic`]) see one
//! file at a time. This module layers whole-workspace analyses on top of
//! the same AST: a function [`symbols::SymbolTable`] and
//! [`callgraph::CallGraph`] feed a generic [`fixpoint`] worklist solver,
//! and five analyses ride on them:
//!
//! - [`unitflow`] (`unit-flow`) — propagates kWh / kW / USD tags through
//!   parameters and returns, catching cross-unit arithmetic and
//!   mis-unitted arguments any number of calls away from an annotation;
//! - [`hotreach`] (`hot-path-reach`) — walks the call graph from every
//!   call inside an `audit:hot-path` region and flags transitively
//!   reachable allocation, locking, and IO, with the call chain attached
//!   as related locations;
//! - [`snapshot`] (`snapshot-complete`) — cross-checks every struct's
//!   declared fields against its snapshot/restore pair, so no run state
//!   is silently lost or left stale across crash-resume; non-checkpointed
//!   fields are declared `// audit:transient(<reason>)`;
//! - [`nondet`] (`nondet-reach`) — walks the call graph from
//!   state-affecting roots (engine stepping, checkpointing, serializers,
//!   batch orchestration) and flags reachable hash-ordered iteration,
//!   wall-clock reads, and channel receives, waivable sink-by-sink with
//!   `// audit:ordered(<contract>)`;
//! - [`hygiene`] (`stale-waiver`) — flags waivers and annotations that no
//!   longer suppress or tag anything, iterating because staleness
//!   findings are themselves waivable.
//!
//! These run only in the multi-file driver ([`crate::lint_sources`]);
//! single-file entry points keep their per-file semantics. Resolution is
//! name/arity-based with no type inference — `DESIGN.md` §14 and §18
//! spell out the soundness caveats.

pub mod callgraph;
pub mod fixpoint;
pub mod hotreach;
pub mod hygiene;
pub mod nondet;
pub mod snapshot;
pub mod symbols;
pub mod unitflow;

use crate::ast::Ast;
use crate::report::{Related, Report, Violation};
use crate::scan::SourceFile;

/// Rule id: cross-unit flow through function parameters or returns.
pub const UNIT_FLOW: &str = "unit-flow";
/// Rule id: hot-path region transitively reaches allocation/locking/IO.
pub const HOT_PATH_REACH: &str = "hot-path-reach";
/// Rule id: snapshot/restore pair missing a declared field.
pub const SNAPSHOT_COMPLETE: &str = "snapshot-complete";
/// Rule id: state-affecting path reaches a nondeterminism source.
pub const NONDET_REACH: &str = "nondet-reach";
/// Rule id: waiver or annotation that no longer does anything.
pub const STALE_WAIVER: &str = "stale-waiver";

/// Runs every interprocedural analysis over the parsed workspace.
/// `report` must already contain the per-file findings — the hygiene pass
/// runs last and reads them (including `snapshot-complete` and
/// `nondet-reach` findings) to decide which waivers and annotations are
/// still earning their keep.
pub fn apply_all(files: &[(SourceFile, Ast)], report: &mut Report) {
    let symbols = symbols::SymbolTable::build(files);
    let graph = callgraph::CallGraph::build(&symbols);
    unitflow::check(files, &symbols, report);
    hotreach::check(files, &symbols, &graph, report);
    snapshot::check(files, &symbols, report);
    nondet::check(files, &symbols, &graph, report);
    hygiene::check(files, crate::ALL_RULES, report);
}

/// Records a finding with related locations, resolving waiver status
/// through the line data. Exact duplicates (same file/line/rule/message)
/// are dropped — tolerant call resolution can discover the same defect
/// through several candidate edges.
pub(crate) fn emit(
    file: &SourceFile,
    line: usize,
    rule: &'static str,
    message: String,
    related: Vec<Related>,
    report: &mut Report,
) {
    let dup = report
        .violations
        .iter()
        .any(|v| v.file == file.path && v.line == line && v.rule == rule && v.message == message);
    if dup {
        return;
    }
    report.push(Violation {
        file: file.path.clone(),
        line,
        rule,
        message,
        waived: file.waived(line.saturating_sub(1), rule),
        related,
    });
}
