//! AST engine for the semantic lint rules.
//!
//! The registry-less build environment rules out `syn`, so this module is
//! the workspace's own substitute, scoped to what a linter needs:
//!
//! * [`lexer`] — a tolerant, span-tracking lexer whose comments survive as
//!   trivia (the semantic rules read `audit:…(…)` annotations from them);
//! * [`tree`] — balanced token trees over the token stream;
//! * [`visit`] — the run visitor and the expression-level pattern helpers
//!   (method calls, argument splitting, statement bounds, operand terms)
//!   every semantic rule builds on.
//!
//! Compared to the line pass in [`crate::scan`], rules written against
//! this layer see *structure*: a `compare_exchange` call knows its
//! argument list even when it spans four lines, and a `+` knows its
//! operands even through field chains and calls. The two layers coexist —
//! the original line rules still run against [`crate::scan::SourceFile`],
//! and each parsed [`Ast`] carries a reference back to the same text via
//! line numbers, so waivers and `#[cfg(test)]` regions resolve uniformly.

pub mod lexer;
pub mod tree;
pub mod visit;

pub use lexer::{Comment, TokKind, Token};
pub use tree::{Delim, Group, Node};

/// One parsed source file: token forest plus comment trivia.
#[derive(Debug)]
pub struct Ast {
    /// Workspace-relative path, used in reports.
    pub path: String,
    /// Top-level token forest.
    pub nodes: Vec<Node>,
    /// Comment trivia in source order.
    pub comments: Vec<Comment>,
}

impl Ast {
    /// Parses `text`. Never fails — unlexable regions degrade to puncts
    /// and imbalanced brackets are recovered (see [`tree::build`]).
    pub fn parse(path: &str, text: &str) -> Self {
        let (tokens, comments) = lexer::lex(text);
        Ast { path: path.to_string(), nodes: tree::build(tokens), comments }
    }

    /// Looks up an `audit:<key>(<payload>)` annotation covering `line`
    /// (1-based): on the line itself or the line immediately above —
    /// the same placement convention as `audit:allow` waivers. Returns
    /// the payload text, trimmed (possibly empty for `audit:key()`).
    ///
    /// The annotation must *start* the comment (after the comment
    /// leader), like the hot-path region markers — so doc prose that
    /// merely mentions the syntax cannot bind or satisfy anything.
    pub fn annotation(&self, line: usize, key: &str) -> Option<String> {
        let needle = format!("audit:{key}(");
        self.comments
            .iter()
            .filter(|c| c.line == line || c.line + 1 == line)
            .find_map(|c| {
                let rest = annotation_payload(&c.text, &needle)?;
                let end = rest.find(')')?;
                Some(rest[..end].trim().to_string())
            })
    }
}

/// Strips the comment leader and returns the text after `needle` when the
/// comment *starts* with it.
pub(crate) fn annotation_payload<'a>(comment: &'a str, needle: &str) -> Option<&'a str> {
    comment.trim_start_matches(['/', '*', '!']).trim_start().strip_prefix(needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_same_line_and_line_above() {
        let src = "\
// audit:unit(kwh)
let battery = 0.0;
let x = 1; // audit:atomic(single cell)
";
        let ast = Ast::parse("x.rs", src);
        assert_eq!(ast.annotation(2, "unit").as_deref(), Some("kwh"));
        assert_eq!(ast.annotation(3, "atomic").as_deref(), Some("single cell"));
        assert_eq!(ast.annotation(2, "atomic"), None);
        assert_eq!(ast.annotation(1, "unit").as_deref(), Some("kwh"));
    }

    #[test]
    fn empty_annotation_payload_is_distinguishable() {
        let ast = Ast::parse("x.rs", "x.load(o); // audit:atomic()\n");
        assert_eq!(ast.annotation(1, "atomic").as_deref(), Some(""));
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_an_annotation() {
        let src = "// docs explain the audit:atomic(contract) convention\nx.load(o);\n";
        let ast = Ast::parse("x.rs", src);
        assert_eq!(ast.annotation(2, "atomic"), None);
    }
}
