//! Span-tracking lexer for one Rust source file.
//!
//! Unlike the line-oriented sanitizer in [`crate::scan`], this pass
//! produces a real token stream: every token carries its 1-based line and
//! column, and comments are kept as *trivia* (with their own lines) rather
//! than blanked — the semantic rules read `audit:unit(...)` /
//! `audit:atomic(...)` annotations out of them. The lexer is deliberately
//! tolerant: it never fails, and anything it cannot classify becomes a
//! one-character punctuation token. That is the right trade-off for a
//! linter — a garbled region degrades to "no findings there", not a crash.

/// Token classification. Just enough structure for the semantic rules;
/// no keyword table (rules match identifier text directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`self`, `let`, `fetch_add`, …).
    Ident,
    /// Lifetime (`'a`) — kept distinct so it cannot be confused with a
    /// char literal.
    Lifetime,
    /// Integer or float literal, including suffixed forms (`1.5e-6f64`).
    Number,
    /// String / raw-string / byte-string literal (text is the full
    /// literal including quotes).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Punctuation; multi-character operators the rules care about are
    /// glued (`::`, `->`, `=>`, `==`, `!=`, `<=`, `>=`, `&&`, `||`,
    /// `..=`, `..`, and the compound assignments `+=` `-=` `*=` `/=`).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Exact source text.
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column (in characters) of the first character.
    pub col: usize,
}

impl Token {
    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Column just past the last character (for adjacency checks).
    pub fn end_col(&self) -> usize {
        self.col + self.text.chars().count()
    }
}

/// One comment, kept as trivia. Block comments spanning several lines are
/// recorded at their *starting* line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the leader (`// …` or `/* … */`).
    pub text: String,
    /// 1-based line of the first character.
    pub line: usize,
}

/// Operators glued into a single punct token, longest first.
const GLUED: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-=", "*=", "/=",
];

/// Lexes `text` into tokens plus comment trivia. Never fails.
// One flat scan loop on purpose: splitting it would thread the line/col
// bookkeeping and the shared cursor through every helper.
#[allow(clippy::cognitive_complexity)]
pub fn lex(text: &str) -> (Vec<Token>, Vec<Comment>) {
    let chars: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    // Advances past `n` characters, updating line/col bookkeeping.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if chars[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment (also covers `///` and `//!` docs).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                bump!(1);
            }
            comments.push(Comment { text: chars[start..i].iter().collect(), line: tline });
            continue;
        }

        // Block comment, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let mut depth = 0u32;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!(1);
                }
            }
            comments.push(Comment { text: chars[start..i].iter().collect(), line: tline });
            continue;
        }

        // Raw / byte strings: r"…", r#"…"#, b"…", br#"…"#.
        if matches!(c, 'r' | 'b') {
            if let Some(len) = raw_or_byte_string_len(&chars, i) {
                let text: String = chars[i..i + len].iter().collect();
                bump!(len);
                toks.push(Token { kind: TokKind::Str, text, line: tline, col: tcol });
                continue;
            }
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                bump!(1);
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Number literal.
        if c.is_ascii_digit() {
            let len = number_len(&chars, i);
            let text: String = chars[i..i + len].iter().collect();
            bump!(len);
            toks.push(Token { kind: TokKind::Number, text, line: tline, col: tcol });
            continue;
        }

        // Ordinary string.
        if c == '"' {
            let len = quoted_len(&chars, i, '"');
            let text: String = chars[i..i + len].iter().collect();
            bump!(len);
            toks.push(Token { kind: TokKind::Str, text, line: tline, col: tcol });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(len) = char_literal_len(&chars, i) {
                let text: String = chars[i..i + len].iter().collect();
                bump!(len);
                toks.push(Token { kind: TokKind::Char, text, line: tline, col: tcol });
            } else {
                // Lifetime: `'` + identifier.
                let start = i;
                bump!(1);
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    bump!(1);
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Glued multi-character operator.
        if let Some(op) = GLUED.iter().find(|op| {
            op.chars().enumerate().all(|(k, oc)| chars.get(i + k) == Some(&oc))
        }) {
            bump!(op.chars().count());
            toks.push(Token {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Single-character punct (fallback for anything else).
        bump!(1);
        toks.push(Token { kind: TokKind::Punct, text: c.to_string(), line: tline, col: tcol });
    }

    (toks, comments)
}

/// Length of a raw/byte string literal starting at `i`, if one starts
/// there (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `br"…"`).
fn raw_or_byte_string_len(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    // Plain `b"…"` is an escaped string; `r…` ends at `"` + hashes.
    if !raw {
        if j == i {
            return None; // plain `"` handled elsewhere
        }
        return Some(j - i + quoted_len(chars, j, '"'));
    }
    j += 1;
    while j < chars.len() {
        if chars[j] == '"' && (0..hashes).all(|k| chars.get(j + 1 + k) == Some(&'#')) {
            return Some(j + 1 + hashes - i);
        }
        j += 1;
    }
    Some(chars.len() - i)
}

/// Length of an escape-aware quoted literal starting at `i` (which must be
/// the opening quote).
fn quoted_len(chars: &[char], i: usize, quote: char) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            c if c == quote => return j + 1 - i,
            _ => j += 1,
        }
    }
    chars.len() - i
}

/// Length of a char literal starting at the `'` at `i`, or `None` when the
/// quote starts a lifetime instead.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char; scan to the closing quote (covers `\u{…}`).
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then_some(j + 1 - i)
        }
        c if c.is_alphanumeric() || *c == '_' => {
            // `'a'` is a char only when immediately closed; `'a` (no
            // close) is a lifetime.
            (chars.get(i + 2) == Some(&'\'')).then_some(3)
        }
        '\'' => None, // `''` — malformed; let punct fallback eat it
        _ => {
            // Punctuation char literal like `'('`.
            (chars.get(i + 2) == Some(&'\'')).then_some(3)
        }
    }
}

/// Length of a number literal starting at the digit at `i`: integer part,
/// optional fraction (not a `..` range, not a method call `1.max`),
/// optional exponent, optional type suffix, hex/octal/binary forms.
fn number_len(chars: &[char], i: usize) -> usize {
    let mut j = i;
    let digit_run = |chars: &[char], mut k: usize, hex: bool| {
        while k < chars.len()
            && (chars[k].is_ascii_digit()
                || chars[k] == '_'
                || (hex && chars[k].is_ascii_hexdigit()))
        {
            k += 1;
        }
        k
    };
    let hex = chars.get(j) == Some(&'0')
        && matches!(chars.get(j + 1), Some('x' | 'X' | 'o' | 'b'));
    if hex {
        j = digit_run(chars, j + 2, true);
        // Type suffix (`0xFFu64`) is consumed by the hexdigit run already
        // for hex; consume any remaining ident chars.
        while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return j - i;
    }
    j = digit_run(chars, j, false);
    if chars.get(j) == Some(&'.') {
        let after = chars.get(j + 1).copied();
        let is_range = after == Some('.');
        let is_method = after.is_some_and(|c| c.is_alphabetic() || c == '_');
        if !is_range && !is_method {
            j = digit_run(chars, j + 1, false);
        }
    }
    if matches!(chars.get(j), Some('e' | 'E')) {
        let mut k = j + 1;
        if matches!(chars.get(k), Some('+' | '-')) {
            k += 1;
        }
        if chars.get(k).is_some_and(char::is_ascii_digit) {
            j = digit_run(chars, k, false);
        }
    }
    // Type suffix: `1f64`, `3usize`.
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    j - i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_glued_puncts() {
        let toks = kinds("let x = a.fetch_add(1, Ordering::Relaxed);");
        assert!(toks.contains(&(TokKind::Ident, "fetch_add".into())));
        assert!(toks.contains(&(TokKind::Punct, "::".into())));
        assert!(toks.contains(&(TokKind::Number, "1".into())));
    }

    #[test]
    fn float_literals_ranges_and_method_calls() {
        assert!(kinds("1.5e-6f64").contains(&(TokKind::Number, "1.5e-6f64".into())));
        let range = kinds("0..n");
        assert!(range.contains(&(TokKind::Number, "0".into())));
        assert!(range.contains(&(TokKind::Punct, "..".into())));
        let method = kinds("3.max(k)");
        assert!(method.contains(&(TokKind::Number, "3".into())));
        assert!(method.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn comments_are_trivia_with_lines() {
        let (toks, comments) = lex("let a = 1; // audit:atomic(contract)\nb();\n");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.contains("audit:atomic(contract)"));
        assert!(toks.iter().any(|t| t.is_ident("b") && t.line == 2));
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let toks = kinds("let s = \"a.unwrap() / b\"; let q = '\"'; f();");
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "'\"'"));
        assert!(toks.iter().any(|(_, t)| t == "f"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) {}");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
    }

    #[test]
    fn raw_strings_span_hash_fences() {
        let toks = kinds("let s = r#\"panic! \"inner\" \"#; g();");
        assert!(!toks.iter().any(|(_, t)| t == "panic"));
        assert!(toks.iter().any(|(_, t)| t == "g"));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let (toks, _) = lex("ab\n  cd");
        let cd = toks.iter().find(|t| t.is_ident("cd")).unwrap();
        assert_eq!((cd.line, cd.col), (2, 3));
        assert_eq!(cd.end_col(), 5);
    }
}
