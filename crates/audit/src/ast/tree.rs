//! Balanced token trees over the lexer's token stream.
//!
//! Brackets (`()`, `[]`, `{}`) nest into [`Group`]s; everything else stays
//! a leaf token. The builder is tolerant of imbalance (a truncated or
//! macro-mangled file closes whatever is open at EOF and drops stray
//! closers) — a linter must degrade, not die.

use super::lexer::{TokKind, Token};

/// Bracket family of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

impl Delim {
    fn open(c: &str) -> Option<Self> {
        match c {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }

    fn close(c: &str) -> Option<Self> {
        match c {
            ")" => Some(Delim::Paren),
            "]" => Some(Delim::Bracket),
            "}" => Some(Delim::Brace),
            _ => None,
        }
    }
}

/// A bracketed group with its children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Bracket family.
    pub delim: Delim,
    /// 1-based line of the opening bracket.
    pub line: usize,
    /// 1-based column of the opening bracket.
    pub col: usize,
    /// Child nodes in source order.
    pub children: Vec<Node>,
}

/// One node of the token tree: a leaf token or a bracketed group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Non-bracket token.
    Tok(Token),
    /// Bracketed group.
    Group(Group),
}

impl Node {
    /// The leaf token, if this node is one.
    pub fn tok(&self) -> Option<&Token> {
        match self {
            Node::Tok(t) => Some(t),
            Node::Group(_) => None,
        }
    }

    /// The group, if this node is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Node::Group(g) => Some(g),
            Node::Tok(_) => None,
        }
    }

    /// 1-based line of the node's first character.
    pub fn line(&self) -> usize {
        match self {
            Node::Tok(t) => t.line,
            Node::Group(g) => g.line,
        }
    }

    /// True for a leaf punct with this exact text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.tok().is_some_and(|t| t.is_punct(text))
    }

    /// True for a leaf identifier with this exact text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.tok().is_some_and(|t| t.is_ident(text))
    }

    /// Identifier text, if this node is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self.tok() {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }
}

/// Open-group frame: header (`None` only for the bottom-level forest)
/// plus the children collected so far.
type Frame = (Option<(Delim, usize, usize)>, Vec<Node>);

/// Builds the token forest from a flat token stream.
pub fn build(tokens: Vec<Token>) -> Vec<Node> {
    // Stack of open groups; the bottom Vec is the top-level forest.
    let mut stack: Vec<Frame> = vec![(None, Vec::new())];
    for tok in tokens {
        if tok.kind == TokKind::Punct {
            if let Some(d) = Delim::open(&tok.text) {
                stack.push((Some((d, tok.line, tok.col)), Vec::new()));
                continue;
            }
            if Delim::close(&tok.text).is_some() {
                // Close the innermost group, keeping its opening delim
                // even on mismatch (recovery); on empty stack drop the
                // stray closer.
                if stack.len() > 1 {
                    let (header, children) = stack.pop().expect("len checked");
                    let (delim, line, col) = header.expect("non-bottom frame has a header");
                    stack
                        .last_mut()
                        .expect("bottom frame remains")
                        .1
                        .push(Node::Group(Group { delim, line, col, children }));
                }
                continue;
            }
        }
        stack.last_mut().expect("stack never empty").1.push(Node::Tok(tok));
    }
    // Close anything left open at EOF, innermost first.
    while stack.len() > 1 {
        let (header, children) = stack.pop().expect("len checked");
        let (delim, line, col) = header.expect("non-bottom frame has a header");
        stack
            .last_mut()
            .expect("bottom frame remains")
            .1
            .push(Node::Group(Group { delim, line, col, children }));
    }
    stack.pop().expect("bottom frame").1
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn forest(src: &str) -> Vec<Node> {
        build(lex(src).0)
    }

    #[test]
    fn groups_nest() {
        let f = forest("fn f(a: u8) { g(a); }");
        // fn, f, (…), {…}
        assert!(f[0].is_ident("fn"));
        assert_eq!(f[2].group().unwrap().delim, Delim::Paren);
        let body = f[3].group().unwrap();
        assert_eq!(body.delim, Delim::Brace);
        assert!(body.children[0].is_ident("g"));
        assert_eq!(body.children[1].group().unwrap().delim, Delim::Paren);
    }

    #[test]
    fn imbalance_recovers() {
        // Unclosed brace and a stray closer both survive.
        let f = forest("fn f() { g(");
        assert!(!f.is_empty());
        let g = forest(") x");
        assert!(g.iter().any(|n| n.is_ident("x")));
    }

    #[test]
    fn group_records_open_position() {
        let f = forest("a\n  (b)");
        let g = f[1].group().unwrap();
        assert_eq!((g.line, g.col), (2, 3));
    }
}
