//! Visitor infrastructure shared by the semantic rules.
//!
//! The central shape is the **run**: one group's children (or the
//! top-level forest) as a flat slice of [`Node`]s. Every expression-level
//! pattern the rules match — a method call, a binary operator, a statement
//! boundary — is local to a run, so a rule implements [`RunVisitor`] and
//! receives every run in the file exactly once, depth-first.

use super::lexer::TokKind;
use super::tree::{Delim, Group, Node};

/// A rule's hook: called once per run (sibling slice), outermost first.
pub trait RunVisitor {
    /// Inspects one run. `depth` is the group-nesting depth (0 = file
    /// top level).
    fn run(&mut self, nodes: &[Node], depth: usize);
}

/// Walks every run of the forest depth-first, calling `v.run` on each.
pub fn walk_runs(nodes: &[Node], v: &mut dyn RunVisitor) {
    fn inner(nodes: &[Node], depth: usize, v: &mut dyn RunVisitor) {
        v.run(nodes, depth);
        for n in nodes {
            if let Node::Group(g) = n {
                inner(&g.children, depth + 1, v);
            }
        }
    }
    inner(nodes, 0, v);
}

/// A `recv.name(args)` site found in a run.
#[derive(Debug)]
pub struct MethodCall<'a> {
    /// Index of the `.` token in the run.
    pub dot_idx: usize,
    /// Index where the receiver chain starts (see [`find_method_calls`]).
    pub recv_start: usize,
    /// Method name.
    pub name: &'a str,
    /// 1-based line of the method-name token.
    pub line: usize,
    /// Argument group.
    pub args: &'a Group,
    /// Index of the node *after* the argument group (== run length when
    /// the call ends the run).
    pub after_idx: usize,
}

/// Finds every `recv . name ( … )` pattern in one run. The receiver chain
/// extends left over identifiers, `.`/`::` separators, and postfix groups
/// (`xs[i].load(…)`, `f().store(…)`).
pub fn find_method_calls<'a>(run: &'a [Node]) -> Vec<MethodCall<'a>> {
    let mut out = Vec::new();
    for i in 0..run.len() {
        if !run[i].is_punct(".") {
            continue;
        }
        let Some(name_tok) = run.get(i + 1).and_then(Node::tok) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let Some(args) = run.get(i + 2).and_then(Node::group) else { continue };
        if args.delim != Delim::Paren {
            continue;
        }
        let mut start = i;
        while start > 0 {
            let prev = &run[start - 1];
            let chains = prev.ident().is_some()
                || prev.is_punct(".")
                || prev.is_punct("::")
                || matches!(prev, Node::Group(g) if g.delim != Delim::Brace);
            if chains {
                start -= 1;
            } else {
                break;
            }
        }
        out.push(MethodCall {
            dot_idx: i,
            recv_start: start,
            name: &name_tok.text,
            line: name_tok.line,
            args,
            after_idx: i + 3,
        });
    }
    out
}

/// Splits a group's children on top-level commas (argument lists).
pub fn split_commas(g: &Group) -> Vec<&[Node]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, n) in g.children.iter().enumerate() {
        if n.is_punct(",") {
            out.push(&g.children[start..i]);
            start = i + 1;
        }
    }
    out.push(&g.children[start..]);
    if out.last().is_some_and(|s| s.is_empty()) && out.len() > 1 {
        out.pop(); // trailing comma
    }
    out
}

/// Index of the first node of the statement containing `idx`: the node
/// after the previous top-level `;` (or 0).
pub fn stmt_start(run: &[Node], idx: usize) -> usize {
    (0..idx).rev().find(|&k| run[k].is_punct(";")).map_or(0, |k| k + 1)
}

/// A value *term* adjacent to a binary operator: the longest
/// ident/`.`/`::`/postfix-group chain, e.g. `self.battery_kwh`,
/// `cost_usd(x)`, `xs[i]`.
#[derive(Debug, PartialEq, Eq)]
pub struct Term {
    /// Last identifier of the chain that names a *value* (the identifier
    /// before a call's argument group, or the final field/binding name).
    pub key: String,
    /// Rendered chain for diagnostics.
    pub text: String,
    /// True when the chain ends in a call's argument parentheses
    /// (`cost(x)`, `self.energy()`): `key` then names the callee, and
    /// interprocedural analyses may consult its return summary.
    pub is_call: bool,
}

/// Scans the term ending just before `idx` (exclusive) in the run.
pub fn term_before(run: &[Node], idx: usize) -> Option<Term> {
    let mut start = idx;
    while start > 0 {
        let prev = &run[start - 1];
        let chains = prev.ident().is_some()
            || prev.is_punct(".")
            || prev.is_punct("::")
            || prev.tok().is_some_and(|t| t.kind == TokKind::Number)
            || matches!(prev, Node::Group(g) if g.delim != Delim::Brace);
        if chains {
            start -= 1;
        } else {
            break;
        }
    }
    (start < idx).then(|| make_term(&run[start..idx]))
}

/// Scans the term starting at `idx` in the run.
pub fn term_after(run: &[Node], idx: usize) -> Option<Term> {
    let mut end = idx;
    // Allow a leading unary borrow/deref/negation.
    while run.get(end).is_some_and(|n| n.is_punct("&") || n.is_punct("*") || n.is_punct("-")) {
        end += 1;
    }
    let first = end;
    while let Some(n) = run.get(end) {
        let chains = n.ident().is_some()
            || n.is_punct(".")
            || n.is_punct("::")
            || n.tok().is_some_and(|t| t.kind == TokKind::Number)
            || matches!(n, Node::Group(g) if g.delim != Delim::Brace);
        if chains {
            end += 1;
        } else {
            break;
        }
    }
    (end > first).then(|| make_term(&run[first..end]))
}

/// The term covering the *entire* run, or `None` when the run holds more
/// than a single chain (an arithmetic expression, a block, a cast).
/// Call-argument slices attribute a unit only when the whole argument is
/// one term — `f(a_kwh)` carries kWh, `f(a_kwh * r)` carries nothing.
pub fn term_spanning(run: &[Node]) -> Option<Term> {
    let mut end = 0;
    // Allow a leading unary borrow/deref/negation.
    while run.get(end).is_some_and(|n| n.is_punct("&") || n.is_punct("*") || n.is_punct("-")) {
        end += 1;
    }
    let first = end;
    while let Some(n) = run.get(end) {
        let chains = n.ident().is_some()
            || n.is_punct(".")
            || n.is_punct("::")
            || n.tok().is_some_and(|t| t.kind == TokKind::Number)
            || matches!(n, Node::Group(g) if g.delim != Delim::Brace);
        if chains {
            end += 1;
        } else {
            break;
        }
    }
    (end == run.len() && end > first).then(|| make_term(&run[first..end]))
}

/// Builds a [`Term`] from a chain slice.
fn make_term(chain: &[Node]) -> Term {
    let mut text = String::new();
    for n in chain {
        match n {
            Node::Tok(t) => text.push_str(&t.text),
            Node::Group(g) => {
                let (o, c) = match g.delim {
                    Delim::Paren => ('(', ')'),
                    Delim::Bracket => ('[', ']'),
                    Delim::Brace => ('{', '}'),
                };
                text.push(o);
                if !g.children.is_empty() {
                    text.push('…');
                }
                text.push(c);
            }
        }
    }
    // The value-naming identifier: last ident leaf in the chain (a call
    // `cost_usd(x)` names `cost_usd`; a field chain `self.q` names `q`;
    // an index `xs[i]` names `xs`).
    let key = chain
        .iter()
        .rev()
        .find_map(Node::ident)
        .unwrap_or_default()
        .to_string();
    let is_call = matches!(chain.last(), Some(Node::Group(g)) if g.delim == Delim::Paren)
        && chain.len() >= 2
        && chain[chain.len() - 2].ident().is_some();
    Term { key, text, is_call }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::super::tree::build;
    use super::*;

    fn forest(src: &str) -> Vec<Node> {
        build(lex(src).0)
    }

    #[test]
    fn walk_visits_every_run() {
        struct Count(usize);
        impl RunVisitor for Count {
            fn run(&mut self, _: &[Node], _: usize) {
                self.0 += 1;
            }
        }
        let f = forest("fn f(a: u8) { g(a); }");
        let mut c = Count(0);
        walk_runs(&f, &mut c);
        // top level + param parens + body + call parens
        assert_eq!(c.0, 4);
    }

    #[test]
    fn method_calls_found_with_receiver_chains() {
        let f = forest("self.bits.compare_exchange(a, b, x, y);");
        let calls = find_method_calls(&f);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "compare_exchange");
        assert_eq!(calls[0].recv_start, 0);
        assert_eq!(split_commas(calls[0].args).len(), 4);
    }

    #[test]
    fn stmt_start_respects_semicolons() {
        let f = forest("a(); b.c();");
        let calls = find_method_calls(&f);
        let bc = calls.iter().find(|c| c.name == "c").unwrap();
        assert_eq!(stmt_start(&f, bc.recv_start), 3);
    }

    #[test]
    fn terms_extract_value_keys() {
        let f = forest("x = self.total_usd + energy_kwh;");
        let plus = f.iter().position(|n| n.is_punct("+")).unwrap();
        assert_eq!(term_before(&f, plus).unwrap().key, "total_usd");
        assert_eq!(term_after(&f, plus + 1).unwrap().key, "energy_kwh");
        let g = forest("a + cost_usd(x)");
        let plus = g.iter().position(|n| n.is_punct("+")).unwrap();
        assert_eq!(term_after(&g, plus + 1).unwrap().key, "cost_usd");
    }

    #[test]
    fn terms_mark_calls() {
        let f = forest("a + cost(x)");
        let plus = f.iter().position(|n| n.is_punct("+")).unwrap();
        assert!(term_after(&f, plus + 1).unwrap().is_call);
        let g = forest("a + self.total_usd");
        let plus = g.iter().position(|n| n.is_punct("+")).unwrap();
        assert!(!term_after(&g, plus + 1).unwrap().is_call);
        // An index expression ends in a bracket group, not a call.
        let h = forest("a + xs[i]");
        let plus = h.iter().position(|n| n.is_punct("+")).unwrap();
        assert!(!term_after(&h, plus + 1).unwrap().is_call);
    }

    #[test]
    fn term_spanning_requires_the_whole_run() {
        let f = forest("stored(a, b)");
        let t = term_spanning(&f).unwrap();
        assert_eq!(t.key, "stored");
        assert!(t.is_call);
        assert!(term_spanning(&forest("a + b")).is_none());
        assert!(term_spanning(&[]).is_none());
    }
}
