//! `coca-audit explain <rule-id>` — the contract, the annotation syntax,
//! and a minimal example for every rule the pass can emit.
//!
//! The lint messages say *what* fired; this module says *why the rule
//! exists* and exactly how to satisfy or waive it, so a finding never
//! sends anyone digging through the analysis source. Every id in
//! [`crate::ALL_RULES`] has an entry (a test pins this), and the text for
//! unknown ids is `None` so the CLI can exit non-zero.

/// One rule's explanation: the invariant it defends, how findings are
/// waived, and a minimal triggering example.
struct Entry {
    rule: &'static str,
    contract: &'static str,
    waiver: &'static str,
    example: &'static str,
}

const ENTRIES: &[Entry] = &[
    Entry {
        rule: "no-panic",
        contract: "Solver hot paths must surface typed errors, never `unwrap()`, \
                   `expect(`, or `panic!`: a data-dependent panic in the decision \
                   loop kills a whole batch run.",
        waiver: "// audit:allow(no-panic) on the line or the line above, with a \
                 short justification after the closing paren.",
        example: "fn solve(&self) -> f64 {\n    self.inner.lock().unwrap().best // fires here\n}",
    },
    Entry {
        rule: "float-eq",
        contract: "Continuous quantities never compare with raw `==`/`!=`; use a \
                   tolerance. Exact sentinel comparisons (0.0/1.0 flags, \
                   `fract() == 0.0`) are the waivable exceptions.",
        waiver: "// audit:allow(float-eq) with a note saying why exact equality is \
                 correct at this site.",
        example: "if cost == target { … } // fires: compare |cost - target| < tol",
    },
    Entry {
        rule: "nan-guard",
        contract: "`ln`, `sqrt`, and identifier division in hot paths need a nearby \
                   guard on the operand — NaN produced deep in a solve poisons \
                   every downstream aggregate silently.",
        waiver: "// audit:allow(nan-guard) when the operand is provably in-domain.",
        example: "let y = x.ln(); // fires unless a `x > 0.0` guard is nearby",
    },
    Entry {
        rule: "must-use",
        contract: "Solver result types carry `#[must_use]` so a dropped result (a \
                   forgotten `?`, an ignored decision) is a compile-time warning.",
        waiver: "Not waivable in place — add the attribute to the type.",
        example: "pub struct SolveOutcome { … } // fires: add #[must_use]",
    },
    Entry {
        rule: "hot-alloc",
        contract: "No heap allocation (`Vec::new`, `format!`, `to_string`, `clone` \
                   of owned containers, …) inside a declared `audit:hot-path` \
                   region; per-slot allocation dominates small-scale runs.",
        waiver: "// audit:allow(hot-alloc) for allocations proven out of the per-slot \
                 loop (setup, error paths).",
        example: "// audit:hot-path(decide)\nfn decide(&self) {\n    let names = Vec::new(); // fires\n}",
    },
    Entry {
        rule: "slot-loop",
        contract: "No hand-rolled `for t in 0..num_slots` loops outside the \
                   streaming engine: slots flow through `SimEngine`/`SlotSource` so \
                   lockstep, resume, and service modes stay equivalent.",
        waiver: "// audit:allow(slot-loop) for planners that legitimately scan a \
                 horizon (e.g. offline optimal).",
        example: "for t in 0..num_slots { step(t); } // fires",
    },
    Entry {
        rule: "no-print",
        contract: "Diagnostics go through `coca_obs::logger`, not `println!`/\
                   `eprintln!`, outside the designated print surfaces (CLI mains, \
                   report writers) — direct prints bypass log levels and spans.",
        waiver: "// audit:allow(no-print) on intentional user-facing output in a \
                 non-designated file.",
        example: "println!(\"solved {v}\"); // fires: use logger::info",
    },
    Entry {
        rule: "unit-mix",
        contract: "Terms tagged kWh / kW / USD (identifier suffixes, \
                   `// audit:unit(<tag>)` annotations, known core types) must not \
                   meet across `+`, `-`, compound assignment, or comparisons.",
        waiver: "// audit:allow(unit-mix) for deliberate conversions; prefer naming \
                 the conversion factor so the units genuinely match.",
        example: "let total = energy_kwh + power_kw; // fires",
    },
    Entry {
        rule: "atomic-ordering",
        contract: "Every atomic operation states its ordering contract in an \
                   `// audit:atomic(<contract>)` annotation; CAS failure ordering \
                   must not exceed success ordering; CAS results are not dropped.",
        waiver: "The annotation *is* the resolution — there is no separate waiver. \
                 `// audit:atomic(SeqCst; why this ordering is sufficient)`.",
        example: "count.fetch_add(1, Ordering::SeqCst); // fires until annotated",
    },
    Entry {
        rule: "deprecated-api",
        contract: "No internal use of items the workspace marks `#[deprecated]` \
                   outside the defining file — migrations finish instead of \
                   lingering.",
        waiver: "// audit:allow(deprecated-api) in explicitly waived compat tests.",
        example: "let v = old_entrypoint(); // fires if old_entrypoint is #[deprecated]",
    },
    Entry {
        rule: "unit-flow",
        contract: "Interprocedural unit checking: kWh / kW / USD tags propagate \
                   through parameters and returns, so a mis-unitted argument is \
                   caught any number of calls from the annotation that tagged it.",
        waiver: "// audit:allow(unit-flow) at the flagged call site; prefer fixing \
                 the unit or declaring the parameter's tag.",
        example: "fn price(e_kwh: f64) {}\nprice(power_kw); // fires at this call",
    },
    Entry {
        rule: "hot-path-reach",
        contract: "Walks the call graph from every call inside an `audit:hot-path` \
                   region and flags transitively reachable allocation, locking, and \
                   IO — the chain is attached as related locations.",
        waiver: "// audit:allow(hot-path-reach) at the flagged root call, with the \
                 reason the reached sink is acceptable.",
        example: "// audit:hot-path(decide)\nfn decide(&self) { helper(); }\nfn helper() { let s = format!(\"…\"); } // flagged at the decide() call",
    },
    Entry {
        rule: "snapshot-complete",
        contract: "Every type with a snapshot/restore pair (`snapshot`, \
                   `snapshot_state`, `checkpoint` / `restore`, `restore_state`) \
                   must account for each declared field: a field neither side \
                   mentions is silently lost across crash-resume, and a field the \
                   snapshot captures but the restore never writes leaves a restored \
                   instance with stale state (flagged at the restore definition).",
        waiver: "// audit:transient(<reason>) on the field (or the line above) for \
                 state that is genuinely not checkpoint-carried — construction \
                 config, caches, diagnostics, injected callbacks. The reason must \
                 be non-empty. `// audit:allow(snapshot-complete)` also works for \
                 the restore-side asymmetry finding.",
        example: "struct C { gain: f64, scratch: Vec<f64> }\nimpl C {\n    fn snapshot(&self) -> V { v(self.gain) }\n    fn restore(&mut self, s: &V) { self.gain = g(s); }\n}\n// fires on `scratch`: neither side mentions it",
    },
    Entry {
        rule: "nondet-reach",
        contract: "Walks the call graph from state-affecting roots (engine \
                   step/run paths, snapshot serializers, wire encoders, run-ID \
                   hashing, batch orchestration, trace ingestion) and flags \
                   reachable nondeterminism: iteration over std HashMap/HashSet \
                   without a restoring sort, `Instant::now`/`SystemTime::now`, and \
                   channel receives. Collecting into a `BTreeMap`/`BTreeSet`, \
                   sorting in the same statement, or sorting the collected binding \
                   later in the block suppresses the finding; `Fx`-hashed maps are \
                   exempt.",
        waiver: "// audit:ordered(<contract>) on the sink line (or the line above) \
                 stating why order cannot reach replayed or serialized state — the \
                 contract must be non-empty. `// audit:allow(nondet-reach)` also \
                 works.",
        example: "fn to_json(&self) -> String {\n    for (k, v) in &self.index { … } // fires: hash order reaches output\n}\n// fix: let mut kv: Vec<_> = self.index.iter().collect(); kv.sort();",
    },
    Entry {
        rule: "stale-waiver",
        contract: "Waivers and annotations are load-bearing documentation: an \
                   `audit:allow` that suppresses nothing, an `audit:atomic` beside \
                   no atomic, an `audit:transient`/`audit:ordered` with no \
                   finding of its rule on its line or the line below, or an \
                   `audit:allow` naming an unknown rule id — all are lies waiting \
                   to mislead and must be deleted.",
        waiver: "// audit:allow(stale-waiver) on a waiver kept deliberately (e.g. \
                 platform-dependent findings).",
        example: "// audit:allow(no-panic) leftover after the unwrap was removed\nlet v = compute(); // fires on the waiver line above",
    },
];

/// The explanation text for one rule id, or `None` for an unknown id.
#[must_use]
pub fn explain(rule: &str) -> Option<String> {
    ENTRIES.iter().find(|e| e.rule == rule).map(|e| {
        format!(
            "{}\n\ncontract:\n  {}\n\nwaiver / annotation:\n  {}\n\nexample:\n{}\n",
            e.rule,
            e.contract,
            e.waiver,
            e.example
                .lines()
                .map(|l| format!("  {l}"))
                .collect::<Vec<_>>()
                .join("\n"),
        )
    })
}

/// All rule ids with a one-line teaser, for bare `coca-audit explain`.
#[must_use]
pub fn listing() -> String {
    let mut out = String::from("rules (run `coca-audit explain <rule-id>` for details):\n");
    for e in ENTRIES {
        let first = e.contract.split(". ").next().unwrap_or(e.contract);
        out.push_str(&format!("  {:18} {}\n", e.rule, first.trim_end_matches('.')));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_id_has_a_nonempty_explanation() {
        for rule in crate::ALL_RULES {
            let text = explain(rule)
                .unwrap_or_else(|| panic!("rule `{rule}` has no explain entry"));
            assert!(!text.trim().is_empty(), "empty explanation for `{rule}`");
            assert!(text.contains("contract:"), "`{rule}` lacks a contract section");
            assert!(text.contains("example:"), "`{rule}` lacks an example section");
        }
    }

    #[test]
    fn explain_entries_and_all_rules_agree_exactly() {
        // No orphan entries either: explain must not describe rules the
        // pass cannot emit.
        assert_eq!(ENTRIES.len(), crate::ALL_RULES.len());
        for e in ENTRIES {
            assert!(crate::ALL_RULES.contains(&e.rule), "orphan explain entry `{}`", e.rule);
        }
    }

    #[test]
    fn unknown_rule_is_none() {
        assert!(explain("not-a-rule").is_none());
        assert!(explain("").is_none());
    }

    #[test]
    fn listing_names_every_rule() {
        let l = listing();
        for rule in crate::ALL_RULES {
            assert!(l.contains(rule), "listing misses `{rule}`");
        }
    }
}
