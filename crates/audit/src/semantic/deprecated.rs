//! `deprecated-api`: the workspace must not lean on its own deprecated
//! surface.
//!
//! A `#[deprecated]` marker only helps if usage actually drains. rustc
//! warns, but warnings are easy to `#[allow]` away and easy to stop
//! reading; this rule makes residual usage an *audit* decision instead.
//! Two passes:
//!
//! 1. **Index** ([`DeprecatedIndex::build`]) — every item the workspace
//!    marks `#[deprecated]` (functions, types, consts, statics, and
//!    struct fields), with its defining file and line.
//! 2. **Uses** ([`check`]) — any identifier matching an indexed name in a
//!    *different* file is flagged, test code included. The defining file
//!    is exempt: keeping a deprecated mirror field updated from the
//!    non-deprecated path is exactly what a compat shim does. Everything
//!    else must migrate or carry an explicit
//!    `// audit:allow(deprecated-api)` waiver — which is how "compat
//!    test" becomes a reviewed, greppable label rather than a habit.
//!
//! Matching is by name, not by resolved path — this linter has no name
//! resolution. Deprecated surfaces in this workspace (historically the
//! `SlotSimulator` facade and the `last_*` solver mirrors, both since
//! removed) have distinctive names, so name matching is exact in
//! practice; a clash with an unrelated local name would be waived at the
//! use site with a comment saying so.

use std::collections::HashMap;

use super::{emit, DEPRECATED_API};
use crate::ast::{Ast, Delim, Node, TokKind};
use crate::report::Report;
use crate::scan::SourceFile;

/// Workspace-wide index of `#[deprecated]` items: name → definition
/// sites. A name may be deprecated in several files (the distributed
/// solver mirrors the single-DC solver's deprecated fields name-for-name),
/// and each defining file is exempt for its own mirrors.
#[derive(Debug, Default)]
pub struct DeprecatedIndex {
    items: HashMap<String, Vec<(String, usize)>>,
}

/// Item keywords whose following identifier is the item name.
const ITEM_KWS: &[&str] =
    &["fn", "struct", "enum", "union", "trait", "type", "mod", "static", "const"];

impl DeprecatedIndex {
    /// Builds the index over every parsed file.
    pub fn build<'a>(asts: impl IntoIterator<Item = &'a Ast>) -> Self {
        let mut index = DeprecatedIndex::default();
        for ast in asts {
            collect(&ast.nodes, &ast.path, &mut index.items);
        }
        index
    }

    /// Definition sites of a deprecated item, if `name` is one.
    pub fn lookup(&self, name: &str) -> Option<&[(String, usize)]> {
        self.items.get(name).map(Vec::as_slice)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no deprecated items exist.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Recursively collects deprecated item names from a run and its groups.
fn collect(nodes: &[Node], path: &str, items: &mut HashMap<String, Vec<(String, usize)>>) {
    let mut i = 0;
    while i < nodes.len() {
        if let Node::Group(g) = &nodes[i] {
            collect(&g.children, path, items);
        }
        // `#` `[deprecated …]` attribute?
        let is_attr = nodes[i].is_punct("#")
            && nodes.get(i + 1).and_then(Node::group).is_some_and(|g| {
                g.delim == Delim::Bracket
                    && g.children.first().is_some_and(|n| n.is_ident("deprecated"))
            });
        if !is_attr {
            i += 1;
            continue;
        }
        let line = nodes[i].line();
        // Walk forward over stacked attributes and modifiers to the name.
        let mut k = i + 2;
        let mut name: Option<&str> = None;
        while k < nodes.len() {
            let n = &nodes[k];
            // Another attribute.
            if n.is_punct("#")
                && nodes.get(k + 1).and_then(Node::group).is_some_and(|g| g.delim == Delim::Bracket)
            {
                k += 2;
                continue;
            }
            // Visibility / modifiers.
            if n.is_ident("pub") {
                k += 1;
                if nodes.get(k).and_then(Node::group).is_some_and(|g| g.delim == Delim::Paren) {
                    k += 1; // pub(crate)
                }
                continue;
            }
            if n.is_ident("unsafe") || n.is_ident("async") || n.is_ident("extern") {
                k += 1;
                continue;
            }
            if let Some(kw) = n.ident().filter(|t| ITEM_KWS.contains(t)) {
                // `const fn` — `const` here is a modifier, not an item.
                if kw == "const" && nodes.get(k + 1).is_some_and(|n| n.is_ident("fn")) {
                    k += 1;
                    continue;
                }
                name = nodes.get(k + 1).and_then(Node::ident);
                break;
            }
            // Struct field: `name :` (after optional pub handled above).
            if let Some(field) = n.ident() {
                if nodes.get(k + 1).is_some_and(|nn| nn.is_punct(":")) {
                    name = Some(field);
                }
                break;
            }
            break;
        }
        if let Some(name) = name {
            items.entry(name.to_string()).or_default().push((path.to_string(), line));
        }
        i += 2;
    }
}

/// Collects every identifier leaf with its line, depth-first.
fn ident_tokens<'a>(nodes: &'a [Node], out: &mut Vec<(&'a str, usize)>) {
    for n in nodes {
        match n {
            Node::Tok(t) if t.kind == TokKind::Ident => out.push((&t.text, t.line)),
            Node::Tok(_) => {}
            Node::Group(g) => ident_tokens(&g.children, out),
        }
    }
}

/// Flags uses of indexed deprecated names outside their defining file.
pub fn check(file: &SourceFile, ast: &Ast, index: &DeprecatedIndex, report: &mut Report) {
    if index.is_empty() {
        return;
    }
    let mut idents = Vec::new();
    ident_tokens(&ast.nodes, &mut idents);
    for (name, line) in idents {
        let Some(defs) = index.lookup(name) else { continue };
        if defs.iter().any(|(def_file, _)| def_file == &ast.path) {
            continue; // defining file: mirror writes and self-tests are its job
        }
        let (def_file, def_line) = &defs[0];
        emit(
            file,
            line,
            DEPRECATED_API,
            format!(
                "`{name}` is #[deprecated] (defined at {def_file}:{def_line}); \
                 migrate off it, or waive an intentional compat test"
            ),
            report,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_files(def_src: &str, use_src: &str) -> Report {
        let def_ast = Ast::parse("crates/core/src/old.rs", def_src);
        let use_ast = Ast::parse("crates/core/src/new.rs", use_src);
        let index = DeprecatedIndex::build([&def_ast, &use_ast]);
        let mut r = Report::default();
        let def_file = SourceFile::parse("crates/core/src/old.rs", def_src);
        let use_file = SourceFile::parse("crates/core/src/new.rs", use_src);
        check(&def_file, &def_ast, &index, &mut r);
        check(&use_file, &use_ast, &index, &mut r);
        r
    }

    #[test]
    fn indexes_functions_structs_and_fields() {
        let src = "\
#[deprecated(note = \"x\")]
pub fn old_fn() {}
#[deprecated]
pub struct OldThing {
    pub ok: u8,
}
pub struct S {
    #[deprecated]
    pub last_iters: usize,
    pub fine: usize,
}
#[deprecated]
pub const OLD_K: usize = 1;
";
        let ast = Ast::parse("a.rs", src);
        let idx = DeprecatedIndex::build([&ast]);
        assert!(idx.lookup("old_fn").is_some());
        assert!(idx.lookup("OldThing").is_some());
        assert!(idx.lookup("last_iters").is_some());
        assert!(idx.lookup("OLD_K").is_some());
        assert!(idx.lookup("ok").is_none());
        assert!(idx.lookup("fine").is_none());
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn cross_file_use_is_flagged_same_file_is_not() {
        let def = "\
pub struct S {
    #[deprecated]
    pub last_iters: usize,
}
impl S {
    fn sync(&mut self) { self.last_iters = 1; }
}
";
        let user = "fn f(s: &S) -> usize { s.last_iters }\n";
        let r = two_files(def, user);
        assert_eq!(r.unwaived_count(), 1, "{r}");
        assert_eq!(r.violations[0].file, "crates/core/src/new.rs");
        assert!(r.violations[0].message.contains("old.rs:2"), "{r}");
    }

    #[test]
    fn waived_compat_test_is_tolerated() {
        let def = "#[deprecated]\npub fn old_fn() {}\n";
        let user = "\
#[cfg(test)]
mod tests {
    #[test]
    fn compat() {
        // audit:allow(deprecated-api)
        old_fn();
    }
}
";
        let r = two_files(def, user);
        assert_eq!(r.unwaived_count(), 0, "{r}");
        assert_eq!(r.waived_count(), 1);
    }

    #[test]
    fn unwaived_test_use_is_still_flagged() {
        let def = "#[deprecated]\npub fn old_fn() {}\n";
        let user = "#[cfg(test)]\nmod tests {\n    fn t() { old_fn(); }\n}\n";
        let r = two_files(def, user);
        assert_eq!(r.unwaived_count(), 1, "{r}");
    }
}
