//! `atomic-ordering`: every atomic operation must state its contract.
//!
//! The observability layer is all `Ordering::Relaxed` *on purpose* (each
//! metric is an independent statistic), and the danger with such code is
//! drift: someone adds a load that guards a store, or strengthens one
//! ordering "to be safe", and the reasoning that made Relaxed sound is
//! nowhere to be found. This rule makes the reasoning load-bearing:
//!
//! 1. every atomic call site — a method in the atomic vocabulary
//!    (`load`, `store`, `swap`, `fetch_*`, `compare_exchange*`,
//!    `fetch_update`) whose arguments name an `Ordering` — must carry an
//!    `// audit:atomic(<contract>)` annotation on its line or the line
//!    above, with a non-empty contract;
//! 2. `compare_exchange` / `compare_exchange_weak` must not use a failure
//!    ordering *stronger* than the success ordering (the reverse of what
//!    a CAS loop ever needs, and in this workspace always a mistake);
//! 3. a CAS result must not be silently dropped (`x.compare_exchange(…);`
//!    or `let _ = …`) — losing the `Err` means losing the retry.
//!
//! Requiring an explicit `Ordering` argument in the call is what keeps
//! ordinary `load(path)`-style methods out of scope. The annotations are
//! backed dynamically: `crates/obs/tests/loom.rs` model-checks the
//! annotated primitives under every interleaving (`--cfg loom`).

use super::{emit, in_test, ATOMIC_ORDERING};
use crate::ast::visit::{find_method_calls, split_commas, stmt_start, RunVisitor};
use crate::ast::{Ast, Node};
use crate::report::Report;
use crate::scan::SourceFile;

/// The atomic method vocabulary.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// Memory-ordering names ranked by strength. `Acquire` and `Release`
/// order different halves but are incomparable with each other; ranking
/// them equal keeps the "failure stronger than success" check honest for
/// the orderings a failure argument may legally take.
fn ordering_rank(name: &str) -> Option<u8> {
    match name {
        "Relaxed" => Some(0),
        "Acquire" | "Release" => Some(1),
        "AcqRel" => Some(2),
        "SeqCst" => Some(3),
        _ => None,
    }
}

/// True when any leaf of `nodes` is one of the `Ordering` variants or the
/// `Ordering` path ident itself.
fn mentions_ordering(nodes: &[Node]) -> bool {
    nodes.iter().any(|n| match n {
        Node::Tok(t) => t.is_ident("Ordering") || ordering_rank(&t.text).is_some(),
        Node::Group(g) => mentions_ordering(&g.children),
    })
}

/// The ordering named in one argument slice (last ordering ident wins,
/// covering both `Ordering::SeqCst` and a bare imported `SeqCst`).
fn arg_ordering(arg: &[Node]) -> Option<(&str, u8)> {
    arg.iter().rev().find_map(|n| {
        let t = n.tok()?;
        let rank = ordering_rank(&t.text)?;
        Some((t.text.as_str(), rank))
    })
}

struct Atomics<'a> {
    file: &'a SourceFile,
    ast: &'a Ast,
    findings: Vec<(usize, String)>,
}

impl RunVisitor for Atomics<'_> {
    fn run(&mut self, nodes: &[Node], _depth: usize) {
        for call in find_method_calls(nodes) {
            if !ATOMIC_METHODS.contains(&call.name) {
                continue;
            }
            if !mentions_ordering(&call.args.children) {
                continue; // not an atomic: no Ordering in the call
            }
            if in_test(self.file, call.line) {
                continue;
            }

            // (1) Contract annotation.
            match self.ast.annotation(call.line, "atomic") {
                None => self.findings.push((
                    call.line,
                    format!(
                        "atomic `{}` without an `// audit:atomic(<contract>)` \
                         annotation stating its ordering contract",
                        call.name
                    ),
                )),
                Some(c) if c.is_empty() => self.findings.push((
                    call.line,
                    format!("`audit:atomic(…)` on `{}` has an empty contract", call.name),
                )),
                Some(_) => {}
            }

            let is_cas = matches!(call.name, "compare_exchange" | "compare_exchange_weak");

            // (2) Failure ordering stronger than success.
            if is_cas {
                let args = split_commas(call.args);
                if args.len() >= 4 {
                    let success = arg_ordering(args[args.len() - 2]);
                    let failure = arg_ordering(args[args.len() - 1]);
                    if let (Some((s, sr)), Some((f, fr))) = (success, failure) {
                        if fr > sr {
                            self.findings.push((
                                call.line,
                                format!(
                                    "`{}` failure ordering `{f}` is stronger than \
                                     success ordering `{s}`",
                                    call.name
                                ),
                            ));
                        }
                    }
                }
            }

            // (3) Silently dropped CAS result.
            if is_cas {
                let terminated = nodes
                    .get(call.after_idx)
                    .is_none_or(|n| n.is_punct(";"));
                if terminated {
                    let s = stmt_start(nodes, call.recv_start);
                    let stmt_call = s == call.recv_start;
                    let let_underscore = nodes.get(s).is_some_and(|n| n.is_ident("let"))
                        && nodes.get(s + 1).is_some_and(|n| n.is_ident("_"))
                        && nodes.get(s + 2).is_some_and(|n| n.is_punct("="));
                    if stmt_call || let_underscore {
                        self.findings.push((
                            call.line,
                            format!(
                                "result of `{}` silently dropped; handle the `Err` \
                                 (retry loop or explicit policy)",
                                call.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// 1-based lines holding a genuine atomic operation (an atomic-vocabulary
/// method with an `Ordering` in its arguments), *including* test lines.
/// The hygiene pass uses this to spot `audit:atomic` annotations that no
/// longer sit next to any atomic op.
pub(crate) fn op_lines(ast: &Ast) -> Vec<usize> {
    struct Ops(Vec<usize>);
    impl RunVisitor for Ops {
        fn run(&mut self, nodes: &[Node], _depth: usize) {
            for call in find_method_calls(nodes) {
                if ATOMIC_METHODS.contains(&call.name)
                    && mentions_ordering(&call.args.children)
                {
                    self.0.push(call.line);
                }
            }
        }
    }
    let mut v = Ops(Vec::new());
    crate::ast::visit::walk_runs(&ast.nodes, &mut v);
    v.0
}

/// Runs the rule over one parsed file.
pub fn check(file: &SourceFile, ast: &Ast, report: &mut Report) {
    let mut v = Atomics { file, ast, findings: Vec::new() };
    crate::ast::visit::walk_runs(&ast.nodes, &mut v);
    for (line, msg) in v.findings {
        emit(file, line, ATOMIC_ORDERING, msg, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Report {
        let file = SourceFile::parse("crates/obs/src/x.rs", src);
        let ast = Ast::parse("crates/obs/src/x.rs", src);
        let mut r = Report::default();
        check(&file, &ast, &mut r);
        r
    }

    #[test]
    fn unannotated_atomic_is_flagged() {
        let r = lint("fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n");
        assert_eq!(r.unwaived_count(), 1, "{r}");
        assert!(r.violations[0].message.contains("audit:atomic"));
    }

    #[test]
    fn annotated_atomic_passes() {
        let src = "\
fn f(a: &AtomicU64) -> u64 {
    // audit:atomic(diagnostic read; no cross-variable ordering)
    a.load(Ordering::Relaxed)
}
";
        assert_eq!(lint(src).unwaived_count(), 0);
    }

    #[test]
    fn empty_contract_is_flagged() {
        let src = "\
fn f(a: &AtomicU64) {
    // audit:atomic()
    a.store(1, Ordering::Relaxed);
}
";
        let r = lint(src);
        assert_eq!(r.unwaived_count(), 1, "{r}");
        assert!(r.violations[0].message.contains("empty contract"));
    }

    #[test]
    fn non_atomic_load_is_out_of_scope() {
        assert_eq!(lint("fn f(c: &Config) { c.load(path); }\n").unwaived_count(), 0);
    }

    #[test]
    fn cas_failure_stronger_than_success_is_flagged() {
        let src = "\
fn f(a: &AtomicU64) {
    // audit:atomic(handoff)
    let _r = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire);
}
";
        let r = lint(src);
        assert_eq!(r.unwaived_count(), 1, "{r}");
        assert!(r.violations[0].message.contains("stronger"));
    }

    #[test]
    fn cas_equal_orderings_pass() {
        let src = "\
fn f(a: &AtomicU64) {
    // audit:atomic(single-cell RMW retry loop)
    match a.compare_exchange_weak(0, 1, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => {}
        Err(_) => {}
    }
}
";
        assert_eq!(lint(src).unwaived_count(), 0);
    }

    #[test]
    fn dropped_cas_result_is_flagged() {
        let src = "\
fn f(a: &AtomicU64) {
    // audit:atomic(racy init)
    a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
    // audit:atomic(racy init)
    let _ = a.compare_exchange(0, 2, Ordering::Relaxed, Ordering::Relaxed);
}
";
        let r = lint(src);
        let dropped: Vec<_> =
            r.violations.iter().filter(|v| v.message.contains("silently dropped")).collect();
        assert_eq!(dropped.len(), 2, "{r}");
    }

    #[test]
    fn consumed_cas_result_passes() {
        let src = "\
fn f(a: &AtomicU64) -> bool {
    // audit:atomic(one-shot claim)
    a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok()
}
";
        assert_eq!(lint(src).unwaived_count(), 0);
    }

    #[test]
    fn multi_line_call_annotation_binds_to_method_line() {
        let src = "\
fn f(a: &AtomicU64, cur: u64, next: u64) {
    // audit:atomic(retry loop)
    let r = a.compare_exchange_weak(
        cur,
        next,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    use_result(r);
}
";
        assert_eq!(lint(src).unwaived_count(), 0);
    }

    #[test]
    fn tests_are_exempt_and_waivers_apply() {
        let src = "\
fn f(a: &AtomicU64) {
    // audit:allow(atomic-ordering)
    a.store(1, Ordering::SeqCst);
}
#[cfg(test)]
mod tests {
    fn t(a: &AtomicU64) { a.store(2, Ordering::SeqCst); }
}
";
        let r = lint(src);
        assert_eq!(r.unwaived_count(), 0, "{r}");
        assert_eq!(r.waived_count(), 1);
    }
}
