//! Semantic (AST-backed) lint rules.
//!
//! These rules run against the token-tree layer in [`crate::ast`] rather
//! than sanitized lines, which lets them see expression structure: operand
//! chains, argument lists spanning lines, attribute/item shapes. Three
//! families:
//!
//! - [`units`] (`unit-mix`) — a units-of-measure dataflow lint. Identifier
//!   suffixes (`_kwh`, `_kw`, `_usd`), `// audit:unit(<tag>)` annotations,
//!   and known dimension-carrying core types tag terms with kWh / kW /
//!   USD; `+`, `-`, compound assignment, and comparisons between terms of
//!   *different* known units are flagged. The COCA objective deliberately
//!   mixes dimensions in one place (`V·g + q·[p−r]⁺`, eq. 17) — that site
//!   carries a reasoned waiver rather than an exemption in the rule.
//! - [`atomic`] (`atomic-ordering`) — every atomic operation
//!   (`load`/`store`/`swap`/`fetch_*`/`compare_exchange*` with an
//!   explicit `Ordering` argument) must carry an
//!   `// audit:atomic(<contract>)` annotation stating its ordering
//!   contract; CAS calls must not use a failure ordering stronger than
//!   the success ordering, and must not silently drop their `Result`.
//! - [`deprecated`] (`deprecated-api`) — internal code must not use items
//!   the workspace itself marks `#[deprecated]`; the only tolerated uses
//!   are the defining file's own mirror writes and explicitly waived
//!   compat tests.
//!
//! All three honor the same `// audit:allow(<rule>)` waiver convention as
//! the line rules, resolved through the shared [`SourceFile`] line data.

pub mod atomic;
pub mod deprecated;
pub mod units;

use crate::ast::Ast;
use crate::report::{Report, Violation};
use crate::scan::SourceFile;

/// Rule id: arithmetic/comparison across different units of measure.
pub const UNIT_MIX: &str = "unit-mix";
/// Rule id: undocumented or contradictory atomic-ordering usage.
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule id: internal use of a workspace-`#[deprecated]` item.
pub const DEPRECATED_API: &str = "deprecated-api";

/// Runs every semantic rule over one parsed file. `index` is the
/// workspace-wide deprecated-item index (built by the two-pass driver in
/// [`crate::lint_files`]).
pub fn apply_all(
    file: &SourceFile,
    ast: &Ast,
    index: &deprecated::DeprecatedIndex,
    report: &mut Report,
) {
    units::check(file, ast, report);
    atomic::check(file, ast, report);
    deprecated::check(file, ast, index, report);
}

/// Records a finding at a 1-based `line`, resolving waiver status through
/// the shared line data.
pub(crate) fn emit(
    file: &SourceFile,
    line: usize,
    rule: &'static str,
    message: String,
    report: &mut Report,
) {
    report.push(Violation {
        file: file.path.clone(),
        line,
        rule,
        message,
        waived: file.waived(line.saturating_sub(1), rule),
        related: Vec::new(),
    });
}

/// True when the 1-based `line` sits inside a `#[cfg(test)]` region.
pub(crate) fn in_test(file: &SourceFile, line: usize) -> bool {
    file.lines.get(line.saturating_sub(1)).is_some_and(|l| l.in_test)
}
