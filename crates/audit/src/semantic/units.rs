//! `unit-mix`: units-of-measure dataflow lint.
//!
//! The COCA cost pipeline moves between three dimensions — energy (kWh),
//! power (kW), and money (USD) — and the P3 objective is the one place
//! they legitimately meet. Everywhere else, adding a price to an energy or
//! comparing power against dollars is a transcription bug of exactly the
//! kind that silently skews a reproduction. This rule tags value *terms*
//! with a unit and flags `+`, `-`, `+=`, `-=`, and comparisons whose two
//! sides carry **different** known units.
//!
//! A term's unit comes from, in precedence order:
//!
//! 1. an `// audit:unit(<tag>)` annotation on the term's binding line
//!    (or the line above) — tags: `kwh`, `kw`, `usd`, `dimensionless`;
//! 2. a type ascription to a known dimension-carrying core type
//!    (`EnergyKwh`, `PowerKw`, `CostUsd`);
//! 3. the identifier suffix: `…_kwh`, `…_kw`, `…_usd` (or the bare names
//!    `kwh` / `kw` / `usd`).
//!
//! Names containing `_per_` are ratios and deliberately untagged — a
//! `usd_per_kwh` price times an energy is how units are *supposed* to
//! cancel. Multiplication and division never flag (they change dimension);
//! only same-dimension operators do. Terms with no known unit never flag:
//! the lint is opt-in via naming and annotations, so it cannot drown the
//! workspace in guesses.

use std::collections::HashMap;

use super::{emit, in_test, UNIT_MIX};
use crate::ast::visit::{term_after, term_before, RunVisitor};
use crate::ast::{Ast, Node, TokKind};
use crate::report::Report;
use crate::scan::SourceFile;

/// A physical dimension the lint tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Energy, kilowatt-hours.
    Kwh,
    /// Power, kilowatts.
    Kw,
    /// Money, US dollars.
    Usd,
}

impl Unit {
    /// Human-facing label used in messages.
    pub(crate) fn label(self) -> &'static str {
        match self {
            Unit::Kwh => "kWh",
            Unit::Kw => "kW",
            Unit::Usd => "USD",
        }
    }

    /// Parses an `audit:unit(<tag>)` tag.
    pub(crate) fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "kwh" => Some(Unit::Kwh),
            "kw" => Some(Unit::Kw),
            "usd" => Some(Unit::Usd),
            _ => None,
        }
    }
}

/// Dimension-carrying core types recognized in ascriptions (`let x:
/// EnergyKwh = …`). The workspace currently encodes units in names rather
/// than newtypes; this table is the hook for when that changes.
const TYPE_UNITS: &[(&str, Unit)] = &[
    ("EnergyKwh", Unit::Kwh),
    ("PowerKw", Unit::Kw),
    ("CostUsd", Unit::Usd),
];

/// Unit of a bare identifier by suffix convention.
pub(crate) fn suffix_unit(name: &str) -> Option<Unit> {
    if name.contains("_per_") {
        return None; // ratio: dimension already divided out of the name
    }
    if name == "kwh" || name.ends_with("_kwh") {
        Some(Unit::Kwh)
    } else if name == "kw" || name.ends_with("_kw") {
        Some(Unit::Kw)
    } else if name == "usd" || name.ends_with("_usd") {
        Some(Unit::Usd)
    } else {
        None
    }
}

/// Operators that require both operands to share a dimension.
const SAME_DIM_OPS: &[&str] = &["+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!="];

/// Per-file binding environment: names tagged by annotation or ascription.
/// Shared with the interprocedural unit-flow analysis, which seeds
/// parameter and return summaries from the same environment.
pub(crate) struct Env {
    /// Explicitly tagged names (annotation or known-type ascription).
    tagged: HashMap<String, Unit>,
    /// Names annotated `dimensionless`: suppress suffix inference.
    dimensionless: Vec<String>,
}

impl Env {
    /// Unit of a term key: explicit tag, then dimensionless suppression,
    /// then suffix convention.
    pub(crate) fn unit_of(&self, key: &str) -> Option<Unit> {
        if let Some(u) = self.tagged.get(key) {
            return Some(*u);
        }
        if self.dimensionless.iter().any(|n| n == key) {
            return None;
        }
        suffix_unit(key)
    }
}

/// Collects every leaf token (depth-first) of a forest.
fn leaf_tokens<'a>(nodes: &'a [Node], out: &mut Vec<&'a crate::ast::Token>) {
    for n in nodes {
        match n {
            Node::Tok(t) => out.push(t),
            Node::Group(g) => leaf_tokens(&g.children, out),
        }
    }
}

/// A defect found while building the environment. Unknown tags are
/// reported here under `unit-mix`; unbound annotations belong to the
/// workspace-wide hygiene pass (`stale-waiver`), which also checks
/// whether they bind a *function* line instead of a local.
pub(crate) struct EnvIssue {
    /// 1-based line of the annotation comment.
    pub(crate) line: usize,
    /// The tag text inside `audit:unit(…)`.
    pub(crate) tag: String,
    /// True when the tag is not a recognized unit name; false when the
    /// annotation failed to cover any binding identifier.
    pub(crate) unknown_tag: bool,
}

/// Builds the binding environment: for each `audit:unit(<tag>)` comment,
/// binds the identifier declared on the covered line; plus known-type
/// ascriptions anywhere in the file. Pure — defects come back as
/// [`EnvIssue`]s for the caller to report under the right rule.
pub(crate) fn build_env(ast: &Ast) -> (Env, Vec<EnvIssue>) {
    let mut env = Env { tagged: HashMap::new(), dimensionless: Vec::new() };
    let mut issues = Vec::new();
    let mut toks = Vec::new();
    leaf_tokens(&ast.nodes, &mut toks);

    // Keywords that precede the bound name on a binding/field line.
    const SKIP: &[&str] =
        &["let", "pub", "mut", "const", "static", "ref", "crate", "self", "in", "super", "fn"];

    for c in &ast.comments {
        // Marker-start only (like hot-path markers): prose that merely
        // mentions `audit:unit(…)` must not bind anything.
        let Some(rest) = crate::ast::annotation_payload(&c.text, "audit:unit(") else {
            continue;
        };
        let Some(end) = rest.find(')') else { continue };
        let tag = rest[..end].trim().to_string();
        // The annotation covers its own line when code shares it,
        // otherwise the line below (comment-above style).
        let covered = if toks.iter().any(|t| t.line == c.line) { c.line } else { c.line + 1 };
        let Some(name) = toks
            .iter()
            .filter(|t| t.line == covered && t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .find(|t| !SKIP.contains(t))
        else {
            issues.push(EnvIssue { line: c.line, tag, unknown_tag: false });
            continue;
        };
        if tag == "dimensionless" {
            env.dimensionless.push(name.to_string());
        } else if let Some(u) = Unit::from_tag(&tag) {
            env.tagged.insert(name.to_string(), u);
        } else {
            issues.push(EnvIssue { line: c.line, tag, unknown_tag: true });
        }
    }

    // `name : KnownType` ascriptions (bindings, fields, parameters).
    for w in toks.windows(3) {
        let [n, colon, ty] = w else { continue };
        if n.kind == TokKind::Ident && colon.is_punct(":") && ty.kind == TokKind::Ident {
            if let Some((_, u)) = TYPE_UNITS.iter().find(|(t, _)| ty.is_ident(t)) {
                env.tagged.insert(n.text.clone(), *u);
            }
        }
    }
    (env, issues)
}

/// Visitor that flags mixed-unit same-dimension operators in every run.
struct Mix<'a> {
    file: &'a SourceFile,
    env: &'a Env,
    findings: Vec<(usize, String)>,
}

impl RunVisitor for Mix<'_> {
    fn run(&mut self, nodes: &[Node], _depth: usize) {
        for (i, n) in nodes.iter().enumerate() {
            let Some(op) = n.tok().filter(|t| t.kind == TokKind::Punct) else { continue };
            if !SAME_DIM_OPS.contains(&op.text.as_str()) {
                continue;
            }
            if in_test(self.file, op.line) {
                continue;
            }
            // Bare `<` / `>` double as generic brackets; require spacing
            // on both sides before reading them as comparisons.
            if matches!(op.text.as_str(), "<" | ">") {
                let spaced_left = nodes.get(i.wrapping_sub(1)).and_then(Node::tok).is_none_or(
                    |p| p.line != op.line || p.end_col() < op.col,
                );
                let spaced_right = nodes.get(i + 1).is_none_or(|nx| {
                    let (l, c) = match nx {
                        Node::Tok(t) => (t.line, t.col),
                        Node::Group(g) => (g.line, g.col),
                    };
                    l != op.line || c > op.col + 1
                });
                if !(spaced_left && spaced_right) {
                    continue;
                }
            }
            let Some(lhs) = term_before(nodes, i) else { continue };
            let Some(rhs) = term_after(nodes, i + 1) else { continue };
            let (Some(lu), Some(ru)) =
                (self.env.unit_of(&lhs.key), self.env.unit_of(&rhs.key))
            else {
                continue;
            };
            if lu != ru {
                self.findings.push((
                    op.line,
                    format!(
                        "`{}` ({}) {} `{}` ({}) mixes units of measure",
                        lhs.text,
                        lu.label(),
                        op.text,
                        rhs.text,
                        ru.label()
                    ),
                ));
            }
        }
    }
}

/// Runs the rule over one parsed file.
pub fn check(file: &SourceFile, ast: &Ast, report: &mut Report) {
    let (env, issues) = build_env(ast);
    for i in issues.iter().filter(|i| i.unknown_tag) {
        emit(
            file,
            i.line,
            UNIT_MIX,
            format!(
                "unknown unit tag `{}` in `audit:unit(…)`; \
                 expected kwh, kw, usd, or dimensionless",
                i.tag
            ),
            report,
        );
    }
    let mut v = Mix { file, env: &env, findings: Vec::new() };
    crate::ast::visit::walk_runs(&ast.nodes, &mut v);
    for (line, msg) in v.findings {
        emit(file, line, UNIT_MIX, msg, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Report {
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let ast = Ast::parse("crates/core/src/x.rs", src);
        let mut r = Report::default();
        check(&file, &ast, &mut r);
        r
    }

    #[test]
    fn suffix_mix_is_flagged() {
        let r = lint("fn f(a_kwh: f64, b_usd: f64) -> f64 { a_kwh + b_usd }\n");
        assert_eq!(r.unwaived_count(), 1, "{r}");
        assert!(r.violations[0].message.contains("kWh"));
        assert!(r.violations[0].message.contains("USD"));
    }

    #[test]
    fn same_unit_and_unknown_terms_pass() {
        let r = lint(
            "fn f(a_kwh: f64, b_kwh: f64, x: f64) -> f64 { a_kwh + b_kwh + x }\n",
        );
        assert_eq!(r.unwaived_count(), 0, "{r}");
    }

    #[test]
    fn multiplication_changes_dimension_and_passes() {
        let r = lint("fn f(price_usd_per_kwh: f64, e_kwh: f64) -> f64 { price_usd_per_kwh * e_kwh }\n");
        assert_eq!(r.unwaived_count(), 0, "{r}");
    }

    #[test]
    fn annotation_tags_a_binding() {
        let src = "\
fn f(y: f64, cost_usd: f64) -> f64 {
    // audit:unit(kwh)
    let q = y;
    q + cost_usd
}
";
        let r = lint(src);
        assert_eq!(r.unwaived_count(), 1, "{r}");
        assert!(r.violations[0].message.contains("`q` (kWh)"), "{r}");
    }

    #[test]
    fn dimensionless_annotation_suppresses_suffix() {
        let src = "\
fn f(b_usd: f64) -> f64 {
    // audit:unit(dimensionless)
    let scale_kwh = 2.0;
    scale_kwh + b_usd
}
";
        let r = lint(src);
        assert_eq!(r.unwaived_count(), 0, "{r}");
    }

    #[test]
    fn unknown_tag_is_itself_a_finding() {
        let r = lint("// audit:unit(joules)\nlet q = 1.0;\n");
        assert_eq!(r.unwaived_count(), 1, "{r}");
        assert!(r.violations[0].message.contains("unknown unit tag"));
    }

    #[test]
    fn generics_are_not_comparisons() {
        let r = lint("fn f(xs: Vec<f64>, total_kwh: f64, c_usd: f64) {}\n");
        assert_eq!(r.unwaived_count(), 0, "{r}");
    }

    #[test]
    fn spaced_comparison_between_units_is_flagged() {
        let r = lint("fn f(p_kw: f64, e_kwh: f64) -> bool { p_kw < e_kwh }\n");
        assert_eq!(r.unwaived_count(), 1, "{r}");
    }

    #[test]
    fn compound_assignment_is_covered() {
        let r = lint("fn f(mut total_usd: f64, e_kwh: f64) { total_usd += e_kwh; }\n");
        assert_eq!(r.unwaived_count(), 1, "{r}");
    }

    #[test]
    fn waiver_applies() {
        let src = "\
fn f(a_kwh: f64, b_usd: f64) -> f64 {
    // Lyapunov drift-plus-penalty deliberately mixes dimensions. audit:allow(unit-mix)
    a_kwh + b_usd
}
";
        let r = lint(src);
        assert_eq!(r.unwaived_count(), 0, "{r}");
        assert_eq!(r.waived_count(), 1);
    }

    #[test]
    fn known_type_ascription_tags_binding() {
        let r = lint("fn f(e: EnergyKwh, c: CostUsd) -> f64 { e + c }\n");
        assert_eq!(r.unwaived_count(), 1, "{r}");
    }

    #[test]
    fn tests_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(a_kwh: f64, b_usd: f64) -> f64 { a_kwh + b_usd }
}
";
        let r = lint(src);
        assert_eq!(r.unwaived_count(), 0, "{r}");
    }
}
