//! Deprecated-use fixture, paired with `deprecated_def.rs`: every use
//! outside the defining file must migrate or carry an explicit waiver —
//! test code included.

fn builds_the_old_facade() -> OldFacade {
    OldFacade { total: 0.0 }
}

fn reads_the_mirror(s: &Stats) -> usize {
    s.last_iters
}

#[cfg(test)]
mod tests {
    #[test]
    fn honored_compat_waiver() {
        // audit:allow(deprecated-api)
        let f = OldFacade { total: 1.0 };
        assert!(f.total >= 0.0);
    }

    #[test]
    fn mismatched_waiver_stays_unwaived() {
        // audit:allow(unit-mix)
        let _ = OldFacade { total: 2.0 };
    }
}
