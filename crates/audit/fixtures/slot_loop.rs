//! Fixture: hand-rolled slot loops that bypass the streaming engine.
//! Linted by `tests/lint_fixtures.rs`; never compiled.

pub fn simulate_by_hand(trace: &[f64]) -> f64 {
    let mut total = 0.0;
    for t in 0..trace.len() {
        total += trace[t];
    }
    total
}

pub fn drive_env(env_trace: &[f64]) -> f64 {
    let mut acc = 0.0;
    for slot in 0..env_trace.len() {
        acc += env_trace[slot];
    }
    acc
}

pub fn plan_by_hand(num_slots: usize) -> usize {
    let mut n = 0;
    for t in 0..num_slots {
        n += t;
    }
    n
}

pub fn plain_index_loop(parts: &[f64]) -> f64 {
    let mut s = 0.0;
    for pi in 0..parts.len() {
        s += parts[pi];
    }
    s
}

pub fn waived_planner(trace: &[f64]) -> f64 {
    let mut dual = 0.0;
    // Offline dual sweep over the whole horizon. audit:allow(slot-loop)
    for t in 0..trace.len() {
        dual += trace[t];
    }
    dual
}
