//! Fixture: heap allocations inside and outside declared hot-path regions.
//! Linted by `tests/lint_fixtures.rs`; never compiled.

pub fn build_scratch(n: usize) -> Vec<f64> {
    Vec::with_capacity(n)
}

// audit:hot-path: begin — per-proposal delta update
pub fn delta_update(counts: &mut [usize], state: &[usize]) -> Vec<usize> {
    let snapshot = state.to_vec();
    counts[0] += 1;
    let label = format!("step {}", counts[0]);
    drop(label);
    snapshot
}

pub fn delta_update_clean(counts: &mut [usize], scratch: &mut Vec<f64>) {
    scratch.clear();
    scratch.push(counts[0] as f64);
}

pub fn delta_update_waived(state: &[usize]) -> Vec<usize> {
    // One-time cache insert, not the per-proposal path. audit:allow(hot-alloc)
    state.to_vec()
}
// audit:hot-path: end

pub fn report(xs: &[f64]) -> String {
    xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",")
}
