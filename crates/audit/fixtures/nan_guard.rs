//! Fixture: NaN-capable operations with and without nearby guards. Linted
//! by `tests/lint_fixtures.rs` under a pretend hot-path name; never compiled.

pub fn entropy_term(p: f64) -> f64 {
    p.ln()
}

pub fn rms(total: f64) -> f64 {
    total.sqrt()
}

pub fn mean(sum: f64, count: f64) -> f64 {
    sum / count
}

pub fn safe_entropy(p: f64) -> f64 {
    assert!(p > 0.0, "probability must be positive");
    p.ln()
}

pub fn safe_mean(sum: f64, count: f64) -> f64 {
    sum / count.max(1.0)
}

pub fn unit_scale(x: f64) -> f64 {
    x / 2.0
}

pub fn documented_ratio(num: f64, den: f64) -> f64 {
    // Caller contract: den is a strictly positive price. audit:allow(nan-guard)
    num / den
}
