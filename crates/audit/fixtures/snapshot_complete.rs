//! Fixture: snapshot/restore field-coverage defects.
//!
/// Checkpointed controller with deliberate coverage gaps.
pub struct Ctl {
    gain: f64,
    lost: f64,
    // audit:transient(scratch buffer rebuilt on first use)
    scratch: Vec<f64>,
    // audit:transient()
    half: f64,
    // audit:transient(stale: snapshot and restore both carry this)
    carried: f64,
    snap_only: f64,
}

impl Ctl {
    pub fn snapshot(&self) -> Vec<f64> {
        vec![self.gain, self.carried, self.snap_only]
    }

    pub fn restore(&mut self, s: &[f64]) {
        self.gain = s[0];
        self.carried = s[1];
    }
}
