//! Fixture: direct prints in library code. Linted by
//! `tests/lint_fixtures.rs`; never compiled.

pub fn report_progress(t: usize) {
    println!("slot {t}");
}

pub fn warn_resume(path: &str) {
    eprintln!("resume from {path}");
}

pub fn debug_dump(x: f64) {
    let _ = dbg!(x);
}

pub fn partial(msg: &str) {
    print!("{msg}");
}

pub fn waived(msg: &str) {
    // Operator-facing CLI output by design. audit:allow(no-print)
    eprintln!("{msg}");
}

#[cfg(test)]
mod tests {
    pub fn chatter() {
        println!("test chatter is fine");
    }
}
