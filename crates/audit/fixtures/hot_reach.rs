//! Hot-reach fixture: a hot region whose helpers allocate out of sight,
//! plus a mutually recursive pair proving the traversal terminates.

/// Innocent-looking refresh: the allocation is one more call down.
fn refresh(n: usize) -> Vec<f64> {
    rebuild(n)
}

/// The hidden allocation, two calls from the hot region.
fn rebuild(n: usize) -> Vec<f64> {
    Vec::with_capacity(n)
}

/// Mutually recursive pair with a sink; reachability must terminate.
fn ping(n: usize) -> usize {
    if n < 1 {
        return 0;
    }
    pong(n - 1)
}

/// The other half of the cycle.
fn pong(n: usize) -> usize {
    let label = n.to_string();
    label.len() + ping(n - 1)
}

// audit:hot-path: begin — fixture delta update
/// The hot region: the direct allocation belongs to `hot-alloc`; the
/// reachable ones belong to `hot-path-reach`.
pub fn hot_step(n: usize) -> usize {
    let scratch = refresh(n);
    let direct = format!("{n}");
    ping(n) + scratch.len() + direct.len()
}
// audit:hot-path: end
