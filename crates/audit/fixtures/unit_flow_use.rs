//! Unit-flow fixture, consumer side: every defect here is invisible to
//! the per-file `unit-mix` rule and needs the cross-file summaries.

/// Books a slot's figures; both defects need the call graph.
pub fn book(trace: &[f64], price_usd: f64) -> f64 {
    let spent = add_cost(total_energy(trace), 1.0);
    let gap = total_energy(trace) - price_usd;
    spent + gap
}

/// Feeds `scale` a kWh at one site…
pub fn scale_energy(load_kwh: f64) -> f64 {
    scale(load_kwh, 2.0)
}

/// …and a USD at another: `amount` is inferred to conflicting units.
pub fn scale_cost(fee_usd: f64) -> f64 {
    scale(fee_usd, 2.0)
}

/// A waived call site: the waiver is load-bearing and must not go stale.
pub fn book_waived(trace: &[f64]) -> f64 {
    add_cost(total_energy(trace), 1.0) // audit:allow(unit-flow)
}
