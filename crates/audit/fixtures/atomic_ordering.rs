//! Atomic-ordering fixture: contract annotations, CAS ordering sanity,
//! dropped results, scope (a non-atomic `load` is ignored), and both
//! waiver outcomes (honored and mismatched-therefore-unused).

use std::sync::atomic::{AtomicU64, Ordering};

fn unannotated(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

fn annotated(c: &AtomicU64) {
    // audit:atomic(statistics counter; relaxed on purpose)
    c.store(1, Ordering::Relaxed);
}

fn empty_contract(c: &AtomicU64) {
    // audit:atomic()
    c.store(2, Ordering::Relaxed);
}

fn failure_stronger(c: &AtomicU64) -> bool {
    // audit:atomic(one-shot claim; the failure ordering here is the bug under test)
    c.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire).is_ok()
}

fn dropped_result(c: &AtomicU64) {
    // audit:atomic(racy init; the ignored result is the bug under test)
    c.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
}

fn config_load_is_out_of_scope(cfg: &Loader) -> u64 {
    cfg.load(42)
}

fn honored_waiver(c: &AtomicU64) {
    // audit:allow(atomic-ordering)
    c.store(3, Ordering::SeqCst);
}

fn mismatched_waiver_stays_unwaived(c: &AtomicU64) -> u64 {
    // audit:allow(no-print)
    c.load(Ordering::Acquire)
}
