//! Fixture: panic-capable calls in solver hot-path code. Linted by
//! `tests/lint_fixtures.rs` under a pretend hot-path name; never compiled.

pub fn pick(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("needs two entries");
    if xs.len() > 9 {
        panic!("too many entries");
    }
    match first.partial_cmp(second) {
        Some(ord) => ord as i32 as f64,
        None => unreachable!("NaN filtered upstream"),
    }
}

pub fn contained(xs: &[f64]) -> f64 {
    // Upstream validation guarantees a non-empty slice. audit:allow(no-panic)
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panicking_is_fine_in_test_regions() {
        let xs = [1.0, 2.0];
        let _ = super::pick(&xs);
        xs.first().unwrap();
    }
}
