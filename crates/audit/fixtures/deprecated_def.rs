//! Deprecated-definitions fixture, paired with `deprecated_use.rs`: the
//! defining file keeps its own mirrors in sync and is exempt by design.

#[deprecated(note = "use the engine instead")]
pub struct OldFacade {
    pub total: f64,
}

pub struct Stats {
    #[deprecated(note = "read stats() instead")]
    pub last_iters: usize,
}

impl Stats {
    fn sync(&mut self) {
        self.last_iters = 0;
    }
}
