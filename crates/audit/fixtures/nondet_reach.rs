//! Fixture: nondeterminism reachable from state-affecting roots —
//! hash-ordered iteration (direct, two-hop, through a cycle), wall-clock
//! reads, suppression by sorting, and waiver/staleness interplay.

use std::collections::HashMap;

/// Direct: a root iterating a hash map into its serialized output.
pub fn to_json(index: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for (k, v) in index {
        out.push_str(k);
        let _ = v;
    }
    out
}

/// Two-hop: the sink sits in a helper the root calls.
pub fn encode(m: &HashMap<String, u32>) -> usize {
    walk(m)
}

fn walk(m: &HashMap<String, u32>) -> usize {
    m.iter().count()
}

/// Cycle: ping/pong recursion must terminate, sink reported once.
pub fn run_id(m: &HashMap<String, u32>, depth: usize) -> usize {
    ping(m, depth)
}

fn ping(m: &HashMap<String, u32>, depth: usize) -> usize {
    if depth == 0 {
        return m.keys().count();
    }
    pong(m, depth)
}

fn pong(m: &HashMap<String, u32>, depth: usize) -> usize {
    ping(m, depth - 1)
}

/// Wall-clock read directly in a root.
pub fn sweep(n: usize) -> usize {
    let t0 = std::time::Instant::now();
    let _ = t0;
    n
}

/// Suppressed: collected and sorted before order can matter.
pub fn materialize(m: &HashMap<String, u32>) -> Vec<String> {
    let mut keys: Vec<String> = m.keys().cloned().collect();
    keys.sort();
    keys
}

/// Waived: order provably cannot reach the output.
pub fn to_line(m: &HashMap<String, u32>) -> usize {
    // audit:ordered(count is order-independent)
    m.values().count()
}

/// Stale: the annotation below excuses nothing.
pub fn helper_only() -> usize {
    // audit:ordered(left over after the map iteration was removed)
    1 + 1
}

/// Not reachable from any root: no finding despite the iteration.
fn offline(m: &HashMap<String, u32>) -> usize {
    m.iter().count()
}
