//! Stale-waiver fixture: one live waiver, one stale, one unknown rule
//! id, unbound annotations, and a deliberately-kept waiver.

/// Live: the raw comparison below genuinely fires `float-eq`.
pub fn live(a: f64) -> bool {
    a == 0.0 // audit:allow(float-eq)
}

/// Stale: nothing here fires `no-panic` (wrong file for that rule).
pub fn stale(n: usize) -> usize {
    n + 1 // audit:allow(no-panic)
}

/// Unknown rule id in the waiver list.
pub fn unknown(n: usize) -> usize {
    n + 2 // audit:allow(not-a-rule)
}

/// Kept: stale but deliberately so, and waived as such.
pub fn kept(n: usize) -> usize {
    n + 3 // audit:allow(hot-alloc) audit:allow(stale-waiver)
}

// audit:unit(kwh)

// audit:atomic(relaxed counter)
pub fn not_atomic(n: usize) -> usize {
    n + 4
}
