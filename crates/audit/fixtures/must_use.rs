//! Fixture: solver result types and the `#[must_use]` requirement. Linted
//! by `tests/lint_fixtures.rs` under a pretend `crates/opt` path; never
//! compiled.

/// A result type missing the annotation.
pub struct FixtureSolution {
    /// Payload.
    pub value: f64,
}

/// Properly annotated result type.
#[must_use]
pub struct FixtureOutcome {
    /// Payload.
    pub total: f64,
}

/// Not a result type; no annotation required.
pub struct FixtureConfig {
    /// Payload.
    pub scale: f64,
}

/// Intentionally unannotated; consumed only by fixtures.
// audit:allow(must-use)
pub struct FixtureResult {
    /// Payload.
    pub flag: bool,
}
