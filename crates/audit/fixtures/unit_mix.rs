//! Unit-mix fixture: suffix inference, annotation binding, ratio names,
//! and both waiver outcomes (honored and mismatched-therefore-unused).

fn suffix_mix(battery_kwh: f64, total_usd: f64) -> f64 {
    battery_kwh + total_usd
}

fn annotated_binding(cost_usd: f64) -> bool {
    // audit:unit(kwh)
    let drained = 3.0;
    drained < cost_usd
}

fn same_unit_is_quiet(a_kwh: f64, b_kwh: f64) -> f64 {
    a_kwh + b_kwh
}

fn ratios_cancel(price_usd_per_kwh: f64, e_kwh: f64) -> f64 {
    price_usd_per_kwh * e_kwh
}

fn dimensionless_override_is_quiet(b_usd: f64) -> f64 {
    // audit:unit(dimensionless)
    let scale_kwh = 2.0;
    scale_kwh + b_usd
}

fn honored_waiver(a_kwh: f64, b_usd: f64) -> f64 {
    // drift-plus-penalty mixes on purpose: audit:allow(unit-mix)
    a_kwh + b_usd
}

fn mismatched_waiver_stays_unwaived(p_kw: f64, c_usd: f64) -> f64 {
    // audit:allow(float-eq)
    p_kw - c_usd
}
