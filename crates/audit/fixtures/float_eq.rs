//! Fixture: raw floating-point equality comparisons. Linted by
//! `tests/lint_fixtures.rs`; never compiled.

pub fn at_origin(power: f64) -> bool {
    power == 0.0
}

pub fn not_reset(q: f64) -> bool {
    q != 0.0
}

pub fn scaled_hit(x: f64, target: f64) -> bool {
    x * 1.5 == target
}

pub fn integer_compare(n: usize, m: usize) -> bool {
    n == m
}

pub fn multiplicity_is_unit(m: f64) -> bool {
    // Exact integer stored in an f64; equality is intended. audit:allow(float-eq)
    m == 1.0
}
