//! Unit-flow fixture, library side: functions whose units are only
//! visible through return expressions and parameter names.

/// Sums the energy drawn over a trace. The unit lives on the local
/// binding — callers only ever see a bare `total_energy(trace)` call.
pub fn total_energy(trace: &[f64]) -> f64 {
    let mut drawn_kwh = 0.0;
    for x in trace {
        drawn_kwh += x;
    }
    drawn_kwh
}

/// Accumulates a cost sample into the running total.
pub fn add_cost(total_usd: f64, sample: f64) -> f64 {
    total_usd + sample
}

/// Scales a reading; the first parameter deliberately carries no unit.
pub fn scale(amount: f64, factor: f64) -> f64 {
    amount * factor
}
