//! Fixture: idiomatic hot-path code that passes every audit rule. Linted
//! by `tests/lint_fixtures.rs` under a pretend hot-path name; never
//! compiled.

/// Tolerance-based comparison instead of raw equality.
pub fn converged(residual: f64, tol: f64) -> bool {
    residual.abs() <= tol
}

/// Guarded logarithm.
pub fn log_score(p: f64) -> f64 {
    assert!(p > 0.0);
    p.ln()
}

/// Floored divisor.
pub fn ratio(num: f64, den: f64) -> f64 {
    num / den.max(1e-12)
}

/// Annotated result type.
#[must_use]
pub struct CleanSolution {
    /// Payload.
    pub value: f64,
}
