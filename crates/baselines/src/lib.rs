//! # coca-baselines — comparison policies from the paper's evaluation
//!
//! * [`carbon_unaware`] — minimizes the instantaneous cost `g(t)` with no
//!   regard for carbon neutrality; the paper normalizes energy budgets
//!   against this policy's annual consumption (Sec. 5.1) and it is the
//!   `V → ∞` limit of COCA (Fig. 2).
//! * [`perfect_hp`] — **PerfectHP**, the state-of-the-art prediction-based
//!   heuristic COCA is compared against in Fig. 3: perfect 48-hour-ahead
//!   workload prediction, carbon budget allocated to hours in proportion to
//!   predicted workload, per-hour budget enforced when feasible.
//! * [`offline_opt`] — **OPT**, the offline benchmark of Fig. 5: full
//!   trace knowledge, long-term budget enforced via Lagrangian dual
//!   bisection (and a T-step lookahead variant implementing the paper's
//!   **P2** family).
//! * [`budgeted`] — the shared building block: exactly solve
//!   "minimize g(t) subject to a per-slot brown-energy cap" by searching
//!   the cap's multiplier.

#![deny(missing_docs, unsafe_code)]

pub mod budgeted;
pub mod carbon_unaware;
pub mod offline_opt;
pub mod perfect_hp;

pub use carbon_unaware::CarbonUnaware;
pub use offline_opt::OfflineOpt;
pub use perfect_hp::PerfectHp;
