//! The carbon-unaware cost minimizer.
//!
//! Minimizes the instantaneous cost `g(t) = e(t) + β·d(t)` every slot with
//! no long-term constraint — the `V → ∞` limit of COCA (paper Sec. 5.2.1).
//! The paper uses this policy's annual electricity consumption
//! (1.55×10⁵ MWh in their setup) as the normalization for all energy
//! budgets; run it through the engine like any other policy to obtain that
//! reference quantity (`SimOutcome::total_brown_energy`). The bespoke
//! `simulate`/`annual_consumption` shortcuts were removed with the
//! `SimEngine` refactor — all five controllers run exclusively through the
//! [`Policy`] trait.

use std::sync::Arc;

use coca_core::solver::P3Solver;
use coca_dcsim::dispatch::SlotProblem;
use coca_dcsim::{Cluster, CostParams, Decision, Policy, SimError, SlotObservation};
use serde::Value;

/// Per-slot cost minimizer without carbon awareness.
pub struct CarbonUnaware<S> {
    // audit:transient(fixed at construction; the host rebuilds the policy before restore)
    cluster: Arc<Cluster>,
    // audit:transient(immutable cost model, part of the construction config)
    cost: CostParams,
    solver: S,
}

impl<S: P3Solver> CarbonUnaware<S> {
    /// Creates the policy.
    pub fn new(cluster: Arc<Cluster>, cost: CostParams, solver: S) -> Self {
        cost.validate().expect("valid CostParams");
        Self { cluster, cost, solver }
    }
}

impl<S: P3Solver> Policy for CarbonUnaware<S> {
    fn name(&self) -> &str {
        "carbon-unaware"
    }

    fn decide(&mut self, obs: &SlotObservation) -> coca_dcsim::Result<Decision> {
        let problem = SlotProblem {
            cluster: &self.cluster,
            arrival_rate: obs.arrival_rate,
            onsite: obs.onsite,
            energy_weight: obs.price,
            delay_weight: self.cost.beta,
            gamma: self.cost.gamma,
            pue: self.cost.pue,
        };
        let sol = self.solver.solve(&problem)?;
        // Paper-invariant hooks: constraints (8)–(9) hold for baselines too.
        coca_core::invariant::global().decision(
            &sol.levels,
            &sol.loads,
            &self.cluster.choice_counts(),
            obs.arrival_rate,
        );
        Ok(Decision { levels: sol.levels, loads: sol.loads })
    }

    fn reset(&mut self) {
        self.solver.reset();
    }

    /// Only the solver carries evolving state (warm starts).
    fn snapshot(&self) -> coca_dcsim::Result<Value> {
        Ok(Value::Map(vec![("solver".to_string(), self.solver.snapshot_state()?)]))
    }

    fn restore(&mut self, state: &Value) -> coca_dcsim::Result<()> {
        let solver = state.get_field("solver").ok_or_else(|| {
            SimError::InvalidConfig("carbon-unaware snapshot missing field `solver`".into())
        })?;
        self.solver.restore_state(solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::symmetric::SymmetricSolver;
    use coca_dcsim::run_lockstep;
    use coca_traces::{EnvironmentTrace, TraceConfig};

    fn setup() -> (Arc<Cluster>, EnvironmentTrace) {
        let cluster = Arc::new(Cluster::homogeneous(4, 20));
        let trace = TraceConfig {
            hours: 96,
            peak_arrival_rate: 400.0,
            onsite_energy_kwh: 30.0,
            offsite_energy_kwh: 60.0,
            ..Default::default()
        }
        .generate();
        (cluster, trace)
    }

    fn run(
        cluster: &Arc<Cluster>,
        trace: &EnvironmentTrace,
        rec_total: f64,
    ) -> coca_dcsim::SimOutcome {
        let cost = CostParams::default();
        let policy = CarbonUnaware::new(Arc::clone(cluster), cost, SymmetricSolver::new());
        run_lockstep(Arc::clone(cluster), trace, cost, rec_total, vec![Box::new(policy)])
            .unwrap()
            .pop()
            .unwrap()
    }

    #[test]
    fn simulates_cleanly() {
        let (cluster, trace) = setup();
        let out = run(&cluster, &trace, 0.0);
        assert_eq!(out.len(), 96);
        assert!(out.avg_hourly_cost() > 0.0);
        assert_eq!(out.policy, "carbon-unaware");
    }

    #[test]
    fn consumption_positive_and_stable() {
        let (cluster, trace) = setup();
        let a = run(&cluster, &trace, 0.0).total_brown_energy();
        let b = run(&cluster, &trace, 0.0).total_brown_energy();
        assert!(a > 0.0);
        assert!((a - b).abs() < 1e-9, "deterministic");
    }

    #[test]
    fn ignores_rec_total_for_decisions() {
        let (cluster, trace) = setup();
        let lo = run(&cluster, &trace, 0.0);
        let hi = run(&cluster, &trace, 1e9);
        assert_eq!(lo.cost_series(), hi.cost_series());
        assert!(lo.avg_hourly_deficit() > hi.avg_hourly_deficit(), "only reporting differs");
    }

    #[test]
    fn snapshot_carries_solver_warm_state() {
        let (cluster, _) = setup();
        let cost = CostParams::default();
        let mut p = CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new());
        let obs = SlotObservation { t: 0, arrival_rate: 200.0, onsite: 0.0, price: 0.05 };
        let _ = p.decide(&obs).unwrap();
        let snap = p.snapshot().unwrap();
        assert!(snap.get_field("solver").is_some());
        let mut q = CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new());
        q.restore(&snap).unwrap();
        assert_eq!(
            p.decide(&obs).unwrap().levels,
            q.decide(&obs).unwrap().levels,
            "restored policy decides identically"
        );
        assert!(q.restore(&Value::Null).is_err(), "malformed snapshot rejected");
    }
}
