//! The carbon-unaware cost minimizer.
//!
//! Minimizes the instantaneous cost `g(t) = e(t) + β·d(t)` every slot with
//! no long-term constraint — the `V → ∞` limit of COCA (paper Sec. 5.2.1).
//! The paper uses this policy's annual electricity consumption
//! (1.55×10⁵ MWh in their setup) as the normalization for all energy
//! budgets; [`CarbonUnaware::annual_consumption`] computes the same
//! reference quantity for a trace.

use coca_core::solver::P3Solver;
use coca_dcsim::dispatch::SlotProblem;
use coca_dcsim::{
    Cluster, CostParams, Decision, Policy, SimOutcome, SlotObservation, SlotSimulator,
};
use coca_traces::EnvironmentTrace;

/// Per-slot cost minimizer without carbon awareness.
pub struct CarbonUnaware<'a, S> {
    cluster: &'a Cluster,
    cost: CostParams,
    solver: S,
}

impl<'a, S: P3Solver> CarbonUnaware<'a, S> {
    /// Creates the policy.
    pub fn new(cluster: &'a Cluster, cost: CostParams, solver: S) -> Self {
        cost.validate().expect("valid CostParams");
        Self { cluster, cost, solver }
    }

    /// Runs the policy over a trace and returns the full outcome. The
    /// `rec_total` only affects deficit reporting, not decisions.
    pub fn simulate(
        cluster: &'a Cluster,
        cost: CostParams,
        trace: &EnvironmentTrace,
        solver: S,
        rec_total: f64,
    ) -> coca_dcsim::Result<SimOutcome> {
        let mut policy = Self::new(cluster, cost, solver);
        SlotSimulator::new(cluster, trace, cost, rec_total).run(&mut policy)
    }

    /// Total brown energy (kWh) the carbon-unaware policy consumes over the
    /// trace — the paper's budget-normalization reference.
    pub fn annual_consumption(
        cluster: &'a Cluster,
        cost: CostParams,
        trace: &EnvironmentTrace,
        solver: S,
    ) -> coca_dcsim::Result<f64> {
        Ok(Self::simulate(cluster, cost, trace, solver, 0.0)?.total_brown_energy())
    }
}

impl<S: P3Solver> Policy for CarbonUnaware<'_, S> {
    fn name(&self) -> &str {
        "carbon-unaware"
    }

    fn decide(&mut self, obs: &SlotObservation) -> coca_dcsim::Result<Decision> {
        let problem = SlotProblem {
            cluster: self.cluster,
            arrival_rate: obs.arrival_rate,
            onsite: obs.onsite,
            energy_weight: obs.price,
            delay_weight: self.cost.beta,
            gamma: self.cost.gamma,
            pue: self.cost.pue,
        };
        let sol = self.solver.solve(&problem)?;
        // Paper-invariant hooks: constraints (8)–(9) hold for baselines too.
        coca_core::invariant::global().decision(
            &sol.levels,
            &sol.loads,
            &self.cluster.choice_counts(),
            obs.arrival_rate,
        );
        Ok(Decision { levels: sol.levels, loads: sol.loads })
    }

    fn reset(&mut self) {
        self.solver.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::symmetric::SymmetricSolver;
    use coca_traces::TraceConfig;

    fn setup() -> (Cluster, EnvironmentTrace) {
        let cluster = Cluster::homogeneous(4, 20);
        let trace = TraceConfig {
            hours: 96,
            peak_arrival_rate: 400.0,
            onsite_energy_kwh: 30.0,
            offsite_energy_kwh: 60.0,
            ..Default::default()
        }
        .generate();
        (cluster, trace)
    }

    #[test]
    fn simulates_cleanly() {
        let (cluster, trace) = setup();
        let out = CarbonUnaware::simulate(
            &cluster,
            CostParams::default(),
            &trace,
            SymmetricSolver::new(),
            0.0,
        )
        .unwrap();
        assert_eq!(out.len(), 96);
        assert!(out.avg_hourly_cost() > 0.0);
        assert_eq!(out.policy, "carbon-unaware");
    }

    #[test]
    fn annual_consumption_positive_and_stable() {
        let (cluster, trace) = setup();
        let a = CarbonUnaware::annual_consumption(
            &cluster,
            CostParams::default(),
            &trace,
            SymmetricSolver::new(),
        )
        .unwrap();
        let b = CarbonUnaware::annual_consumption(
            &cluster,
            CostParams::default(),
            &trace,
            SymmetricSolver::new(),
        )
        .unwrap();
        assert!(a > 0.0);
        assert!((a - b).abs() < 1e-9, "deterministic");
    }

    #[test]
    fn ignores_rec_total_for_decisions() {
        let (cluster, trace) = setup();
        let lo = CarbonUnaware::simulate(
            &cluster,
            CostParams::default(),
            &trace,
            SymmetricSolver::new(),
            0.0,
        )
        .unwrap();
        let hi = CarbonUnaware::simulate(
            &cluster,
            CostParams::default(),
            &trace,
            SymmetricSolver::new(),
            1e9,
        )
        .unwrap();
        assert_eq!(lo.cost_series(), hi.cost_series());
        assert!(lo.avg_hourly_deficit() > hi.avg_hourly_deficit(), "only reporting differs");
    }
}
