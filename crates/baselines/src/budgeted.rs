//! Budget-constrained per-slot minimization.
//!
//! Both PerfectHP (hourly budget) and OPT (Lagrangian per-slot subproblem)
//! need the same primitive: minimize the slot cost `g = w·y + β·d` with the
//! brown energy `y` either priced at an extra multiplier μ or capped at a
//! budget `b`. The cap is enforced by searching the smallest μ ≥ 0 whose
//! penalized optimum satisfies `y(μ) ≤ b` — exact for the continuous
//! relaxation, near-exact with discrete speeds (quantified in tests).

use coca_core::solver::{P3Solution, P3Solver};
use coca_dcsim::dispatch::SlotProblem;
use coca_dcsim::{Cluster, CostParams, SimError, SlotObservation};
use coca_opt::bisect::{bisect_increasing, grow_upper_bracket, BisectOptions};

/// Builds the per-slot problem that minimizes `g + μ·y`
/// (`A = w + μ`, `W = β`).
pub fn penalized_problem<'a>(
    cluster: &'a Cluster,
    cost: &CostParams,
    obs: &SlotObservation,
    mu: f64,
) -> SlotProblem<'a> {
    SlotProblem {
        cluster,
        arrival_rate: obs.arrival_rate,
        onsite: obs.onsite,
        energy_weight: obs.price + mu,
        delay_weight: cost.beta,
        gamma: cost.gamma,
        pue: cost.pue,
    }
}

/// Minimizes `g + μ·y` for a fixed μ; returns the solution together with
/// the *plain* slot cost `g` (electricity at the market price + weighted
/// delay) and the brown energy `y`.
pub fn solve_penalized<S: P3Solver>(
    solver: &mut S,
    cluster: &Cluster,
    cost: &CostParams,
    obs: &SlotObservation,
    mu: f64,
) -> Result<(P3Solution, f64, f64), SimError> {
    let problem = penalized_problem(cluster, cost, obs, mu);
    let sol = solver.solve(&problem)?;
    // Paper-invariant hook: the penalized subproblem shares constraint (8)
    // with P3 — the solver may not drop load no matter the multiplier.
    coca_core::invariant::global().load_conserved(sol.loads.iter().sum(), obs.arrival_rate);
    let y = sol.outcome.brown;
    let g = obs.price * y + cost.beta * sol.outcome.delay;
    Ok((sol, g, y))
}

/// Outcome of a budget-capped slot solve.
pub struct CappedSlot {
    /// The chosen decision.
    pub solution: P3Solution,
    /// Plain slot cost `g`.
    pub cost: f64,
    /// Brown energy `y`.
    pub brown: f64,
    /// Multiplier that enforced the cap (0 when slack).
    pub mu: f64,
    /// Whether the cap had to be abandoned (unattainable even at extreme μ
    /// — the paper's "if no feasible solution exists for a particular hour,
    /// minimize the cost without considering the hourly carbon budget").
    pub budget_abandoned: bool,
}

/// Minimizes the slot cost subject to `y ≤ budget` (within `rel_tol`).
pub fn solve_capped<S: P3Solver>(
    solver: &mut S,
    cluster: &Cluster,
    cost: &CostParams,
    obs: &SlotObservation,
    budget: f64,
    rel_tol: f64,
) -> Result<CappedSlot, SimError> {
    let budget = budget.max(0.0);
    // μ = 0: unconstrained minimum.
    let (sol0, g0, y0) = solve_penalized(solver, cluster, cost, obs, 0.0)?;
    if y0 <= budget * (1.0 + rel_tol) {
        return Ok(CappedSlot { solution: sol0, cost: g0, brown: y0, mu: 0.0, budget_abandoned: false });
    }
    // Grow an upper bracket for μ; if even extreme μ cannot meet the cap
    // (static power floor), abandon the budget for this hour.
    let mut probe = |mu: f64| -> f64 {
        match solve_penalized(solver, cluster, cost, obs, mu) {
            Ok((_, _, y)) => budget - y,
            Err(_) => f64::NAN,
        }
    };
    let mu_hi = match grow_upper_bracket(obs.price.max(1e-3), &mut probe, 60) {
        Ok(hi) => hi,
        Err(_) => {
            return Ok(CappedSlot {
                solution: sol0,
                cost: g0,
                brown: y0,
                mu: 0.0,
                budget_abandoned: true,
            })
        }
    };
    let opts = BisectOptions {
        x_tol: 1e-12 * mu_hi.max(1.0),
        f_tol: budget.max(1.0) * rel_tol,
        max_iter: 60,
    };
    let mu = bisect_increasing(0.0, mu_hi, &mut probe, opts).map_err(SimError::Opt)?;
    // Land on the feasible side of the discrete jump.
    for candidate in [mu, mu * (1.0 + 1e-6) + 1e-12, mu_hi] {
        let (sol, g, y) = solve_penalized(solver, cluster, cost, obs, candidate)?;
        if y <= budget * (1.0 + 10.0 * rel_tol) {
            return Ok(CappedSlot { solution: sol, cost: g, brown: y, mu: candidate, budget_abandoned: false });
        }
    }
    // Discrete speed sets can leave a small residual violation; report the
    // best effort at the bracket top.
    let (sol, g, y) = solve_penalized(solver, cluster, cost, obs, mu_hi)?;
    Ok(CappedSlot { solution: sol, cost: g, brown: y, mu: mu_hi, budget_abandoned: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::symmetric::SymmetricSolver;

    fn setup() -> (Cluster, CostParams, SlotObservation) {
        let cluster = Cluster::homogeneous(6, 10);
        let cost = CostParams::default();
        let obs = SlotObservation { t: 0, arrival_rate: 200.0, onsite: 0.0, price: 0.05 };
        (cluster, cost, obs)
    }

    #[test]
    fn zero_mu_is_plain_cost_minimum() {
        let (cluster, cost, obs) = setup();
        let mut solver = SymmetricSolver::new();
        let (sol, g, y) = solve_penalized(&mut solver, &cluster, &cost, &obs, 0.0).unwrap();
        assert!(g > 0.0 && y > 0.0);
        assert!((g - (obs.price * y + cost.beta * sol.outcome.delay)).abs() < 1e-9);
    }

    #[test]
    fn higher_mu_reduces_brown_energy() {
        let (cluster, cost, obs) = setup();
        let mut ys = Vec::new();
        for mu in [0.0, 0.05, 0.5, 5.0] {
            let mut solver = SymmetricSolver::new();
            let (_, _, y) = solve_penalized(&mut solver, &cluster, &cost, &obs, mu).unwrap();
            ys.push(y);
        }
        for pair in ys.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "y must not increase with μ: {ys:?}");
        }
    }

    #[test]
    fn slack_budget_returns_unconstrained() {
        let (cluster, cost, obs) = setup();
        let mut solver = SymmetricSolver::new();
        let capped = solve_capped(&mut solver, &cluster, &cost, &obs, 1e9, 1e-6).unwrap();
        assert_eq!(capped.mu, 0.0);
        assert!(!capped.budget_abandoned);
    }

    #[test]
    fn tight_budget_is_enforced() {
        let (cluster, cost, obs) = setup();
        let mut solver = SymmetricSolver::new();
        let unconstrained = solve_capped(&mut solver, &cluster, &cost, &obs, 1e9, 1e-6).unwrap();
        let budget = unconstrained.brown * 0.7;
        let mut solver = SymmetricSolver::new();
        let capped = solve_capped(&mut solver, &cluster, &cost, &obs, budget, 1e-6).unwrap();
        assert!(!capped.budget_abandoned);
        // Discrete speeds: allow a 5% quantization overshoot.
        assert!(
            capped.brown <= budget * 1.05,
            "brown {} exceeds budget {budget}",
            capped.brown
        );
        assert!(capped.cost >= unconstrained.cost - 1e-9, "capping cannot reduce cost");
    }

    #[test]
    fn unattainable_budget_abandoned() {
        let (cluster, cost, obs) = setup();
        // Serving 200 req/s needs servers on; their static power floor can
        // never fit a near-zero budget.
        let mut solver = SymmetricSolver::new();
        let capped = solve_capped(&mut solver, &cluster, &cost, &obs, 1e-6, 1e-6).unwrap();
        assert!(capped.budget_abandoned);
        assert!(capped.brown > 1e-3);
    }

    #[test]
    fn onsite_renewables_make_small_budgets_attainable() {
        let (cluster, cost, mut obs) = setup();
        obs.onsite = 1e6; // covers everything
        let mut solver = SymmetricSolver::new();
        let capped = solve_capped(&mut solver, &cluster, &cost, &obs, 0.0, 1e-6).unwrap();
        assert!(!capped.budget_abandoned);
        assert_eq!(capped.brown, 0.0);
    }
}
