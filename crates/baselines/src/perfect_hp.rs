//! PerfectHP — the prediction-based heuristic of the paper's Fig. 3.
//!
//! From Sec. 5.2.2: *"The data center operator leverages 48-hour-ahead
//! prediction of hourly workloads and allocates the carbon budget (RECs
//! plus offsite renewables, but not including the on-site renewables) in
//! proportion to the hourly workloads. The operator minimizes the cost
//! subject to the allocated hourly carbon budget; if no feasible solution
//! exists for a particular hour (e.g., workload burst), the operator will
//! minimize the cost without considering the hourly carbon budget."*
//!
//! Interpretation (documented in DESIGN.md): the horizon is tiled with
//! 48-hour windows; each window is granted the off-site renewable energy
//! realized within it plus an even share of the RECs (`Z·48/J`), and the
//! window's budget is split across its hours proportionally to the
//! (perfectly predicted) workloads. The prediction really is perfect —
//! that's the paper's point: even with oracle short-term forecasts, myopic
//! budget allocation loses to COCA's deficit-queue feedback.

use std::sync::Arc;

use coca_core::solver::P3Solver;
use coca_dcsim::{Cluster, CostParams, Decision, Policy, SimError, SlotObservation};
use coca_traces::EnvironmentTrace;
use serde::{Deserialize as _, Serialize as _, Value};

use crate::budgeted::solve_capped;

/// The PerfectHP policy.
pub struct PerfectHp<S> {
    // audit:transient(fixed at construction; the host rebuilds the policy before restore)
    cluster: Arc<Cluster>,
    // audit:transient(immutable cost model, part of the construction config)
    cost: CostParams,
    solver: S,
    /// Per-hour carbon budgets, precomputed for the whole horizon.
    // audit:transient(precomputed from the trace at construction, never mutated)
    hourly_budget: Vec<f64>,
    /// Window length (48 h in the paper).
    // audit:transient(construction config, never mutated)
    window: usize,
    /// Hours whose budget had to be abandoned (diagnostics).
    pub abandoned_hours: usize,
}

impl<S: P3Solver> PerfectHp<S> {
    /// Builds the policy from the full trace (used as the oracle predictor)
    /// and the REC total `Z`. `window` is the prediction horizon in slots
    /// (the paper uses 48).
    pub fn new(
        cluster: Arc<Cluster>,
        cost: CostParams,
        trace: &EnvironmentTrace,
        rec_total: f64,
        window: usize,
    ) -> Result<Self, SimError>
    where
        S: Default,
    {
        Self::with_solver(cluster, cost, trace, rec_total, window, S::default())
    }

    /// Same as [`PerfectHp::new`] with an explicit solver.
    pub fn with_solver(
        cluster: Arc<Cluster>,
        cost: CostParams,
        trace: &EnvironmentTrace,
        rec_total: f64,
        window: usize,
        solver: S,
    ) -> Result<Self, SimError> {
        cost.validate()?;
        if window == 0 {
            return Err(SimError::InvalidConfig("window must be positive".into()));
        }
        if trace.is_empty() {
            return Err(SimError::InvalidConfig("empty trace".into()));
        }
        let j = trace.len();
        let mut hourly_budget = vec![0.0; j];
        let mut start = 0;
        while start < j {
            let end = (start + window).min(j);
            let offsite: f64 = trace.offsite[start..end].iter().sum();
            let recs = rec_total * (end - start) as f64 / j as f64;
            let budget = offsite + recs;
            let workload: f64 = trace.workload[start..end].iter().sum();
            for (b, w) in hourly_budget[start..end].iter_mut().zip(&trace.workload[start..end]) {
                *b = if workload > 0.0 { budget * w / workload } else { budget / (end - start) as f64 };
            }
            start = end;
        }
        Ok(Self { cluster, cost, solver, hourly_budget, window, abandoned_hours: 0 })
    }

    /// The hourly budget series (kWh).
    pub fn budgets(&self) -> &[f64] {
        &self.hourly_budget
    }

    /// The prediction window length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl<S: P3Solver> Policy for PerfectHp<S> {
    fn name(&self) -> &str {
        "perfect-hp"
    }

    fn decide(&mut self, obs: &SlotObservation) -> coca_dcsim::Result<Decision> {
        let budget = *self.hourly_budget.get(obs.t).ok_or_else(|| {
            SimError::InvalidConfig(format!(
                "slot {} beyond the planned horizon {}",
                obs.t,
                self.hourly_budget.len()
            ))
        })?;
        let capped = solve_capped(&mut self.solver, &self.cluster, &self.cost, obs, budget, 1e-6)?;
        if capped.budget_abandoned {
            self.abandoned_hours += 1;
        }
        // Paper-invariant hooks: constraints (8)–(9) hold for baselines too.
        coca_core::invariant::global().decision(
            &capped.solution.levels,
            &capped.solution.loads,
            &self.cluster.choice_counts(),
            obs.arrival_rate,
        );
        Ok(Decision { levels: capped.solution.levels, loads: capped.solution.loads })
    }

    fn reset(&mut self) {
        self.abandoned_hours = 0;
        self.solver.reset();
    }

    /// The budget schedule is immutable after construction; only the
    /// abandoned-hour diagnostic and the solver's warm state evolve.
    fn snapshot(&self) -> coca_dcsim::Result<Value> {
        let abandoned = self
            .abandoned_hours
            .serialize_value()
            .map_err(|e| SimError::Internal(format!("perfect-hp snapshot: {e}")))?;
        Ok(Value::Map(vec![
            ("abandoned_hours".to_string(), abandoned),
            ("solver".to_string(), self.solver.snapshot_state()?),
        ]))
    }

    fn restore(&mut self, state: &Value) -> coca_dcsim::Result<()> {
        let field = |name: &str| {
            state.get_field(name).ok_or_else(|| {
                SimError::InvalidConfig(format!("perfect-hp snapshot missing field `{name}`"))
            })
        };
        let abandoned = usize::deserialize_value(field("abandoned_hours")?)
            .map_err(|e| SimError::InvalidConfig(format!("perfect-hp snapshot: {e}")))?;
        self.solver.restore_state(field("solver")?)?;
        self.abandoned_hours = abandoned;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::symmetric::SymmetricSolver;
    use coca_dcsim::run_lockstep;
    use coca_traces::TraceConfig;

    fn setup(hours: usize) -> (Arc<Cluster>, EnvironmentTrace) {
        let cluster = Arc::new(Cluster::homogeneous(4, 20));
        let trace = TraceConfig {
            hours,
            peak_arrival_rate: 400.0,
            onsite_energy_kwh: 0.1 * hours as f64,
            offsite_energy_kwh: 1.5 * hours as f64,
            ..Default::default()
        }
        .generate();
        (cluster, trace)
    }

    #[test]
    fn budgets_sum_to_total_allowance() {
        let (cluster, trace) = setup(96);
        let rec = 50.0;
        let hp: PerfectHp<SymmetricSolver> =
            PerfectHp::new(Arc::clone(&cluster), CostParams::default(), &trace, rec, 48).unwrap();
        let total: f64 = hp.budgets().iter().sum();
        let allowance = trace.total_offsite() + rec;
        assert!((total - allowance).abs() < 1e-6, "{total} vs {allowance}");
    }

    #[test]
    fn budgets_track_workload_within_window() {
        let (cluster, trace) = setup(96);
        let hp: PerfectHp<SymmetricSolver> =
            PerfectHp::new(Arc::clone(&cluster), CostParams::default(), &trace, 10.0, 48).unwrap();
        // Within the first window, the ratio budget/workload is constant.
        let k0 = hp.budgets()[0] / trace.workload[0];
        for t in 1..48 {
            let k = hp.budgets()[t] / trace.workload[t];
            assert!((k - k0).abs() < 1e-9 * k0.abs().max(1.0), "proportional allocation");
        }
    }

    #[test]
    fn runs_over_trace() {
        let (cluster, trace) = setup(96);
        let cost = CostParams::default();
        let hp: PerfectHp<SymmetricSolver> =
            PerfectHp::new(Arc::clone(&cluster), cost, &trace, 30.0, 48).unwrap();
        let out = run_lockstep(Arc::clone(&cluster), &trace, cost, 30.0, vec![Box::new(hp)])
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(out.len(), 96);
        assert!(out.avg_hourly_cost() > 0.0);
    }

    #[test]
    fn generous_budget_behaves_like_carbon_unaware() {
        let (cluster, mut trace) = setup(72);
        // Inflate the off-site series so every hourly budget is slack.
        for f in trace.offsite.iter_mut() {
            *f *= 1e6;
        }
        let cost = CostParams::default();
        let mut hp: PerfectHp<SymmetricSolver> =
            PerfectHp::new(Arc::clone(&cluster), cost, &trace, 0.0, 48).unwrap();
        let cu = crate::carbon_unaware::CarbonUnaware::new(
            Arc::clone(&cluster),
            cost,
            SymmetricSolver::new(),
        );
        // One lockstep engine pass: both lanes see identical observations.
        let mut outs = run_lockstep(
            Arc::clone(&cluster),
            &trace,
            cost,
            0.0,
            vec![Box::new(&mut hp), Box::new(cu)],
        )
        .unwrap();
        let cu_out = outs.pop().unwrap();
        let hp_out = outs.pop().unwrap();
        assert!(
            (hp_out.avg_hourly_cost() - cu_out.avg_hourly_cost()).abs()
                < 1e-6 * cu_out.avg_hourly_cost(),
            "slack budget ⇒ unconstrained behaviour"
        );
        assert_eq!(hp.abandoned_hours, 0);
    }

    #[test]
    fn zero_window_rejected() {
        let (cluster, trace) = setup(24);
        let r: Result<PerfectHp<SymmetricSolver>, _> =
            PerfectHp::new(Arc::clone(&cluster), CostParams::default(), &trace, 0.0, 0);
        assert!(r.is_err());
    }

    #[test]
    fn partial_final_window_handled() {
        let (cluster, trace) = setup(50); // 48 + 2
        let hp: PerfectHp<SymmetricSolver> =
            PerfectHp::new(Arc::clone(&cluster), CostParams::default(), &trace, 100.0, 48).unwrap();
        assert_eq!(hp.budgets().len(), 50);
        let total: f64 = hp.budgets().iter().sum();
        assert!((total - (trace.total_offsite() + 100.0)).abs() < 1e-6);
    }
}
