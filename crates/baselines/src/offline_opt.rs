//! OPT — the offline benchmark with complete future knowledge.
//!
//! Fig. 5 compares COCA against "the optimal offline algorithm (OPT), which
//! has the complete offline information and minimizes the operational cost
//! under carbon neutrality". The long-term constraint
//! `Σ y(t) ≤ budget` is dualized with a multiplier μ ≥ 0; the horizon then
//! decouples into per-slot problems `min g(t) + μ·y(t)` with exactly the
//! P3 shape, and the optimal μ is found by bisection
//! ([`coca_opt::dual::solve_budget_dual`]). For the continuous relaxation
//! this is the exact optimum; with discrete speed ladders the duality gap
//! is tiny (one slot's quantization at the crossover), and the solution is
//! feasible by construction.
//!
//! [`OfflineOpt::plan_lookahead`] plans each frame of `T` slots separately
//! against the frame budget `Σ_frame f(t) + Z/R` — the paper's **P2**
//! family of T-step lookahead benchmarks used in Theorem 2.

use coca_core::solver::P3Solver;
use coca_dcsim::{Cluster, CostParams, Decision, Policy, SimError, SlotObservation};
use coca_opt::dual::{solve_budget_dual, DualOptions};
use coca_traces::EnvironmentTrace;
use serde::{Deserialize as _, Serialize as _, Value};

use crate::budgeted::solve_penalized;

/// A precomputed offline-optimal schedule, replayable as a [`Policy`].
pub struct OfflineOpt {
    // audit:transient(immutable precomputed plan; only the replay cursor is run state)
    decisions: Vec<Decision>,
    /// Speed-set sizes of the cluster the plan was made for (constraint-9
    /// invariant checks at replay time).
    // audit:transient(immutable precomputed plan; only the replay cursor is run state)
    choice_counts: Vec<usize>,
    /// The multiplier(s) found by the dual search, one per planned frame.
    // audit:transient(immutable precomputed plan; only the replay cursor is run state)
    pub multipliers: Vec<f64>,
    /// Plain cost of every planned slot.
    // audit:transient(immutable precomputed plan; only the replay cursor is run state)
    pub planned_costs: Vec<f64>,
    /// Brown energy of every planned slot.
    // audit:transient(immutable precomputed plan; only the replay cursor is run state)
    pub planned_brown: Vec<f64>,
    cursor: usize,
}

impl OfflineOpt {
    /// Plans the whole horizon against a single long-term brown-energy
    /// budget (kWh).
    pub fn plan<S: P3Solver>(
        cluster: &Cluster,
        cost: CostParams,
        trace: &EnvironmentTrace,
        budget: f64,
        solver: &mut S,
    ) -> Result<Self, SimError> {
        Self::plan_lookahead(cluster, cost, trace, budget, trace.len(), solver)
    }

    /// Plans frame-by-frame: each frame of `frame_len` slots gets the
    /// budget share `Σ_frame f(t) + budget_recs/R` where `budget_recs` is
    /// the REC part of the budget. Here the caller passes the *total*
    /// budget; it is apportioned as `budget · frame_hours / J` plus the
    /// difference between the frame's off-site share and the average —
    /// i.e. exactly `Σ_frame f(t) + (budget − Σ f)·frame_hours/J`.
    pub fn plan_lookahead<S: P3Solver>(
        cluster: &Cluster,
        cost: CostParams,
        trace: &EnvironmentTrace,
        budget: f64,
        frame_len: usize,
        solver: &mut S,
    ) -> Result<Self, SimError> {
        cost.validate()?;
        if trace.is_empty() {
            return Err(SimError::InvalidConfig("empty trace".into()));
        }
        if frame_len == 0 {
            return Err(SimError::InvalidConfig("frame length must be positive".into()));
        }
        if !(budget.is_finite() && budget >= 0.0) {
            return Err(SimError::InvalidConfig(format!("budget {budget} invalid")));
        }
        let j = trace.len();
        let total_offsite = trace.total_offsite();
        let rec_part = (budget - total_offsite).max(0.0);

        let mut decisions: Vec<Option<Decision>> = vec![None; j];
        let mut planned_costs = vec![0.0; j];
        let mut planned_brown = vec![0.0; j];
        let mut multipliers = Vec::new();

        let mut start = 0;
        while start < j {
            let end = (start + frame_len).min(j);
            let frame_offsite: f64 = trace.offsite[start..end].iter().sum();
            let frame_budget = if frame_len >= j {
                budget
            } else {
                frame_offsite + rec_part * (end - start) as f64 / j as f64
            };

            // Per-slot dual subproblem: minimize g + μ·y.
            let mut err: Option<SimError> = None;
            let outcome = {
                let mut slot_fn = |slot: usize, mu: f64| -> (f64, f64) {
                    let t = start + slot;
                    let obs = SlotObservation {
                        t,
                        arrival_rate: trace.workload[t],
                        onsite: trace.onsite[t],
                        price: trace.price[t],
                    };
                    match solve_penalized(solver, cluster, &cost, &obs, mu) {
                        Ok((sol, g, y)) => {
                            decisions[t] = Some(Decision { levels: sol.levels, loads: sol.loads });
                            planned_costs[t] = g;
                            planned_brown[t] = y;
                            (g, y)
                        }
                        Err(e) => {
                            err = Some(e);
                            (f64::NAN, f64::NAN)
                        }
                    }
                };
                // Each dual sweep re-solves the whole frame; a per-mille
                // budget tolerance keeps the sweep count ~20 while staying
                // far below the discrete-speed quantization error.
                let opts = DualOptions { budget_rel_tol: 2e-3, max_iter: 22, max_doublings: 40 };
                solve_budget_dual(&mut slot_fn, end - start, frame_budget, opts)
            };
            if let Some(e) = err {
                return Err(e);
            }
            let outcome = outcome.map_err(SimError::Opt)?;
            multipliers.push(outcome.mu);
            start = end;
        }

        // The final dual sweep plans every slot; a gap would be a solver
        // bug, surfaced as a typed error rather than a panic.
        let decisions = decisions
            .into_iter()
            .enumerate()
            .map(|(t, d)| {
                d.ok_or_else(|| {
                    SimError::Internal(format!("slot {t} left unplanned by the final dual sweep"))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            decisions,
            choice_counts: cluster.choice_counts(),
            multipliers,
            planned_costs,
            planned_brown,
            cursor: 0,
        })
    }

    /// Total planned cost `Σ g(t)`.
    pub fn total_planned_cost(&self) -> f64 {
        self.planned_costs.iter().sum()
    }

    /// Total planned brown energy `Σ y(t)`.
    pub fn total_planned_brown(&self) -> f64 {
        self.planned_brown.iter().sum()
    }

    /// Number of planned slots.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when no slots were planned.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

impl Policy for OfflineOpt {
    fn name(&self) -> &str {
        "offline-opt"
    }

    fn decide(&mut self, obs: &SlotObservation) -> coca_dcsim::Result<Decision> {
        let d = self.decisions.get(obs.t).cloned().ok_or_else(|| {
            SimError::InvalidConfig(format!("slot {} beyond planned horizon {}", obs.t, self.decisions.len()))
        })?;
        self.cursor = obs.t + 1;
        // Paper-invariant hooks: the replayed plan must still satisfy
        // constraints (8)–(9) for the observed slot.
        coca_core::invariant::global().decision(&d.levels, &d.loads, &self.choice_counts, obs.arrival_rate);
        Ok(d)
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }

    /// The plan itself is immutable; only the replay cursor evolves.
    fn snapshot(&self) -> coca_dcsim::Result<Value> {
        let cursor = self
            .cursor
            .serialize_value()
            .map_err(|e| SimError::Internal(format!("offline-opt snapshot: {e}")))?;
        Ok(Value::Map(vec![("cursor".to_string(), cursor)]))
    }

    fn restore(&mut self, state: &Value) -> coca_dcsim::Result<()> {
        let cursor = state.get_field("cursor").ok_or_else(|| {
            SimError::InvalidConfig("offline-opt snapshot missing field `cursor`".into())
        })?;
        self.cursor = usize::deserialize_value(cursor)
            .map_err(|e| SimError::InvalidConfig(format!("offline-opt snapshot: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carbon_unaware::CarbonUnaware;
    use coca_core::symmetric::SymmetricSolver;
    use coca_dcsim::{run_lockstep, SimOutcome};
    use coca_traces::TraceConfig;
    use std::sync::Arc;

    fn setup(hours: usize) -> (Arc<Cluster>, EnvironmentTrace) {
        let cluster = Arc::new(Cluster::homogeneous(4, 20));
        let trace = TraceConfig {
            hours,
            peak_arrival_rate: 400.0,
            onsite_energy_kwh: 0.1 * hours as f64,
            offsite_energy_kwh: 1.0 * hours as f64,
            ..Default::default()
        }
        .generate();
        (cluster, trace)
    }

    /// Carbon-unaware reference run through the engine (the budget
    /// normalization the paper derives from this policy's consumption).
    fn unaware_run(cluster: &Arc<Cluster>, cost: CostParams, trace: &EnvironmentTrace) -> SimOutcome {
        let cu = CarbonUnaware::new(Arc::clone(cluster), cost, SymmetricSolver::new());
        run_lockstep(Arc::clone(cluster), trace, cost, 0.0, vec![Box::new(cu)])
            .unwrap()
            .pop()
            .unwrap()
    }

    fn unaware_consumption(cluster: &Arc<Cluster>, cost: CostParams, trace: &EnvironmentTrace) -> f64 {
        unaware_run(cluster, cost, trace).total_brown_energy()
    }

    #[test]
    fn meets_the_budget() {
        let (cluster, trace) = setup(96);
        let cost = CostParams::default();
        let unaware = unaware_consumption(&cluster, cost, &trace);
        let budget = unaware * 0.85;
        let mut solver = SymmetricSolver::new();
        let opt = OfflineOpt::plan(&cluster, cost, &trace, budget, &mut solver).unwrap();
        assert!(
            opt.total_planned_brown() <= budget * 1.01,
            "planned brown {} vs budget {budget}",
            opt.total_planned_brown()
        );
        assert_eq!(opt.multipliers.len(), 1);
        assert!(opt.multipliers[0] > 0.0, "tight budget needs a positive multiplier");
    }

    #[test]
    fn slack_budget_matches_carbon_unaware() {
        let (cluster, trace) = setup(72);
        let cost = CostParams::default();
        let mut solver = SymmetricSolver::new();
        let opt = OfflineOpt::plan(&cluster, cost, &trace, 1e12, &mut solver).unwrap();
        assert_eq!(opt.multipliers, vec![0.0]);
        let cu = unaware_run(&cluster, cost, &trace);
        assert!(
            (opt.total_planned_cost() - cu.total_cost()).abs() < 1e-6 * cu.total_cost(),
            "μ=0 plan equals carbon-unaware: {} vs {}",
            opt.total_planned_cost(),
            cu.total_cost()
        );
    }

    #[test]
    fn replay_through_simulator_matches_plan() {
        let (cluster, trace) = setup(72);
        let cost = CostParams::default();
        let mut solver = SymmetricSolver::new();
        let budget = unaware_consumption(&cluster, cost, &trace) * 0.9;
        let mut opt = OfflineOpt::plan(&cluster, cost, &trace, budget, &mut solver).unwrap();
        let out = run_lockstep(Arc::clone(&cluster), &trace, cost, 0.0, vec![Box::new(&mut opt)])
            .unwrap()
            .pop()
            .unwrap();
        assert!((out.total_cost() - opt.total_planned_cost()).abs() < 1e-6 * out.total_cost());
        assert!(
            (out.total_brown_energy() - opt.total_planned_brown()).abs()
                < 1e-6 * out.total_brown_energy().max(1.0)
        );
    }

    #[test]
    fn tighter_budget_costs_more() {
        let (cluster, trace) = setup(72);
        let cost = CostParams::default();
        let unaware = unaware_consumption(&cluster, cost, &trace);
        let mut last = -1.0;
        for frac in [1.0, 0.92, 0.85] {
            let mut solver = SymmetricSolver::new();
            let opt =
                OfflineOpt::plan(&cluster, cost, &trace, unaware * frac, &mut solver).unwrap();
            assert!(
                opt.total_planned_cost() >= last - 1e-6,
                "cost must grow as budget tightens"
            );
            last = opt.total_planned_cost();
        }
    }

    #[test]
    fn lookahead_frames_cover_horizon() {
        let (cluster, trace) = setup(96);
        let cost = CostParams::default();
        let unaware = unaware_consumption(&cluster, cost, &trace);
        let mut solver = SymmetricSolver::new();
        let opt = OfflineOpt::plan_lookahead(&cluster, cost, &trace, unaware * 0.9, 24, &mut solver)
            .unwrap();
        assert_eq!(opt.len(), 96);
        assert_eq!(opt.multipliers.len(), 4, "one multiplier per 24-slot frame");
    }

    #[test]
    fn whole_horizon_opt_at_most_lookahead_cost() {
        // More lookahead can only help (paper: T-step family approaches P1).
        let (cluster, trace) = setup(96);
        let cost = CostParams::default();
        let unaware = unaware_consumption(&cluster, cost, &trace);
        let budget = unaware * 0.88;
        let mut s1 = SymmetricSolver::new();
        let full = OfflineOpt::plan(&cluster, cost, &trace, budget, &mut s1).unwrap();
        let mut s2 = SymmetricSolver::new();
        let framed =
            OfflineOpt::plan_lookahead(&cluster, cost, &trace, budget, 24, &mut s2).unwrap();
        assert!(
            full.total_planned_cost() <= framed.total_planned_cost() * 1.02,
            "full-horizon OPT {} should not lose to 24-slot lookahead {}",
            full.total_planned_cost(),
            framed.total_planned_cost()
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (cluster, trace) = setup(24);
        let cost = CostParams::default();
        let mut solver = SymmetricSolver::new();
        assert!(OfflineOpt::plan(&cluster, cost, &trace, f64::NAN, &mut solver).is_err());
        assert!(
            OfflineOpt::plan_lookahead(&cluster, cost, &trace, 10.0, 0, &mut solver).is_err()
        );
        let empty = EnvironmentTrace {
            workload: vec![],
            onsite: vec![],
            offsite: vec![],
            price: vec![],
        };
        assert!(OfflineOpt::plan(&cluster, cost, &empty, 10.0, &mut solver).is_err());
    }
}
