//! The `--strict` invariant run (ISSUE acceptance criterion): promote every
//! runtime paper-invariant check to an unconditional panic, drive the COCA
//! controller and all four baselines through the simulator, and then assert
//! that every check actually fired at least once.
//!
//! This lives in its own integration-test binary because strict mode is a
//! process-wide switch ([`coca_core::invariant::force_strict`] /
//! `COCA_STRICT_INVARIANTS=1`) that must be set before the first check runs;
//! a shared test binary would race its unit tests against the switch.


use std::sync::Arc;

use coca_baselines::budgeted::solve_capped;
use coca_baselines::{CarbonUnaware, OfflineOpt, PerfectHp};
use coca_core::gsd::{GsdOptions, GsdSolver};
use coca_core::invariant;
use coca_core::symmetric::SymmetricSolver;
use coca_core::{CocaConfig, CocaController, VSchedule};
use coca_dcsim::{run_single, Cluster, CostParams, SlotObservation};
use coca_opt::schedule::TemperatureSchedule;
use coca_traces::{EnvironmentTrace, TraceConfig, WorkloadKind};

fn trace(hours: usize) -> EnvironmentTrace {
    TraceConfig {
        hours,
        workload_kind: WorkloadKind::Fiu,
        peak_arrival_rate: 400.0,
        onsite_energy_kwh: 20.0 * hours as f64 / 100.0,
        offsite_energy_kwh: 80.0 * hours as f64 / 100.0,
        ..Default::default()
    }
    .generate()
}

#[test]
fn strict_run_exercises_every_invariant_check() {
    assert!(invariant::force_strict(), "must run before any invariant check");
    assert!(invariant::global().is_strict());

    let cluster = Arc::new(Cluster::homogeneous(4, 20));
    let cost = CostParams::default();
    let env = trace(48);

    // COCA over two frames: deficit non-negativity, frame resets, and (via
    // the symmetric solver's water-filling) conservation + KKT residuals.
    let cfg = CocaConfig {
        v: VSchedule::PerFrame(vec![50.0, 200.0]),
        frame_length: 24,
        horizon: 48,
        alpha: 1.0,
        rec_total: 10.0,
    };
    let mut coca = CocaController::new(Arc::clone(&cluster), cost, cfg, SymmetricSolver::new());
    let _ = run_single(Arc::clone(&cluster), &env, cost, 10.0, 1.0, Box::new(&mut coca))
        .expect("strict COCA run");

    // A GSD-backed controller: Gibbs acceptance probabilities.
    let short = trace(6);
    let gsd_cfg = CocaConfig {
        v: VSchedule::Constant(100.0),
        frame_length: 6,
        horizon: 6,
        alpha: 1.0,
        rec_total: 5.0,
    };
    let gsd = GsdSolver::new(GsdOptions {
        iterations: 200,
        schedule: TemperatureSchedule::Constant(1e6),
        seed: 17,
        ..Default::default()
    });
    let mut gsd_coca = CocaController::new(Arc::clone(&cluster), cost, gsd_cfg, gsd);
    let _ = run_single(Arc::clone(&cluster), &short, cost, 5.0, 1.0, Box::new(&mut gsd_coca))
        .expect("strict GSD run");

    // All four baselines: carbon-unaware, PerfectHP, OPT, and the budgeted
    // primitive they share. The carbon-unaware reference consumption now
    // comes from a plain engine run (the bespoke `annual_consumption`
    // shortcut was removed with the `SimEngine` refactor).
    let mut unaware = CarbonUnaware::new(Arc::clone(&cluster), cost, SymmetricSolver::new());
    let unaware_out =
        run_single(Arc::clone(&cluster), &env, cost, 10.0, 1.0, Box::new(&mut unaware))
            .expect("strict carbon-unaware run");
    let brown = unaware_out.total_brown_energy();

    let mut hp =
        PerfectHp::<SymmetricSolver>::new(Arc::clone(&cluster), cost, &env, brown * 0.8, 48)
            .expect("PerfectHP plans");
    let _ = run_single(Arc::clone(&cluster), &env, cost, 10.0, 1.0, Box::new(&mut hp))
        .expect("strict PerfectHP run");

    let mut solver = SymmetricSolver::new();
    let mut opt =
        OfflineOpt::plan(&cluster, cost, &env, brown * 0.9, &mut solver).expect("OPT plans");
    let _ = run_single(Arc::clone(&cluster), &env, cost, 10.0, 1.0, Box::new(&mut opt))
        .expect("strict OPT run");

    let obs = SlotObservation { t: 0, arrival_rate: 300.0, onsite: 2.0, price: 0.08 };
    let capped = solve_capped(&mut solver, &cluster, &cost, &obs, 10.0, 1e-6)
        .expect("budgeted primitive solves");
    assert!(capped.brown.is_finite());

    // Every paper-invariant check must have fired at least once.
    for (name, count) in invariant::counts() {
        assert!(count > 0, "invariant check {name:?} was never exercised");
    }
}
