//! [`WireSink`]: the [`RecordSink`] that turns completed slots into wire
//! messages.
//!
//! It wraps a materializing [`VecSink`] (so checkpoints and
//! [`SimOutcome`](coca_dcsim::SimOutcome) extraction keep working) and
//! overrides [`RecordSink::record_decision`] — the context-carrying hook
//! added for exactly this purpose — to publish a
//! [`DecisionMsg`](crate::proto::DecisionMsg) per slot: record fields for
//! the realized costs, [`DecisionContext`] for the speed vector and the
//! actually-dispatched load split, and the policy's
//! [`telemetry`](coca_dcsim::Policy::telemetry) for controller internals.

use std::sync::Arc;

use coca_dcsim::{DecisionContext, RecordSink, SlotRecord, VecSink};

use crate::proto::{DecisionMsg, OutMsg};
use crate::publish::Publisher;

/// Record sink that publishes each slot's decision to a [`Publisher`].
pub struct WireSink {
    inner: VecSink,
    policy: String,
    publisher: Arc<Publisher>,
}

impl WireSink {
    /// Creates a sink publishing decisions under `policy`'s name.
    pub fn new(policy: impl Into<String>, publisher: Arc<Publisher>) -> Self {
        Self { inner: VecSink::new(), policy: policy.into(), publisher }
    }
}

impl RecordSink for WireSink {
    fn record(&mut self, rec: &SlotRecord) -> Result<(), String> {
        self.inner.record(rec)
    }

    fn record_decision(
        &mut self,
        rec: &SlotRecord,
        ctx: &DecisionContext<'_>,
    ) -> Result<(), String> {
        self.inner.record(rec)?;
        self.publisher.publish(&OutMsg::Decision(DecisionMsg {
            t: rec.t,
            policy: self.policy.clone(),
            levels: ctx.levels.to_vec(),
            loads: ctx.loads.to_vec(),
            servers_on: rec.servers_on,
            total_cost: rec.total_cost,
            brown_energy: rec.brown_energy,
            telemetry: ctx.telemetry,
        }));
        Ok(())
    }

    fn collected(&self) -> Option<&[SlotRecord]> {
        self.inner.collected()
    }

    fn take_records(&mut self) -> Option<Vec<SlotRecord>> {
        self.inner.take_records()
    }

    fn restore_records(&mut self, records: &[SlotRecord]) -> Result<(), String> {
        self.inner.restore_records(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Mutex;

    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn record(t: usize) -> SlotRecord {
        SlotRecord {
            t,
            arrival_rate: 10.0,
            price: 0.05,
            onsite: 1.0,
            offsite: 2.0,
            facility_energy: 3.0,
            brown_energy: 2.5,
            switching_energy: 0.0,
            electricity_cost: 0.125,
            delay_cost: 0.5,
            total_cost: 0.625,
            delay: 0.05,
            servers_on: 8,
        }
    }

    #[test]
    fn publishes_one_decision_per_slot_and_stays_materializing() {
        let publisher = Publisher::new();
        let buf = Arc::new(Mutex::new(Vec::new()));
        publisher.subscribe(Box::new(SharedBuf(Arc::clone(&buf))));
        let mut sink = WireSink::new("coca", Arc::clone(&publisher));

        let levels = [2usize, 0];
        let loads = [10.0, 0.0];
        let ctx = DecisionContext { levels: &levels, loads: &loads, telemetry: None };
        sink.record_decision(&record(0), &ctx).unwrap();
        sink.record_decision(&record(1), &ctx).unwrap();

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let msgs: Vec<OutMsg> =
            text.lines().map(|l| OutMsg::parse(l).unwrap()).collect();
        assert_eq!(msgs.len(), 2);
        let OutMsg::Decision(d) = &msgs[0] else { panic!("not a decision: {:?}", msgs[0]) };
        assert_eq!(d.t, 0);
        assert_eq!(d.levels, vec![2, 0]);
        assert_eq!(d.loads, vec![10.0, 0.0]);
        assert_eq!(d.servers_on, 8);

        // Checkpoint surface still works through the wrapper.
        assert_eq!(sink.collected().unwrap().len(), 2);
        sink.restore_records(&[record(0)]).unwrap();
        assert_eq!(sink.take_records().unwrap().len(), 1);
    }
}
