//! Wire-schema validation: checks an NDJSON stream (ingest or publish
//! direction) against `schemas/serve.schema.json`.
//!
//! The schema pins, per `"type"` tag, which fields are required and which
//! are optional; anything undeclared is rejected, so a field added to the
//! wire without a schema update fails CI instead of shipping silently.
//! Beyond per-line shape the validator enforces the two stream-level
//! invariants subscribers rely on: `slot`/`decision` indices are strictly
//! consecutive, and a `hello` banner carries the protocol version this
//! schema describes.

use std::io::BufRead;

use serde::Value;

/// Field rules for one message type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpec {
    /// Fields that must be present.
    pub required: Vec<String>,
    /// Fields that may be present.
    pub optional: Vec<String>,
}

/// The parsed wire schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSchema {
    /// Protocol version the schema describes.
    pub proto: i64,
    /// Message specs by `"type"` tag.
    pub messages: Vec<(String, MessageSpec)>,
}

/// What a validated stream contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Non-empty lines checked.
    pub lines: usize,
    /// `decision` messages seen.
    pub decisions: usize,
    /// `slot` messages seen.
    pub slots: usize,
}

fn str_list(v: &Value, name: &str) -> Result<Vec<String>, String> {
    match v.get_field(name) {
        Some(Value::Seq(items)) => items
            .iter()
            .map(|x| match x {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!("`{name}` entry is not a string: {other:?}")),
            })
            .collect(),
        None => Ok(Vec::new()),
        Some(other) => Err(format!("`{name}` is not a list: {other:?}")),
    }
}

impl WireSchema {
    /// Parses the schema from its JSON text.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let proto = match v.get_field("proto") {
            Some(Value::Int(i)) => *i,
            _ => return Err("schema missing integer `proto`".into()),
        };
        let Some(Value::Map(entries)) = v.get_field("messages") else {
            return Err("schema missing object `messages`".into());
        };
        let messages = entries
            .iter()
            .map(|(tag, spec)| {
                Ok((
                    tag.clone(),
                    MessageSpec {
                        required: str_list(spec, "required")?,
                        optional: str_list(spec, "optional")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        if messages.is_empty() {
            return Err("schema declares no message types".into());
        }
        Ok(Self { proto, messages })
    }

    fn spec(&self, tag: &str) -> Option<&MessageSpec> {
        self.messages.iter().find(|(t, _)| t == tag).map(|(_, s)| s)
    }

    fn check_line(&self, line: &str, next_t: &mut Option<usize>) -> Result<String, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let map = v.as_map().ok_or("message is not an object")?;
        let Some(Value::Str(tag)) = v.get_field("type") else {
            return Err("missing string field `type`".into());
        };
        let spec = self
            .spec(tag)
            .ok_or_else(|| format!("unknown message type `{tag}`"))?;
        for req in &spec.required {
            if v.get_field(req).is_none() {
                return Err(format!("`{tag}` is missing required field `{req}`"));
            }
        }
        for (field, _) in map {
            if field != "type"
                && !spec.required.contains(field)
                && !spec.optional.contains(field)
            {
                return Err(format!("`{tag}` carries undeclared field `{field}`"));
            }
        }
        if tag == "hello" {
            match v.get_field("proto") {
                Some(Value::Int(p)) if *p == self.proto => {}
                Some(Value::Int(p)) => {
                    return Err(format!("hello speaks proto {p}, schema is {}", self.proto))
                }
                _ => return Err("hello `proto` is not an integer".into()),
            }
        }
        if tag == "slot" || tag == "decision" {
            let t = match v.get_field("t") {
                Some(Value::Int(i)) if *i >= 0 => *i as usize,
                _ => return Err(format!("`{tag}` field `t` is not a non-negative integer")),
            };
            match next_t {
                Some(expected) if t != *expected => {
                    return Err(format!("`{tag}` at t={t}, expected t={expected}"))
                }
                _ => *next_t = Some(t + 1),
            }
        }
        Ok(tag.clone())
    }

    /// Validates a whole NDJSON stream; blank lines are skipped. Errors
    /// carry the 1-based line number.
    pub fn validate_stream<R: BufRead>(&self, input: R) -> Result<StreamReport, String> {
        let mut report = StreamReport::default();
        let mut next_t: Option<usize> = None;
        for (i, line) in input.lines().enumerate() {
            let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let tag = self
                .check_line(trimmed, &mut next_t)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            report.lines += 1;
            match tag.as_str() {
                "decision" => report.decisions += 1,
                "slot" => report.slots += 1,
                _ => {}
            }
        }
        if report.lines == 0 {
            return Err("stream is empty".into());
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{DecisionMsg, InMsg, OutMsg};
    use coca_traces::SlotEnv;

    fn schema() -> WireSchema {
        let json = include_str!("../../../schemas/serve.schema.json");
        WireSchema::from_json(json).expect("checked-in schema parses")
    }

    fn decision(t: usize) -> String {
        OutMsg::Decision(DecisionMsg {
            t,
            policy: "coca".into(),
            levels: vec![1],
            loads: vec![5.0],
            servers_on: 5,
            total_cost: 1.0,
            brown_energy: 0.5,
            telemetry: None,
        })
        .to_line()
    }

    #[test]
    fn accepts_what_the_service_emits() {
        let stream = format!(
            "{}\n{}\n{}\n{}\n",
            OutMsg::Hello { policy: "coca".into(), groups: 1 }.to_line(),
            decision(0),
            decision(1),
            OutMsg::End { slots: 2 }.to_line()
        );
        let report = schema().validate_stream(stream.as_bytes()).unwrap();
        assert_eq!(report, StreamReport { lines: 4, decisions: 2, slots: 0 });
    }

    #[test]
    fn accepts_what_replay_emits() {
        let stream = format!(
            "{}\n{}\n",
            InMsg::Slot(SlotEnv { t: 0, arrival_rate: 1.0, onsite: 0.0, price: 0.1, offsite: 0.0 })
                .to_line(),
            InMsg::End.to_line()
        );
        let report = schema().validate_stream(stream.as_bytes()).unwrap();
        assert_eq!(report, StreamReport { lines: 2, decisions: 0, slots: 1 });
    }

    #[test]
    fn rejects_gaps_missing_fields_and_undeclared_fields() {
        let s = schema();
        let gap = format!("{}\n{}\n", decision(0), decision(2));
        assert!(s.validate_stream(gap.as_bytes()).unwrap_err().contains("expected t=1"));

        let missing = "{\"type\":\"decision\",\"t\":0}\n";
        assert!(s
            .validate_stream(missing.as_bytes())
            .unwrap_err()
            .contains("missing required field"));

        let extra = decision(0).replace(",\"brown_energy\"", ",\"surprise\":1,\"brown_energy\"");
        assert!(s
            .validate_stream(extra.as_bytes())
            .unwrap_err()
            .contains("undeclared field `surprise`"));

        let wrong_proto =
            "{\"type\":\"hello\",\"proto\":9,\"policy\":\"coca\",\"groups\":1}\n";
        assert!(s.validate_stream(wrong_proto.as_bytes()).unwrap_err().contains("proto 9"));

        assert!(s.validate_stream(&b""[..]).unwrap_err().contains("empty"));
    }

    #[test]
    fn schema_parse_rejects_malformed() {
        assert!(WireSchema::from_json("{}").is_err());
        assert!(WireSchema::from_json("{\"proto\":1,\"messages\":{}}").is_err());
        assert!(WireSchema::from_json("nope").is_err());
    }
}
