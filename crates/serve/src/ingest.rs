//! Ingestion: NDJSON slot lines → the engine's push channel.
//!
//! [`run_ingest`] is the body of the reader thread: it parses each line as
//! an [`InMsg`] and pushes slots through the [`PushHandle`], inheriting
//! the channel's guarantees — blocking backpressure when the engine falls
//! behind, in-order validation, typed close. A malformed line or an
//! out-of-order slot aborts ingestion with an error (a control stream
//! that garbles is a stream you stop trusting); the engine side then
//! finishes whatever was already queued and exits cleanly.

use std::io::BufRead;

use coca_dcsim::{PushError, PushHandle};

use crate::proto::InMsg;

/// What ingestion saw before it returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Slots successfully pushed to the engine.
    pub slots: usize,
    /// True when the stream ended with an explicit `{"type":"end"}`
    /// (false: EOF, or the engine shut down mid-stream).
    pub explicit_end: bool,
}

/// Reads NDJSON from `input` and pushes slots until `end`, EOF, an error,
/// or engine shutdown. The channel is always closed on return, so the
/// engine never waits on a dead reader.
pub fn run_ingest<R: BufRead>(input: R, handle: &PushHandle) -> std::io::Result<IngestStats> {
    let mut stats = IngestStats { slots: 0, explicit_end: false };
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let msg = InMsg::parse(trimmed).map_err(|e| {
            handle.close();
            bad_data(format!("ingest line {}: {e}", i + 1))
        })?;
        match msg {
            InMsg::End => {
                stats.explicit_end = true;
                break;
            }
            InMsg::Slot(env) => match handle.push(env) {
                Ok(()) => stats.slots += 1,
                // Engine gone (shutdown raced the stream): not an error.
                Err(PushError::Closed) => break,
                Err(e @ (PushError::OutOfOrder { .. } | PushError::Invalid(_))) => {
                    handle.close();
                    return Err(bad_data(format!("ingest line {}: {e}", i + 1)));
                }
            },
        }
    }
    handle.close();
    Ok(stats)
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_dcsim::{push_source, PollSlot, SlotSource};
    use coca_traces::SlotEnv;

    fn slot_line(t: usize) -> String {
        InMsg::Slot(SlotEnv { t, arrival_rate: 10.0, onsite: 1.0, price: 0.05, offsite: 2.0 })
            .to_line()
    }

    #[test]
    fn pushes_slots_then_closes_on_end() {
        let (handle, mut source) = push_source(8);
        let input = format!("{}\n{}\n\n{}\n", slot_line(0), slot_line(1), InMsg::End.to_line());
        let stats = run_ingest(input.as_bytes(), &handle).unwrap();
        assert_eq!(stats, IngestStats { slots: 2, explicit_end: true });
        assert!(matches!(source.poll_slot(0), PollSlot::Ready(_)));
        assert!(matches!(source.poll_slot(1), PollSlot::Ready(_)));
        assert_eq!(source.poll_slot(2), PollSlot::Closed);
    }

    #[test]
    fn eof_without_end_still_closes() {
        let (handle, mut source) = push_source(8);
        let input = slot_line(0);
        let stats = run_ingest(input.as_bytes(), &handle).unwrap();
        assert_eq!(stats, IngestStats { slots: 1, explicit_end: false });
        assert!(matches!(source.poll_slot(0), PollSlot::Ready(_)));
        assert_eq!(source.poll_slot(1), PollSlot::Closed);
    }

    #[test]
    fn malformed_and_out_of_order_lines_abort() {
        let (handle, mut source) = push_source(8);
        let input = format!("{}\nnot json\n", slot_line(0));
        assert!(run_ingest(input.as_bytes(), &handle).is_err());
        assert!(matches!(source.poll_slot(0), PollSlot::Ready(_)));
        assert_eq!(source.poll_slot(1), PollSlot::Closed, "channel closed on abort");

        let (handle, _source) = push_source(8);
        let input = format!("{}\n{}\n", slot_line(0), slot_line(5));
        let err = run_ingest(input.as_bytes(), &handle).unwrap_err();
        assert!(err.to_string().contains("out-of-order"), "{err}");
    }

    #[test]
    fn engine_shutdown_mid_stream_is_clean() {
        let (handle, source) = push_source(8);
        drop(source);
        let input = format!("{}\n{}\n", slot_line(0), slot_line(1));
        let stats = run_ingest(input.as_bytes(), &handle).unwrap();
        assert_eq!(stats.slots, 0, "engine was already gone");
        assert!(!stats.explicit_end);
    }
}
