//! Decision fan-out: every published line goes to every live subscriber.
//!
//! Subscribers are plain `Write` sinks — stdout, a file, or TCP
//! connections added by [`spawn_acceptor`]. A subscriber whose write
//! fails (closed socket, broken pipe) is dropped silently; publishing is
//! infallible from the engine's point of view so a dead reader can never
//! stall or crash the control loop.

use std::io::Write;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::proto::OutMsg;

/// Fan-out hub for publish-stream lines.
pub struct Publisher {
    subscribers: Mutex<Vec<Box<dyn Write + Send>>>,
}

impl Publisher {
    /// Creates a hub with no subscribers.
    pub fn new() -> Arc<Self> {
        Arc::new(Self { subscribers: Mutex::new(Vec::new()) })
    }

    /// Adds a subscriber; it receives every subsequently published line.
    pub fn subscribe(&self, writer: Box<dyn Write + Send>) {
        self.lock().push(writer);
    }

    /// Number of currently live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.lock().len()
    }

    /// Publishes one message to every subscriber, appending the newline.
    /// Subscribers whose write or flush fails are dropped.
    pub fn publish(&self, msg: &OutMsg) {
        self.publish_line(&msg.to_line());
    }

    /// Publishes a pre-encoded line (without trailing newline).
    pub fn publish_line(&self, line: &str) {
        let mut subs = self.lock();
        subs.retain_mut(|w| {
            w.write_all(line.as_bytes())
                .and_then(|()| w.write_all(b"\n"))
                .and_then(|()| w.flush())
                .is_ok()
        });
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Box<dyn Write + Send>>> {
        self.subscribers.lock().expect("publisher mutex poisoned")
    }
}

/// Accepts TCP subscribers forever: each connection gets the `hello`
/// banner and then the live decision stream. The thread exits when the
/// listener errors (e.g. the process is shutting down and closed it).
pub fn spawn_acceptor(
    listener: TcpListener,
    publisher: Arc<Publisher>,
    hello: OutMsg,
) -> JoinHandle<()> {
    let banner = hello.to_line();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { break };
            let greeted = stream
                .write_all(banner.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .and_then(|()| stream.flush())
                .is_ok();
            if greeted {
                publisher.subscribe(Box::new(stream));
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Test sink writing into a shared buffer, optionally failing.
    struct SharedBuf {
        buf: Arc<Mutex<Vec<u8>>>,
        fail: Arc<AtomicBool>,
    }

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            if self.fail.load(Ordering::SeqCst) {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "dead"));
            }
            self.buf.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn publishes_to_all_and_drops_dead_subscribers() {
        let publisher = Publisher::new();
        let a = Arc::new(Mutex::new(Vec::new()));
        let b = Arc::new(Mutex::new(Vec::new()));
        let b_fail = Arc::new(AtomicBool::new(false));
        publisher.subscribe(Box::new(SharedBuf {
            buf: Arc::clone(&a),
            fail: Arc::new(AtomicBool::new(false)),
        }));
        publisher.subscribe(Box::new(SharedBuf { buf: Arc::clone(&b), fail: Arc::clone(&b_fail) }));

        publisher.publish(&OutMsg::End { slots: 1 });
        assert_eq!(publisher.subscriber_count(), 2);
        b_fail.store(true, Ordering::SeqCst);
        publisher.publish(&OutMsg::End { slots: 2 });
        assert_eq!(publisher.subscriber_count(), 1, "dead subscriber dropped");
        publisher.publish(&OutMsg::End { slots: 3 });

        let a = String::from_utf8(a.lock().unwrap().clone()).unwrap();
        assert_eq!(
            a,
            "{\"type\":\"end\",\"slots\":1}\n{\"type\":\"end\",\"slots\":2}\n{\"type\":\"end\",\"slots\":3}\n"
        );
        let b = String::from_utf8(b.lock().unwrap().clone()).unwrap();
        assert_eq!(b, "{\"type\":\"end\",\"slots\":1}\n", "nothing after the failure");
    }

    #[test]
    fn tcp_subscribers_get_banner_then_stream() {
        use std::io::{BufRead, BufReader};
        use std::net::TcpStream;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let publisher = Publisher::new();
        let _acceptor = spawn_acceptor(
            listener,
            Arc::clone(&publisher),
            OutMsg::Hello { policy: "coca".into(), groups: 2 },
        );

        let client = TcpStream::connect(addr).unwrap();
        let mut lines = BufReader::new(client).lines();
        let banner = lines.next().unwrap().unwrap();
        assert!(matches!(OutMsg::parse(&banner), Ok(OutMsg::Hello { .. })), "{banner}");

        // The acceptor registers the subscriber asynchronously; wait for it.
        for _ in 0..200 {
            if publisher.subscriber_count() > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        publisher.publish(&OutMsg::End { slots: 9 });
        let line = lines.next().unwrap().unwrap();
        assert_eq!(OutMsg::parse(&line).unwrap(), OutMsg::End { slots: 9 });
    }
}
